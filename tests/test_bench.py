"""Benchmark-harness tests: git stamping, result merging, wall clock.

The git-revision stamp must *degrade*, never crash: ``force bench``
run from a tarball install (no git, no checkout) records
``git_revision: null`` with a warning and keeps benchmarking.
"""

import json
import subprocess
from pathlib import Path

from repro import bench


class TestGitRevision:
    def test_stamps_current_checkout(self):
        revision = bench.git_revision()
        expected = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(bench.__file__).resolve().parents[2],
            capture_output=True, text=True).stdout.strip()
        assert revision == expected
        assert revision     # non-empty in this checkout

    def test_degrades_outside_a_repo(self, tmp_path, capsys):
        revision = bench.git_revision(root=tmp_path)
        assert revision is None
        captured = capsys.readouterr()
        assert "git_revision: null" in captured.err
        assert "warning" in captured.err

    def test_degrades_when_git_is_missing(self, monkeypatch, capsys):
        def no_git(*args, **kwargs):
            raise OSError("No such file or directory: 'git'")

        monkeypatch.setattr(bench.subprocess, "run", no_git)
        assert bench.git_revision() is None
        assert "git_revision: null" in capsys.readouterr().err

    def test_degrades_on_git_timeout(self, monkeypatch, capsys):
        def hangs(cmd, **kwargs):
            raise subprocess.TimeoutExpired(cmd, 10)

        monkeypatch.setattr(bench.subprocess, "run", hangs)
        assert bench.git_revision() is None
        assert "git_revision: null" in capsys.readouterr().err

    def test_entry_records_null_not_crash(self, monkeypatch):
        monkeypatch.setattr(bench, "git_revision", lambda root=None: None)
        entry = bench.make_entry("probe")
        assert entry["git_revision"] is None
        # and a JSON round trip keeps the null
        assert json.loads(json.dumps(entry))["git_revision"] is None

    def test_entry_uses_explicit_revision(self):
        entry = bench.make_entry("probe", revision="abc1234")
        assert entry["git_revision"] == "abc1234"


class TestMergeResults:
    def test_merge_overwrites_by_name(self, tmp_path):
        path = tmp_path / "results.json"
        bench.merge_results(path, [bench.make_entry(
            "a", revision="r1"), bench.make_entry("b", revision="r1")])
        bench.merge_results(path, [bench.make_entry("a", revision="r2")])
        doc = json.loads(path.read_text())
        by_name = {e["name"]: e for e in doc["results"]}
        assert by_name["a"]["git_revision"] == "r2"
        assert by_name["b"]["git_revision"] == "r1"

    def test_corrupt_history_never_blocks(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text("{not json")
        bench.merge_results(path, [bench.make_entry("a", revision="r")])
        doc = json.loads(path.read_text())
        assert [e["name"] for e in doc["results"]] == ["a"]


class TestWallSpeedup:
    def test_suite_includes_wall_speedup(self):
        assert "bench_wall_speedup" in dict(bench.SUITE)

    def test_quick_entry_shape(self):
        outcome = bench.bench_wall_speedup(True)
        assert outcome["params"]["backend"] == "process"
        assert outcome["params"]["cpu_count"] >= 1
        data = outcome["data"]
        assert data["wall_1"] > 0 and data["wall_4"] > 0
        assert data["wall_speedup"] > 0
        # honestly derived, not asserted >= 1: a single-CPU host
        # legitimately reports < 1.0 and cpu_count explains why
        assert data["wall_speedup"] == round(
            data["wall_1"] / data["wall_4"], 2)

    def test_report_renders_wall_speedup_line(self):
        report = {
            "quick": True, "git_revision": None, "output": "x.json",
            "fallbacks": {},
            "results": [
                {"name": "bench_jacobi_throughput",
                 "data": {"tree_stmt_per_s": 1, "compiled_stmt_per_s": 2,
                          "speedup": 2.0, "kernelized_doalls": 2}},
                {"name": "bench_codegen_throughput",
                 "data": {"tiers": {
                     "interp": {"stmt_per_s": 10,
                                "speedup_vs_interp": 1.0},
                     "closure": {"stmt_per_s": 50,
                                 "speedup_vs_interp": 5.0},
                     "source": {"stmt_per_s": 900,
                                "speedup_vs_interp": 90.0}},
                     "kernelized_doalls": 2,
                     "codegen_fell_back": False}},
                {"name": "bench_selfsched_dispatch",
                 "data": {"policies": {
                     "self": {"chunks": 64}, "chunked16": {"chunks": 4},
                     "guided": {"chunks": 8}},
                     "lock_acquisition_ratio_chunk16": 16.0}},
                {"name": "bench_sum_critical_sim",
                 "data": {"self": {"lock_acquisitions": 9,
                                   "makespan": 100},
                          "chunked16": {"lock_acquisitions": 3,
                                        "makespan": 50}}},
                {"name": "bench_askfor_tree", "wall_s": 0.01,
                 "params": {"nproc": 4}},
                {"name": "bench_wall_speedup",
                 "params": {"n": 96, "cpu_count": 1},
                 "data": {"wall_speedup": 0.8}},
                {"name": "bench_analyzer_throughput",
                 "data": {"statements_per_s": 5000, "doalls": 4,
                          "kernel_eligible_doalls": 3}},
                {"name": "bench_trace_overhead",
                 "data": {"sim_trace": {"min_ratio": 1.0},
                          "native_metrics": {"min_ratio": 1.01},
                          "native_trace": {"min_ratio": 1.02}}},
                {"name": "bench_checkpoint_overhead",
                 "data": {"idle": {"min_ratio": 0.99},
                          "every_barrier": {"min_ratio": 9.5},
                          "snapshot_bytes": 196971,
                          "snapshots_per_run": 17}},
                {"name": "bench_tune_quality",
                 "data": {"recommended": "blocked",
                          "measured_best": "blocked",
                          "agreement": True, "regret": 1.0}},
            ],
        }
        text = bench.render_bench_report(report)
        assert "2 DOALL(s) vectorized" in text
        assert "source 900 (90.0x)" in text
        assert "FELL BACK" not in text
        assert "wall_speedup" in text
        assert "0.80x" in text
        assert "1 CPU(s)" in text
        assert "3/4 corpus DOALLs proven race-free" in text
        assert "checkpoint overhead: idle 0.99x" in text
        assert "196971 B/snapshot" in text
        assert "trace overhead" in text
        assert "recommended blocked" in text
        assert "agree" in text


class TestObservabilityEntries:
    def test_suite_includes_new_entries(self):
        names = dict(bench.SUITE)
        assert "bench_trace_overhead" in names
        assert "bench_tune_quality" in names


class TestCodegenThroughput:
    def test_suite_includes_codegen_entry(self):
        assert "bench_codegen_throughput" in dict(bench.SUITE)

    def test_quick_entry_shape(self):
        outcome = bench.bench_codegen_throughput(True)
        data = outcome["data"]
        assert set(data["tiers"]) == {"interp", "closure", "source"}
        # the perf gate CI greps for: no fallback, kernels lowered
        assert data["codegen_fell_back"] is False
        assert data["kernelized_doalls"] > 0
        # warm source tier beats the tree-walker by a wide margin even
        # on the quick kernel (acceptance asks for 50x on the full one)
        assert data["tiers"]["source"]["speedup_vs_interp"] > 10

    def test_jacobi_records_kernelized_doalls(self):
        outcome = bench.bench_jacobi_throughput(True)
        assert outcome["data"]["kernelized_doalls"] == 2
        assert outcome["data"]["speedup"] > 10

    def test_tune_quality_quick_shape(self):
        outcome = bench.bench_tune_quality(True)
        data = outcome["data"]
        assert data["recommended"] in ("cyclic", "blocked", "self")
        assert data["measured_best"] in data["measured_makespans"]
        assert data["regret"] >= 1.0
        assert data["agreement"] == \
            (data["recommended"] == data["measured_best"])
