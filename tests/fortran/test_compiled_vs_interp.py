"""Differential harness: compiled execution layer vs the tree-walker.

The compiled layer (``fortran/compile.py``) must be *bit-identical* to
the tree-walking interpreter it replaces: same output lines, same
simulated schedules (cost events feed the discrete-event scheduler, so
makespan and lock statistics are part of the contract), same final
COMMON storage, and same errors on bad programs.  The tree-walker is
the oracle; any divergence here is a compiler bug by definition.
"""

from pathlib import Path

import pytest

from repro._util.errors import FortranError
from repro._util.text import strip_margin
from repro.fortran.interp import Cell, Interpreter, drain
from repro.fortran.parser import parse_source
from repro.machines import get_machine
from repro.pipeline.compile import force_translate
from repro.pipeline.run import force_run

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

#: analyzer demos that deliberately do not translate
NON_RUNNABLE = {"racy_stencil.frc"}

RUNNABLE = sorted(p.name for p in EXAMPLES.glob("*.frc")
                  if p.name not in NON_RUNNABLE)


def run_both(source, input_data=None):
    """Run one Fortran program under both layers; return the interps."""
    interps = []
    for compiled in (False, True):
        program = parse_source(strip_margin(source))
        interp = Interpreter(program, compiled=compiled)
        if input_data is not None:
            interp.set_input(input_data)
        drain(interp.run_program())
        interps.append(interp)
    return interps


def common_state(interp):
    """Snapshot of every COMMON block's final storage."""
    state = {}
    for name, block in interp.commons._blocks.items():
        values = []
        for slot in block:
            if isinstance(slot, Cell):
                values.append(slot.value)
            else:
                values.append(slot.data.tolist())
        state[name] = values
    return state


class TestExamplesBitIdentical:
    @pytest.mark.parametrize("example", RUNNABLE)
    @pytest.mark.parametrize("machine_key", ["sequent-balance", "hep"])
    @pytest.mark.parametrize("nproc", [1, 4])
    def test_example_identical(self, example, machine_key, nproc):
        source = (EXAMPLES / example).read_text(encoding="utf-8")
        translation = force_translate(source, get_machine(machine_key))
        tree = force_run(translation, nproc, compiled=False)
        comp = force_run(translation, nproc, compiled=True)
        assert comp.output == tree.output
        assert comp.output_records == tree.output_records
        assert comp.makespan == tree.makespan
        assert comp.stats.lock_acquisitions == tree.stats.lock_acquisitions
        assert comp.stats.contended_acquisitions == \
            tree.stats.contended_acquisitions
        assert comp.stats.spin_cycles == tree.stats.spin_cycles
        assert comp.stats.context_switches == tree.stats.context_switches
        assert comp.compile_fallbacks == {}

    @pytest.mark.parametrize("example", RUNNABLE)
    def test_example_identical_under_chunked_sched(self, example):
        source = (EXAMPLES / example).read_text(encoding="utf-8")
        machine = get_machine("sequent-balance")
        translation = force_translate(source, machine,
                                      sched="chunked", chunk=8)
        tree = force_run(translation, 4, compiled=False)
        comp = force_run(translation, 4, compiled=True)
        assert comp.output == tree.output
        assert comp.makespan == tree.makespan
        assert comp.compile_fallbacks == {}


FEATURE_PROGRAMS = {
    "do_negative_step_and_goto": """\
      PROGRAM MAIN
      INTEGER I, S
      S = 0
      DO 10 I = 9, 1, -2
      S = S + I
10    CONTINUE
      IF (S .NE. 25) GO TO 90
      WRITE(*,*) 'OK', S
      GO TO 99
90    WRITE(*,*) 'BAD', S
99    CONTINUE
      END
    """,
    "common_aliasing_across_units": """\
      PROGRAM MAIN
      INTEGER N, A(4)
      COMMON /BLK/ N, A
      INTEGER I
      N = 3
      DO 10 I = 1, 4
      A(I) = I * I
10    CONTINUE
      CALL BUMP
      WRITE(*,*) N, A(1), A(4)
      END
      SUBROUTINE BUMP
      INTEGER N, A(4)
      COMMON /BLK/ N, A
      N = N + 1
      A(1) = A(1) + 100
      A(4) = A(4) + 100
      END
    """,
    "function_calls_and_elseif": """\
      PROGRAM MAIN
      INTEGER I, K, CLS
      K = 0
      DO 10 I = 1, 10
      K = K + CLS(I)
10    CONTINUE
      WRITE(*,*) K
      END
      INTEGER FUNCTION CLS(X)
      INTEGER X
      IF (X .LT. 3) THEN
      CLS = 1
      ELSE IF (X .LT. 7) THEN
      CLS = 10
      ELSE
      CLS = 100
      END IF
      END
    """,
    "computed_goto_dispatch": """\
      PROGRAM MAIN
      INTEGER I, T
      T = 0
      DO 40 I = 1, 4
      GO TO (10, 20, 30), I
      T = T + 1000
      GO TO 40
10    T = T + 1
      GO TO 40
20    T = T + 10
      GO TO 40
30    T = T + 100
40    CONTINUE
      WRITE(*,*) T
      END
    """,
    "format_write_in_loop": """\
      PROGRAM MAIN
      INTEGER I
      REAL X
      DO 10 I = 1, 3
      X = I * 1.5
      WRITE(*,100) I, X
100   FORMAT('I=', I3, 2X, F6.2)
10    CONTINUE
      END
    """,
    "read_into_array": """\
      PROGRAM MAIN
      INTEGER A(3), I, S
      READ(*,*) A(1), A(2), A(3)
      S = 0
      DO 10 I = 1, 3
      S = S + A(I)
10    CONTINUE
      WRITE(*,*) S
      END
    """,
    "mixed_arithmetic_and_intrinsics": """\
      PROGRAM MAIN
      REAL X
      INTEGER I
      X = -7.6
      I = (-7) / 2
      WRITE(*,*) ABS(X), I, MOD(17, 5), MAX(2, 9), NINT(2.6)
      WRITE(*,*) 2 ** 10, 2.0 ** (-2)
      END
    """,
}

FEATURE_INPUT = {"read_into_array": "4 5 6\n"}


class TestFeatureProgramsIdentical:
    @pytest.mark.parametrize("name", sorted(FEATURE_PROGRAMS))
    def test_feature_identical(self, name):
        tree, comp = run_both(FEATURE_PROGRAMS[name],
                              input_data=FEATURE_INPUT.get(name))
        assert comp.output == tree.output
        assert common_state(comp) == common_state(tree)


ERROR_PROGRAMS = {
    "string_arithmetic": """\
      PROGRAM MAIN
      WRITE(*,*) 'A' + 1
      END
    """,
    "fell_off_the_end": """\
      PROGRAM MAIN
      INTEGER I
      I = 1
      GO TO 10
10    CONTINUE
      END
    """,
    "bad_format_descriptor": """\
      PROGRAM MAIN
      WRITE(*,100) 1
100   FORMAT(Q7)
      END
    """,
}


class TestErrorsIdentical:
    @pytest.mark.parametrize("name", sorted(ERROR_PROGRAMS))
    def test_same_error_both_layers(self, name):
        source = ERROR_PROGRAMS[name]
        messages = []
        for compiled in (False, True):
            program = parse_source(strip_margin(source))
            interp = Interpreter(program, compiled=compiled)
            if name == "fell_off_the_end":
                # this one terminates normally on END; skip the error
                # comparison and just check both complete identically
                drain(interp.run_program())
                messages.append("completed")
                continue
            with pytest.raises(FortranError) as excinfo:
                drain(interp.run_program())
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]


class TestFallbackControls:
    def test_env_var_forces_tree_walker(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        program = parse_source(strip_margin("""\
      PROGRAM MAIN
      WRITE(*,*) 1
      END
        """))
        interp = Interpreter(program)
        assert not interp.compiled_enabled
        drain(interp.run_program())
        assert interp.output == [" 1"] or interp.output

    def test_constructor_flag_forces_tree_walker(self):
        program = parse_source(strip_margin("""\
      PROGRAM MAIN
      WRITE(*,*) 1
      END
        """))
        interp = Interpreter(program, compiled=False)
        assert not interp.compiled_enabled
        assert interp.compile_fallbacks == {}
