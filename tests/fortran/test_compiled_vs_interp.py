"""Differential harness: the faster execution tiers vs the tree-walker.

Both compiled tiers — the closure compiler (``fortran/compile.py``)
and the source-codegen tier (``fortran/codegen.py``) — must be
*bit-identical* to the tree-walking interpreter they replace: same
output lines, same simulated schedules (cost events feed the
discrete-event scheduler, so makespan and lock statistics are part of
the contract), same final COMMON storage, and same errors on bad
programs.  The tree-walker is the oracle; any divergence here is a
compiler bug by definition.

The seeded mini-fuzzer at the bottom generates straight-line units
(assignment soup over scalars and arrays, then WRITE everything) so
tier agreement is checked beyond the hand-picked corpus.
"""

import random
from pathlib import Path

import pytest

from repro._util.errors import FortranError
from repro._util.text import strip_margin
from repro.fortran.interp import Cell, Cost, Interpreter, drain
from repro.fortran.parser import parse_source
from repro.machines import get_machine
from repro.pipeline.compile import force_translate
from repro.pipeline.run import force_run

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

#: analyzer demos that deliberately do not translate
NON_RUNNABLE = {"racy_stencil.frc"}

RUNNABLE = sorted(p.name for p in EXAMPLES.glob("*.frc")
                  if p.name not in NON_RUNNABLE)

#: the three execution tiers, oracle first
TIERS = ("interp", "closure", "source")


def run_tiers(source, input_data=None, tiers=TIERS):
    """Run one Fortran program on each tier; return the interpreters.

    The cost totals (statements, cycles) are attached to each
    interpreter as ``cost_totals`` — the codegen tier batches events,
    so per-event comparison is meaningless but the totals are part of
    the bit-identical contract.
    """
    interps = []
    for tier in tiers:
        program = parse_source(strip_margin(source))
        interp = Interpreter(program, compiled=tier != "interp",
                             codegen=tier)
        if input_data is not None:
            interp.set_input(input_data)
        statements = cycles = 0
        for event in interp.run_program():
            if isinstance(event, Cost):
                statements += event.statements
                cycles += event.cycles
        interp.cost_totals = (statements, cycles)
        interps.append(interp)
    return interps


def run_both(source, input_data=None):
    """Back-compat wrapper: (tree-walker, best compiled tier)."""
    tree, _, comp = run_tiers(source, input_data)
    return tree, comp


def common_state(interp):
    """Snapshot of every COMMON block's final storage."""
    state = {}
    for name, block in interp.commons._blocks.items():
        values = []
        for slot in block:
            if isinstance(slot, Cell):
                values.append(slot.value)
            else:
                values.append(slot.data.tolist())
        state[name] = values
    return state


class TestExamplesBitIdentical:
    @pytest.mark.parametrize("example", RUNNABLE)
    @pytest.mark.parametrize("machine_key", ["sequent-balance", "hep"])
    @pytest.mark.parametrize("nproc", [1, 4])
    def test_example_identical(self, example, machine_key, nproc):
        source = (EXAMPLES / example).read_text(encoding="utf-8")
        translation = force_translate(source, get_machine(machine_key))
        tree = force_run(translation, nproc, compiled=False)
        for tier in ("closure", "source"):
            comp = force_run(translation, nproc, codegen=tier)
            assert comp.output == tree.output, tier
            assert comp.output_records == tree.output_records, tier
            assert comp.makespan == tree.makespan, tier
            assert comp.stats.statements == tree.stats.statements, tier
            assert comp.stats.lock_acquisitions == \
                tree.stats.lock_acquisitions, tier
            assert comp.stats.contended_acquisitions == \
                tree.stats.contended_acquisitions, tier
            assert comp.stats.spin_cycles == tree.stats.spin_cycles, tier
            assert comp.stats.context_switches == \
                tree.stats.context_switches, tier
            assert comp.compile_fallbacks == {}, tier

    @pytest.mark.parametrize("example", RUNNABLE)
    @pytest.mark.parametrize("tier", ["closure", "source"])
    def test_example_identical_under_chunked_sched(self, example, tier):
        source = (EXAMPLES / example).read_text(encoding="utf-8")
        machine = get_machine("sequent-balance")
        translation = force_translate(source, machine,
                                      sched="chunked", chunk=8)
        tree = force_run(translation, 4, compiled=False)
        comp = force_run(translation, 4, codegen=tier)
        assert comp.output == tree.output
        assert comp.makespan == tree.makespan
        assert comp.compile_fallbacks == {}


FEATURE_PROGRAMS = {
    "do_negative_step_and_goto": """\
      PROGRAM MAIN
      INTEGER I, S
      S = 0
      DO 10 I = 9, 1, -2
      S = S + I
10    CONTINUE
      IF (S .NE. 25) GO TO 90
      WRITE(*,*) 'OK', S
      GO TO 99
90    WRITE(*,*) 'BAD', S
99    CONTINUE
      END
    """,
    "common_aliasing_across_units": """\
      PROGRAM MAIN
      INTEGER N, A(4)
      COMMON /BLK/ N, A
      INTEGER I
      N = 3
      DO 10 I = 1, 4
      A(I) = I * I
10    CONTINUE
      CALL BUMP
      WRITE(*,*) N, A(1), A(4)
      END
      SUBROUTINE BUMP
      INTEGER N, A(4)
      COMMON /BLK/ N, A
      N = N + 1
      A(1) = A(1) + 100
      A(4) = A(4) + 100
      END
    """,
    "function_calls_and_elseif": """\
      PROGRAM MAIN
      INTEGER I, K, CLS
      K = 0
      DO 10 I = 1, 10
      K = K + CLS(I)
10    CONTINUE
      WRITE(*,*) K
      END
      INTEGER FUNCTION CLS(X)
      INTEGER X
      IF (X .LT. 3) THEN
      CLS = 1
      ELSE IF (X .LT. 7) THEN
      CLS = 10
      ELSE
      CLS = 100
      END IF
      END
    """,
    "computed_goto_dispatch": """\
      PROGRAM MAIN
      INTEGER I, T
      T = 0
      DO 40 I = 1, 4
      GO TO (10, 20, 30), I
      T = T + 1000
      GO TO 40
10    T = T + 1
      GO TO 40
20    T = T + 10
      GO TO 40
30    T = T + 100
40    CONTINUE
      WRITE(*,*) T
      END
    """,
    "format_write_in_loop": """\
      PROGRAM MAIN
      INTEGER I
      REAL X
      DO 10 I = 1, 3
      X = I * 1.5
      WRITE(*,100) I, X
100   FORMAT('I=', I3, 2X, F6.2)
10    CONTINUE
      END
    """,
    "read_into_array": """\
      PROGRAM MAIN
      INTEGER A(3), I, S
      READ(*,*) A(1), A(2), A(3)
      S = 0
      DO 10 I = 1, 3
      S = S + A(I)
10    CONTINUE
      WRITE(*,*) S
      END
    """,
    "mixed_arithmetic_and_intrinsics": """\
      PROGRAM MAIN
      REAL X
      INTEGER I
      X = -7.6
      I = (-7) / 2
      WRITE(*,*) ABS(X), I, MOD(17, 5), MAX(2, 9), NINT(2.6)
      WRITE(*,*) 2 ** 10, 2.0 ** (-2)
      END
    """,
}

FEATURE_INPUT = {"read_into_array": "4 5 6\n"}


class TestFeatureProgramsIdentical:
    @pytest.mark.parametrize("name", sorted(FEATURE_PROGRAMS))
    def test_feature_identical(self, name):
        tree, closure, source = run_tiers(
            FEATURE_PROGRAMS[name],
            input_data=FEATURE_INPUT.get(name))
        for tier, comp in (("closure", closure), ("source", source)):
            assert comp.output == tree.output, tier
            assert common_state(comp) == common_state(tree), tier
            assert comp.cost_totals == tree.cost_totals, tier


ERROR_PROGRAMS = {
    "string_arithmetic": """\
      PROGRAM MAIN
      WRITE(*,*) 'A' + 1
      END
    """,
    "fell_off_the_end": """\
      PROGRAM MAIN
      INTEGER I
      I = 1
      GO TO 10
10    CONTINUE
      END
    """,
    "bad_format_descriptor": """\
      PROGRAM MAIN
      WRITE(*,100) 1
100   FORMAT(Q7)
      END
    """,
}


class TestErrorsIdentical:
    @pytest.mark.parametrize("name", sorted(ERROR_PROGRAMS))
    def test_same_error_on_every_tier(self, name):
        source = ERROR_PROGRAMS[name]
        messages = []
        for tier in TIERS:
            program = parse_source(strip_margin(source))
            interp = Interpreter(program, compiled=tier != "interp",
                                 codegen=tier)
            if name == "fell_off_the_end":
                # this one terminates normally on END; skip the error
                # comparison and just check all tiers complete alike
                drain(interp.run_program())
                messages.append("completed")
                continue
            with pytest.raises(FortranError) as excinfo:
                drain(interp.run_program())
            messages.append(str(excinfo.value))
        assert len(set(messages)) == 1, messages


class TestFallbackControls:
    def test_env_var_forces_tree_walker(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        program = parse_source(strip_margin("""\
      PROGRAM MAIN
      WRITE(*,*) 1
      END
        """))
        interp = Interpreter(program)
        assert not interp.compiled_enabled
        drain(interp.run_program())
        assert interp.output == [" 1"] or interp.output

    def test_constructor_flag_forces_tree_walker(self):
        program = parse_source(strip_margin("""\
      PROGRAM MAIN
      WRITE(*,*) 1
      END
        """))
        interp = Interpreter(program, compiled=False)
        assert not interp.compiled_enabled
        assert interp.compile_fallbacks == {}


# ----------------------------------------------------------------------
# seeded mini-fuzzer: straight-line assignment soup
# ----------------------------------------------------------------------
#: integer scalars the fuzzer may assign; ``I`` is reserved as the
#: (never reassigned) in-bounds array index
_FUZZ_INTS = ("J", "K", "L")
_FUZZ_REALS = ("X", "Y", "Z")


def _fuzz_leaf(rng, kind):
    if kind == "int":
        choices = [str(rng.randint(-9, 9)),
                   rng.choice(_FUZZ_INTS), "I",
                   f"A({rng.randint(1, 5)})", "A(I)"]
    else:
        choices = [f"{rng.randint(-9, 9)}.{rng.randint(0, 99):02d}",
                   rng.choice(_FUZZ_REALS),
                   f"B({rng.randint(1, 5)})", "B(I)"]
    return rng.choice(choices)


def _fuzz_expr(rng, kind, depth):
    if depth <= 0 or rng.random() < 0.35:
        return _fuzz_leaf(rng, kind)
    roll = rng.random()
    a = _fuzz_expr(rng, kind, depth - 1)
    if roll < 0.15:
        return f"(-({a}))"
    b = _fuzz_expr(rng, kind, depth - 1)
    if roll < 0.70:
        op = rng.choice("+-*")
        return f"({a} {op} {b})"
    if kind == "int":
        return rng.choice([f"MOD({a}, 7)", f"MAX({a}, {b})",
                           f"MIN({a}, {b})", f"({a} / 3)"])
    return rng.choice([f"ABS({a})", f"MAX({a}, {b})",
                       f"MIN({a}, {b})", f"({a} / 4.0)"])


def _fuzz_program(rng):
    """One straight-line unit: init everything, mutate, WRITE it all.

    Integer assignments are wrapped in MOD so chained multiplies
    cannot explode into huge bignums; ``I`` stays fixed so ``A(I)``
    subscripts are always in bounds.  Divisions only ever use nonzero
    literals.  Any remaining float corner (inf propagation, negative
    zero) must simply agree across the three tiers.
    """
    lines = ["      PROGRAM FUZZ",
             "      INTEGER I, J, K, L, A(5)",
             "      REAL X, Y, Z, B(5)",
             f"      I = {rng.randint(1, 5)}"]
    for n, var in enumerate(_FUZZ_INTS):
        lines.append(f"      {var} = {n + 2}")
    for n, var in enumerate(_FUZZ_REALS):
        lines.append(f"      {var} = {n}.5")
    for slot in range(1, 6):
        lines.append(f"      A({slot}) = {rng.randint(-9, 9)}")
        lines.append(f"      B({slot}) = {rng.randint(-9, 9)}.25")
    for _ in range(rng.randint(8, 18)):
        if rng.random() < 0.5:
            target = rng.choice(_FUZZ_INTS + (f"A({rng.randint(1, 5)})",
                                              "A(I)"))
            rhs = f"MOD({_fuzz_expr(rng, 'int', 2)}, 9973)"
        else:
            target = rng.choice(_FUZZ_REALS + (f"B({rng.randint(1, 5)})",
                                               "B(I)"))
            rhs = _fuzz_expr(rng, "real", 2)
        lines.append(f"      {target} = {rhs}")
    lines.append("      WRITE(*,*) I, J, K, L")
    lines.append("      WRITE(*,*) X, Y, Z")
    lines.append("      WRITE(*,*) A(1), A(2), A(3), A(4), A(5)")
    lines.append("      WRITE(*,*) B(1), B(2), B(3), B(4), B(5)")
    lines.append("      END")
    return "\n".join(lines) + "\n"


class TestStraightLineFuzz:
    """~50 generated units; every tier must agree bit-for-bit."""

    @pytest.mark.parametrize("seed", range(50))
    def test_tiers_agree(self, seed):
        source = _fuzz_program(random.Random(20260809 + seed))
        results = []
        for tier in TIERS:
            program = parse_source(source)
            interp = Interpreter(program, compiled=tier != "interp",
                                 codegen=tier)
            statements = cycles = 0
            error = None
            try:
                for event in interp.run_program():
                    if isinstance(event, Cost):
                        statements += event.statements
                        cycles += event.cycles
            except FortranError as exc:
                error = str(exc)
            results.append((tier, interp.output, statements, cycles,
                            error))
            if tier != "interp":
                assert interp.compile_fallbacks == {}, \
                    (tier, interp.compile_fallbacks, source)
        baseline = results[0][1:]
        for tier, *rest in results[1:]:
            assert tuple(rest) == baseline, (tier, source)
