"""Subroutines, functions, argument passing, COMMON blocks."""

import pytest

from repro._util.text import strip_margin
from repro.fortran import FortranError, Interpreter, parse_source
from repro.fortran.interp import drain


class TestSubroutines:
    def test_simple_call(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              CALL GREET
            END
            SUBROUTINE GREET
              WRITE(*,*) 'HI'
            END
        """)
        assert out == ["HI"]

    def test_scalar_byref(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER K
              K = 1
              CALL BUMP(K)
              WRITE(*,*) K
            END
            SUBROUTINE BUMP(N)
              INTEGER N
              N = N + 1
            END
        """)
        assert out == ["2"]

    def test_expression_arg_not_writable_back(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER K
              K = 5
              CALL BUMP(K + 0)
              WRITE(*,*) K
            END
            SUBROUTINE BUMP(N)
              INTEGER N
              N = N + 1
            END
        """)
        assert out == ["5"]

    def test_array_aliasing(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER A(3)
              A(1) = 0
              CALL FILL(A, 3)
              WRITE(*,*) A(1), A(2), A(3)
            END
            SUBROUTINE FILL(V, N)
              INTEGER V(N), N
              DO 10 I = 1, N
                V(I) = I * 100
            10 CONTINUE
            END
        """)
        assert out == ["100 200 300"]

    def test_array_element_byref(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER A(3)
              A(2) = 7
              CALL BUMP(A(2))
              WRITE(*,*) A(2)
            END
            SUBROUTINE BUMP(N)
              INTEGER N
              N = N + 1
            END
        """)
        assert out == ["8"]

    def test_adjustable_array_reshape(self, run_fortran):
        # 2x3 storage viewed as a 6-vector in the callee (column major).
        out = run_fortran("""
            PROGRAM P
              INTEGER M(2, 3)
              DO 10 J = 1, 3
              DO 10 I = 1, 2
                M(I, J) = 10 * I + J
            10 CONTINUE
              CALL SHOW(M, 6)
            END
            SUBROUTINE SHOW(V, N)
              INTEGER V(N), N
              WRITE(*,*) V(1), V(2), V(3)
            END
        """)
        assert out == ["11 21 12"]

    def test_nested_calls(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER K
              K = 1
              CALL OUTER(K)
              WRITE(*,*) K
            END
            SUBROUTINE OUTER(N)
              INTEGER N
              CALL INNER(N)
              N = N * 2
            END
            SUBROUTINE INNER(N)
              INTEGER N
              N = N + 9
            END
        """)
        assert out == ["20"]

    def test_return_statement(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              CALL EARLY
              WRITE(*,*) 'DONE'
            END
            SUBROUTINE EARLY
              WRITE(*,*) 'IN'
              RETURN
              WRITE(*,*) 'NEVER'
            END
        """)
        assert out == ["IN", "DONE"]

    def test_wrong_arg_count(self, run_fortran):
        with pytest.raises(FortranError):
            run_fortran("""
                PROGRAM P
                  CALL F(1, 2)
                END
                SUBROUTINE F(A)
                END
            """)

    def test_unknown_subroutine(self, run_fortran):
        with pytest.raises(FortranError):
            run_fortran("""
                PROGRAM P
                  CALL NOSUCH
                END
            """)

    def test_stop_inside_subroutine_halts_program(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              CALL QUIT
              WRITE(*,*) 'NEVER'
            END
            SUBROUTINE QUIT
              WRITE(*,*) 'BYE'
              STOP
            END
        """)
        assert out == ["BYE"]


class TestFunctions:
    def test_integer_function(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER TWICE
              WRITE(*,*) TWICE(21)
            END
            INTEGER FUNCTION TWICE(N)
              INTEGER N
              TWICE = 2 * N
            END
        """)
        assert out == ["42"]

    def test_real_function_implicit(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) AVG(1.0, 3.0)
            END
            FUNCTION AVG(A, B)
              AVG = (A + B) / 2.0
            END
        """)
        assert out == ["2.0"]

    def test_function_in_expression(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER SQ
              WRITE(*,*) SQ(3) + SQ(4)
            END
            INTEGER FUNCTION SQ(N)
              INTEGER N
              SQ = N * N
            END
        """)
        assert out == ["25"]

    def test_function_with_array_arg(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER A(4), ISUM
              DO 10 I = 1, 4
                A(I) = I
            10 CONTINUE
              WRITE(*,*) ISUM(A, 4)
            END
            INTEGER FUNCTION ISUM(V, N)
              INTEGER V(N), N
              ISUM = 0
              DO 10 I = 1, N
                ISUM = ISUM + V(I)
            10 CONTINUE
            END
        """)
        assert out == ["10"]

    def test_function_calls_function(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER F
              WRITE(*,*) F(5)
            END
            INTEGER FUNCTION F(N)
              INTEGER N, G
              F = G(N) + 1
            END
            INTEGER FUNCTION G(N)
              INTEGER N
              G = N * 10
            END
        """)
        assert out == ["51"]


class TestCommonBlocks:
    def test_shared_between_units(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              COMMON /STATE/ K
              INTEGER K
              K = 5
              CALL SHOW
            END
            SUBROUTINE SHOW
              COMMON /STATE/ K
              INTEGER K
              WRITE(*,*) K
            END
        """)
        assert out == ["5"]

    def test_common_array(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              COMMON /BLK/ A
              REAL A(10)
              A(3) = 1.5
              CALL DOUBLE
              WRITE(*,*) A(3)
            END
            SUBROUTINE DOUBLE
              COMMON /BLK/ A
              REAL A(10)
              A(3) = A(3) * 2.0
            END
        """)
        assert out == ["3.0"]

    def test_common_written_in_sub_read_in_main(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              COMMON /R/ ANSWER
              CALL COMPUTE
              WRITE(*,*) ANSWER
            END
            SUBROUTINE COMPUTE
              COMMON /R/ ANSWER
              ANSWER = 42.0
            END
        """)
        assert out == ["42.0"]

    def test_member_count_mismatch_raises(self, run_fortran):
        with pytest.raises(FortranError):
            run_fortran("""
                PROGRAM P
                  COMMON /B/ X, Y
                  CALL S
                END
                SUBROUTINE S
                  COMMON /B/ X
                END
            """)

    def test_two_blocks_independent(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              COMMON /A/ I
              COMMON /B/ J
              I = 1
              J = 2
              WRITE(*,*) I, J
            END
        """)
        assert out == ["1 2"]


class TestCostModel:
    def test_costs_accumulate(self):
        program = parse_source(strip_margin("""
            PROGRAM P
              ISUM = 0
              DO 10 I = 1, 100
                ISUM = ISUM + I
            10 CONTINUE
            END
        """))
        interp = Interpreter(program)
        total, _halt = drain(interp.run_program())
        # At least one cost unit per executed statement: >= ~200.
        assert total > 200

    def test_cost_scales(self):
        src = strip_margin("""
            PROGRAM P
              I = 1
            END
        """)
        base, _ = drain(Interpreter(parse_source(src)).run_program())
        scaled, _ = drain(Interpreter(parse_source(src),
                                      cost_scale=3).run_program())
        assert scaled == 3 * base
