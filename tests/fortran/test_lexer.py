"""Tokenizer tests."""

import pytest

from repro.fortran import FortranError, TokenKind, tokenize_statement


def kinds(text):
    return [t.kind for t in tokenize_statement(text)][:-1]


def texts(text):
    return [t.text for t in tokenize_statement(text)][:-1]


class TestBasicTokens:
    def test_names_uppercased(self):
        assert texts("foo Bar BAZ") == ["FOO", "BAR", "BAZ"]

    def test_integer(self):
        tokens = tokenize_statement("42")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].text == "42"

    def test_real_forms(self):
        for literal in ["1.5", "1.", ".5", "1E3", "1.5E-2", "2.0D0"]:
            tokens = tokenize_statement(literal)
            assert tokens[0].kind is TokenKind.REAL, literal

    def test_string_single_quotes(self):
        tokens = tokenize_statement("'hello world'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "hello world"

    def test_string_doubled_quote_escape(self):
        tokens = tokenize_statement("'don''t'")
        assert tokens[0].text == "don't"

    def test_unterminated_string(self):
        with pytest.raises(FortranError):
            tokenize_statement("'oops")

    def test_operators(self):
        assert texts("A + B * C ** 2") == ["A", "+", "B", "*", "C", "**", "2"]

    def test_dot_operators(self):
        assert texts("A .EQ. B .AND. .NOT. C") == \
            ["A", ".EQ.", "B", ".AND.", ".NOT.", "C"]

    def test_dot_operators_lowercase(self):
        assert texts("a .lt. b") == ["A", ".LT.", "B"]

    def test_logical_constants(self):
        assert texts(".TRUE. .FALSE.") == [".TRUE.", ".FALSE."]

    def test_integer_dot_operator_ambiguity(self):
        # `1.EQ.2` must lex as INT OP INT, not REAL NAME . INT
        assert texts("1.EQ.2") == ["1", ".EQ.", "2"]

    def test_real_followed_by_comma(self):
        assert texts("1.5, 2.5") == ["1.5", ",", "2.5"]

    def test_eos_token(self):
        tokens = tokenize_statement("X")
        assert tokens[-1].kind is TokenKind.EOS

    def test_unexpected_character(self):
        with pytest.raises(FortranError):
            tokenize_statement("A ? B")

    def test_concatenation_operator(self):
        assert texts("A // B") == ["A", "//", "B"]

    def test_parentheses_and_commas(self):
        assert texts("F(X, Y)") == ["F", "(", "X", ",", "Y", ")"]
