"""End-to-end interpreter tests: serial programs, no Force features."""

import pytest

from repro._util.text import strip_margin
from repro.fortran import FortranError, parse_source


class TestAssignmentAndArithmetic:
    def test_hello_write(self, run_fortran):
        out = run_fortran("""
            PROGRAM HELLO
              WRITE(*,*) 'HELLO'
            END
        """)
        assert out == ["HELLO"]

    def test_integer_arithmetic(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER I
              I = 2 + 3 * 4
              WRITE(*,*) I
            END
        """)
        assert out == ["14"]

    def test_integer_division_truncates(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) 7 / 2, -7 / 2, 7 / -2
            END
        """)
        assert out == ["3 -3 -3"]

    def test_real_division(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              REAL X
              X = 7.0 / 2.0
              WRITE(*,*) X
            END
        """)
        assert out == ["3.5"]

    def test_mixed_arithmetic_promotes(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) 1 + 0.5
            END
        """)
        assert out == ["1.5"]

    def test_power(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) 2 ** 10, 2.0 ** 0.5
            END
        """)
        assert out[0].startswith("1024 1.41")

    def test_real_to_int_truncation(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER I
              I = 3.99
              WRITE(*,*) I
            END
        """)
        assert out == ["3"]

    def test_implicit_typing(self, run_fortran):
        # I-N integer, others real.
        out = run_fortran("""
            PROGRAM P
              K = 3.7
              X = 3.7
              WRITE(*,*) K, X
            END
        """)
        assert out == ["3 3.7"]

    def test_unary_minus(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) -3 + 1, 2 * (-3)
            END
        """)
        assert out == ["-2 -6"]

    def test_operator_precedence(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) 2 + 3 * 4 ** 2
            END
        """)
        assert out == ["50"]

    def test_string_concatenation(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              CHARACTER*16 S
              S = 'FOO' // 'BAR'
              WRITE(*,*) S
            END
        """)
        assert out == ["FOOBAR"]


class TestControlFlow:
    def test_logical_if(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              I = 5
              IF (I .GT. 3) WRITE(*,*) 'BIG'
              IF (I .LT. 3) WRITE(*,*) 'SMALL'
            END
        """)
        assert out == ["BIG"]

    def test_block_if_else(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              I = 1
              IF (I .EQ. 0) THEN
                WRITE(*,*) 'ZERO'
              ELSE
                WRITE(*,*) 'NONZERO'
              END IF
            END
        """)
        assert out == ["NONZERO"]

    def test_elseif_chain(self, run_fortran):
        src = """
            PROGRAM P
              I = {}
              IF (I .EQ. 1) THEN
                WRITE(*,*) 'ONE'
              ELSE IF (I .EQ. 2) THEN
                WRITE(*,*) 'TWO'
              ELSE IF (I .EQ. 3) THEN
                WRITE(*,*) 'THREE'
              ELSE
                WRITE(*,*) 'MANY'
              END IF
            END
        """
        def program_for(i):
            return src.format(i)
        assert run_fortran(program_for(1)) == ["ONE"]
        assert run_fortran(program_for(2)) == ["TWO"]
        assert run_fortran(program_for(3)) == ["THREE"]
        assert run_fortran(program_for(7)) == ["MANY"]

    def test_branch_does_not_leak_into_else(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              IF (1 .EQ. 1) THEN
                WRITE(*,*) 'A'
              ELSE
                WRITE(*,*) 'B'
              END IF
              WRITE(*,*) 'AFTER'
            END
        """)
        assert out == ["A", "AFTER"]

    def test_nested_if(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              I = 2
              J = 3
              IF (I .EQ. 2) THEN
                IF (J .EQ. 3) THEN
                  WRITE(*,*) 'BOTH'
                ELSE
                  WRITE(*,*) 'ONLY I'
                END IF
              END IF
            END
        """)
        assert out == ["BOTH"]

    def test_do_loop_labelled(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              ISUM = 0
              DO 10 I = 1, 10
                ISUM = ISUM + I
            10 CONTINUE
              WRITE(*,*) ISUM
            END
        """)
        assert out == ["55"]

    def test_do_loop_enddo(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              ISUM = 0
              DO I = 1, 4
                ISUM = ISUM + I * I
              END DO
              WRITE(*,*) ISUM
            END
        """)
        assert out == ["30"]

    def test_do_loop_step(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              N = 0
              DO 10 I = 10, 1, -2
                N = N + 1
            10 CONTINUE
              WRITE(*,*) N, I
            END
        """)
        # 10,8,6,4,2 -> five trips; I ends at 0 after final increment.
        assert out == ["5 0"]

    def test_zero_trip_do(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              N = 0
              DO 10 I = 5, 1
                N = N + 1
            10 CONTINUE
              WRITE(*,*) N
            END
        """)
        assert out == ["0"]

    def test_nested_do_shared_terminal(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              N = 0
              DO 10 I = 1, 3
              DO 10 J = 1, 4
                N = N + 1
            10 CONTINUE
              WRITE(*,*) N
            END
        """)
        assert out == ["12"]

    def test_nested_do_distinct_terminals(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              N = 0
              DO 20 I = 1, 3
                DO 10 J = 1, 2
                  N = N + 10
            10   CONTINUE
                N = N + 1
            20 CONTINUE
              WRITE(*,*) N
            END
        """)
        assert out == ["63"]

    def test_goto(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              I = 0
            10 I = I + 1
              IF (I .LT. 5) GO TO 10
              WRITE(*,*) I
            END
        """)
        assert out == ["5"]

    def test_goto_forward(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              GO TO 20
              WRITE(*,*) 'SKIPPED'
            20 WRITE(*,*) 'LANDED'
            END
        """)
        assert out == ["LANDED"]

    def test_computed_goto(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              I = 2
              GO TO (10, 20, 30), I
            10 WRITE(*,*) 'TEN'
              GO TO 40
            20 WRITE(*,*) 'TWENTY'
              GO TO 40
            30 WRITE(*,*) 'THIRTY'
            40 CONTINUE
            END
        """)
        assert out == ["TWENTY"]

    def test_stop(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) 'BEFORE'
              STOP
              WRITE(*,*) 'AFTER'
            END
        """)
        assert out == ["BEFORE"]

    def test_goto_out_of_do(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              DO 10 I = 1, 100
                IF (I .EQ. 3) GO TO 99
            10 CONTINUE
            99 WRITE(*,*) I
            END
        """)
        assert out == ["3"]


class TestArrays:
    def test_one_dimensional(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER A(5)
              DO 10 I = 1, 5
                A(I) = I * I
            10 CONTINUE
              WRITE(*,*) A(1), A(3), A(5)
            END
        """)
        assert out == ["1 9 25"]

    def test_two_dimensional_column_major(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER M(2, 3)
              DO 10 J = 1, 3
              DO 10 I = 1, 2
                M(I, J) = 10 * I + J
            10 CONTINUE
              WRITE(*,*) M(1, 1), M(2, 3)
            END
        """)
        assert out == ["11 23"]

    def test_explicit_lower_bound(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER A(0:4)
              A(0) = 7
              A(4) = 9
              WRITE(*,*) A(0), A(4)
            END
        """)
        assert out == ["7 9"]

    def test_out_of_bounds_raises(self, run_fortran):
        with pytest.raises(FortranError):
            run_fortran("""
                PROGRAM P
                  INTEGER A(3)
                  A(4) = 1
                END
            """)

    def test_dimension_statement(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              DIMENSION X(4)
              X(2) = 2.5
              WRITE(*,*) X(2)
            END
        """)
        assert out == ["2.5"]

    def test_parameter_sized_array(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              PARAMETER (N = 6)
              INTEGER A(N)
              A(N) = 42
              WRITE(*,*) A(6)
            END
        """)
        assert out == ["42"]


class TestDataAndParameter:
    def test_parameter_chain(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              PARAMETER (N = 4, M = N * 2)
              WRITE(*,*) N, M
            END
        """)
        assert out == ["4 8"]

    def test_data_scalar(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER K
              DATA K /7/
              WRITE(*,*) K
            END
        """)
        assert out == ["7"]

    def test_data_array_full(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER A(3)
              DATA A /1, 2, 3/
              WRITE(*,*) A(1), A(2), A(3)
            END
        """)
        assert out == ["1 2 3"]

    def test_data_array_fill(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              INTEGER A(3)
              DATA A /9/
              WRITE(*,*) A(1), A(3)
            END
        """)
        assert out == ["9 9"]


class TestIntrinsics:
    def test_abs_mod(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) ABS(-3), MOD(10, 3)
            END
        """)
        assert out == ["3 1"]

    def test_max_min(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) MAX(1, 5, 3), MIN(2, -1)
            END
        """)
        assert out == ["5 -1"]

    def test_sqrt(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) SQRT(16.0)
            END
        """)
        assert out == ["4.0"]

    def test_float_int_conversions(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) FLOAT(3), INT(3.9), NINT(3.9)
            END
        """)
        assert out == ["3.0 3 4"]

    def test_sign(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              WRITE(*,*) SIGN(5, -1), SIGN(5, 1)
            END
        """)
        assert out == ["-5 5"]


class TestErrors:
    def test_undefined_label(self):
        with pytest.raises(FortranError):
            parse_source(strip_margin("""
                PROGRAM P
                  GO TO 99
                END
            """))

    def test_missing_end(self):
        with pytest.raises(FortranError):
            parse_source("PROGRAM P\n  I = 1\n")

    def test_unclosed_if(self):
        with pytest.raises(FortranError):
            parse_source(strip_margin("""
                PROGRAM P
                  IF (1 .EQ. 1) THEN
                END
            """))

    def test_else_without_if(self):
        with pytest.raises(FortranError):
            parse_source(strip_margin("""
                PROGRAM P
                  ELSE
                END
            """))

    def test_integer_division_by_zero(self, run_fortran):
        with pytest.raises(FortranError):
            run_fortran("""
                PROGRAM P
                  I = 0
                  J = 1 / I
                END
            """)

    def test_logical_type_mismatch(self, run_fortran):
        with pytest.raises(FortranError):
            run_fortran("""
                PROGRAM P
                  I = 1 .AND. 2
                END
            """)


class TestComments:
    def test_comment_lines_skipped(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
            C This is a comment
            * So is this
            ! And this
              WRITE(*,*) 'OK'
            END
        """)
        assert out == ["OK"]

    def test_continuation(self, run_fortran):
        out = run_fortran("""
            PROGRAM P
              I = 1 + &
                  2 + &
                  3
              WRITE(*,*) I
            END
        """)
        assert out == ["6"]
