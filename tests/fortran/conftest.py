"""Shared helpers for Fortran interpreter tests."""

import pytest

from repro._util.text import strip_margin
from repro.fortran import Interpreter, parse_source
from repro.fortran.interp import drain


@pytest.fixture()
def run_fortran():
    """Run a serial Fortran program, returning its output lines."""

    def _run(source: str) -> list[str]:
        program = parse_source(strip_margin(source))
        interp = Interpreter(program)
        drain(interp.run_program())
        return interp.output

    return _run
