"""Source-codegen tier specifics: caching, facts gating, provenance.

The differential contract (codegen vs closures vs tree-walker) lives
in ``test_compiled_vs_interp.py``; this file covers what is unique to
the generated-source tier — the artifact cache keyed on the facts
digest, the numpy kernel gate, provenance comments, and the
stale-facts refusal in the CLI.
"""

import json

import pytest

from repro._util.text import strip_margin
from repro.fortran import codegen
from repro.fortran.interp import Cost, Interpreter
from repro.fortran.parser import parse_source

KERNEL_SOURCE = strip_margin("""\
      PROGRAM KERN
      REAL U(10), V(10)
      INTEGER I
      DO 5 I = 1, 10
      U(I) = I * 1.0
5     CONTINUE
      DO 10 I = 2, 9
      V(I) = 0.5 * U(I-1) + 0.5 * U(I+1)
10    CONTINUE
      WRITE(*,*) NINT(V(5))
      END
""")


def kern_facts(race_free=True):
    return {"version": 1, "files": [{"doalls": [
        {"routine": "KERN", "label": 10, "race_free": race_free},
    ]}]}


def run_source_tier(program, facts=None):
    """Run on the codegen tier; return (interp, statements, cost_events)."""
    interp = Interpreter(program, codegen="source", facts=facts)
    statements = 0
    events = 0
    for event in interp.run_program():
        if isinstance(event, Cost):
            statements += event.statements
            events += 1
    return interp, statements, events


class TestFactsDigest:
    def test_no_facts_sentinel(self):
        assert codegen.facts_digest(None) == "no-facts"

    def test_digest_is_key_order_independent(self):
        a = {"files": [{"doalls": []}], "version": 1}
        b = {"version": 1, "files": [{"doalls": []}]}
        assert codegen.facts_digest(a) == codegen.facts_digest(b)

    def test_different_facts_different_digest(self):
        assert codegen.facts_digest(kern_facts(True)) != \
            codegen.facts_digest(kern_facts(False))


class TestArtifactCacheKeyedOnFacts:
    def test_facts_change_invalidates_cached_artifact(self):
        # one parse => one unit object => one WeakKeyDictionary slot;
        # the no-facts artifact must not be reused once a facts doc
        # proves the loop race-free (it was generated without kernels)
        program = parse_source(KERNEL_SOURCE)
        plain, plain_stmts, plain_events = run_source_tier(program)
        assert plain.codegen_kernelized == {}
        gated, gated_stmts, gated_events = run_source_tier(
            program, facts=kern_facts())
        assert gated.codegen_kernelized == {"KERN": [10]}
        # identical semantics, different artifact: statement totals
        # agree while the kernelized run batches into fewer events
        assert gated_stmts == plain_stmts
        assert gated_events < plain_events
        assert plain.output == gated.output

    def test_same_facts_digest_reuses_artifact(self):
        program = parse_source(KERNEL_SOURCE)
        run_source_tier(program, facts=kern_facts())
        cached = codegen._CACHE.get(program.unit("KERN"))
        before = len(cached)
        # a structurally equal facts doc (fresh dict) hits the cache
        run_source_tier(program, facts=kern_facts())
        assert len(cached) == before

    def test_unproven_loop_is_not_kernelized(self):
        program = parse_source(KERNEL_SOURCE)
        interp, _, _ = run_source_tier(program,
                                       facts=kern_facts(race_free=False))
        assert interp.codegen_kernelized == {}


class TestProvenanceComments:
    def test_generated_source_maps_back_to_fortran_lines(self):
        program = parse_source(KERNEL_SOURCE)
        interp, _, _ = run_source_tier(program)
        source = interp.codegen_sources()["KERN"]
        # WRITE sits on line 10 of the Fortran unit; its generated
        # statement carries that provenance marker
        assert "# L10" in source
        assert "unit KERN" in source


class TestStaleFactsRefusal:
    def _fresh(self, monkeypatch, stamped, current):
        from repro._util import gitrev
        from repro.pipeline.cli import _fresh_facts
        monkeypatch.setattr(gitrev, "git_revision",
                            lambda root=None, warn=True: current)
        doc = kern_facts()
        if stamped is not None:
            doc["git_revision"] = stamped
        return _fresh_facts(doc, "facts.json"), doc

    def test_matching_revision_accepted(self, monkeypatch, capsys):
        accepted, doc = self._fresh(monkeypatch, "abc1234", "abc1234")
        assert accepted is doc
        assert capsys.readouterr().err == ""

    def test_mismatch_warns_and_drops(self, monkeypatch, capsys):
        accepted, _ = self._fresh(monkeypatch, "abc1234", "fff9999")
        assert accepted is None
        err = capsys.readouterr().err
        assert "stale facts" in err
        assert "abc1234" in err and "fff9999" in err

    def test_unstamped_doc_accepted(self, monkeypatch, capsys):
        accepted, doc = self._fresh(monkeypatch, None, "abc1234")
        assert accepted is doc

    def test_no_git_accepted(self, monkeypatch, capsys):
        accepted, doc = self._fresh(monkeypatch, "abc1234", None)
        assert accepted is doc

    def test_build_facts_stamps_revision(self):
        from repro.analysis.facts import build_facts
        doc = build_facts([])
        assert "git_revision" in doc
        # JSON round trip keeps the stamp (None outside a checkout)
        assert json.loads(json.dumps(doc))["git_revision"] \
            == doc["git_revision"]


class TestTierSelection:
    def test_env_var_interp(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "interp")
        interp = Interpreter(parse_source(KERNEL_SOURCE))
        assert interp.codegen_tier == "interp"

    def test_bad_tier_rejected(self):
        from repro._util.errors import FortranError
        with pytest.raises(FortranError, match="unknown codegen tier"):
            Interpreter(parse_source(KERNEL_SOURCE), codegen="llvm")

    def test_no_jit_overrides_tier(self):
        interp = Interpreter(parse_source(KERNEL_SOURCE),
                             compiled=False, codegen="source")
        assert interp.codegen_tier == "interp"
