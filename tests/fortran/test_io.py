"""FORMAT-directed WRITE and list-directed READ tests."""

import pytest

from repro._util.text import strip_margin
from repro.fortran import FortranError, Interpreter, parse_source
from repro.fortran.formats import apply_format, parse_format
from repro.fortran.interp import drain


def run_io(source, input_data=None):
    program = parse_source(strip_margin(source))
    interp = Interpreter(program)
    if input_data is not None:
        interp.set_input(input_data)
    drain(interp.run_program())
    return interp.output


class TestFormatParser:
    def test_integer_descriptor(self):
        edits = parse_format("I5")
        assert len(edits) == 1 and edits[0].kind == "I"
        assert edits[0].width == 5

    def test_repeat_counts(self):
        assert len(parse_format("3I4")) == 3

    def test_group_repeat(self):
        edits = parse_format("2(I2, F6.2)")
        assert [e.kind for e in edits] == ["I", "F", "I", "F"]

    def test_literal_and_blanks(self):
        edits = parse_format("'X =', 2X, F8.3")
        assert edits[0].kind == "LIT" and edits[0].text == "X ="
        assert edits[1].kind == "X" and edits[1].width == 2

    def test_doubled_quote_in_literal(self):
        edits = parse_format("'IT''S'")
        assert edits[0].text == "IT'S"

    def test_bad_descriptor(self):
        with pytest.raises(FortranError):
            parse_format("Q9")

    def test_width_required(self):
        with pytest.raises(FortranError):
            parse_format("I")


class TestFormatCache:
    def test_same_text_returns_equal_edits(self):
        first = parse_format("I4, 2X, F8.3")
        second = parse_format("I4, 2X, F8.3")
        assert first == second
        assert first is second      # cached, not re-parsed

    def test_cached_edits_are_immutable(self):
        edits = parse_format("3I4")
        assert isinstance(edits, tuple)
        with pytest.raises((TypeError, AttributeError)):
            edits[0].width = 99

    def test_values_do_not_leak_across_retyped_uses(self):
        # The cache keys only on the format text: rendering different
        # value types through the same cached edits must stay
        # independent.
        edits = parse_format("I6")
        assert apply_format(edits, [7]) == ["     7"]
        assert apply_format(parse_format("I6"), [123456]) == ["123456"]
        assert apply_format(edits, [7]) == ["     7"]

    def test_distinct_texts_distinct_edits(self):
        assert parse_format("I4") != parse_format("I5")

    def test_errors_are_not_cached_as_results(self):
        with pytest.raises(FortranError):
            parse_format("Z1")
        with pytest.raises(FortranError):
            parse_format("Z1")


class TestApplyFormat:
    def test_integer_right_justified(self):
        lines = apply_format(parse_format("I5"), [42])
        assert lines == ["   42"]

    def test_fixed_point(self):
        lines = apply_format(parse_format("F8.2"), [3.14159])
        assert lines == ["    3.14"]

    def test_field_overflow_stars(self):
        lines = apply_format(parse_format("I3"), [123456])
        assert lines == ["***"]

    def test_slash_breaks_line(self):
        lines = apply_format(parse_format("I2, /, I2"), [1, 2])
        assert lines == [" 1", " 2"]

    def test_reversion_rule(self):
        lines = apply_format(parse_format("I3"), [1, 2, 3])
        assert lines == ["  1", "  2", "  3"]

    def test_logical(self):
        lines = apply_format(parse_format("L2, L2"), [True, False])
        assert lines == [" T F"]

    def test_character(self):
        lines = apply_format(parse_format("A, A5"), ["AB", "CD"])
        assert lines == ["AB   CD"]

    def test_exponential(self):
        (line,) = apply_format(parse_format("E12.4"), [12345.678])
        assert "E+05" in line
        assert line.strip().startswith("0.1235")


class TestFormattedWrite:
    def test_basic(self):
        out = run_io("""
            PROGRAM P
              WRITE(*,100) 42, 3.5
            100 FORMAT('N =', I4, 2X, F6.1)
            END
        """)
        assert out == ["N =  42     3.5"]

    def test_format_reused(self):
        out = run_io("""
            PROGRAM P
              DO 10 I = 1, 3
                WRITE(*,200) I, I * I
            10 CONTINUE
            200 FORMAT(I3, I5)
            END
        """)
        assert out == ["  1    1", "  2    4", "  3    9"]

    def test_missing_format_label(self):
        with pytest.raises(FortranError):
            run_io("""
                PROGRAM P
                  WRITE(*,999) 1
                END
            """)

    def test_label_not_a_format(self):
        with pytest.raises(FortranError):
            run_io("""
                PROGRAM P
                  WRITE(*,10) 1
                10 CONTINUE
                END
            """)


class TestRead:
    def test_read_scalars(self):
        out = run_io("""
            PROGRAM P
              INTEGER N
              REAL X
              READ(*,*) N, X
              WRITE(*,*) N * 2, X + 0.5
            END
        """, input_data="21 1.5")
        assert out == ["42 2.0"]

    def test_read_into_array(self):
        out = run_io("""
            PROGRAM P
              INTEGER A(3)
              READ(*,*) A(1), A(2), A(3)
              WRITE(*,*) A(1) + A(2) + A(3)
            END
        """, input_data=[10, 20, 30])
        assert out == ["60"]

    def test_read_logical(self):
        out = run_io("""
            PROGRAM P
              LOGICAL FLAG
              READ(*,*) FLAG
              IF (FLAG) WRITE(*,*) 'YES'
            END
        """, input_data="T")
        assert out == ["YES"]

    def test_read_past_end(self):
        with pytest.raises(FortranError, match="end of input"):
            run_io("""
                PROGRAM P
                  READ(*,*) N
                END
            """, input_data=[])

    def test_read_in_loop(self):
        out = run_io("""
            PROGRAM P
              ISUM = 0
              DO 10 I = 1, 4
                READ(*,*) K
                ISUM = ISUM + K
            10 CONTINUE
              WRITE(*,*) ISUM
            END
        """, input_data="1, 2, 3, 4")
        assert out == ["10"]
