"""CLI tests (the `force` entry point)."""

import pytest

from repro.pipeline.cli import main
from repro._util.text import strip_margin

PROGRAM = strip_margin("""
    Force CLIP of NP ident ME
    Shared INTEGER TOTAL
    End declarations
    Barrier
          TOTAL = NP * 10
          WRITE(*,*) "TOTAL", TOTAL
    End barrier
    Join
          END
""")


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.frc"
    path.write_text(PROGRAM, encoding="utf-8")
    return str(path)


class TestMachinesCommand:
    def test_lists_all_six(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for key in ("hep", "flex32", "encore-multimax", "sequent-balance",
                    "alliant-fx8", "cray-2"):
            assert key in out


class TestTranslateCommand:
    def test_fortran_stage(self, source_file, capsys):
        assert main(["translate", source_file, "--machine", "hep"]) == 0
        out = capsys.readouterr().out
        assert "SUBROUTINE CLIP(ME, NP)" in out
        assert "CALL HEPSPN" in out

    def test_sed_stage(self, source_file, capsys):
        assert main(["translate", source_file, "--stage", "sed"]) == 0
        out = capsys.readouterr().out
        assert "force_main(`CLIP',`NP',`ME')" in out
        assert "barrier_begin()" in out

    def test_default_machine(self, source_file, capsys):
        assert main(["translate", source_file]) == 0
        assert "SPINLK" in capsys.readouterr().out


class TestRunCommand:
    def test_runs_and_prints_output(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "cray-2",
                     "--nproc", "3"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL 30" in out

    def test_stats_flag(self, source_file, capsys):
        assert main(["run", source_file, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "--- simulation ---" in err
        assert "makespan" in err
        assert "lock acquisitions" in err

    def test_stats_share_the_native_report_format(self, source_file):
        # The CLI's --stats report and the native runtime's
        # Force.stats_report() go through one renderer.
        from repro.pipeline.compile import force_translate
        from repro.pipeline.run import force_run
        from repro.machines import get_machine
        from repro.runtime.stats import render_stats

        with open(source_file, encoding="utf-8") as handle:
            source = handle.read()
        result = force_run(force_translate(
            source, get_machine("hep")), 2)
        stats = result.stats_dict()
        assert stats["sim"]["processes"] == 2
        assert stats["sim"]["makespan"] == result.makespan
        assert "--- simulation ---" in render_stats(stats)

    def test_trace_flag(self, source_file, capsys):
        assert main(["run", source_file, "--trace", "--nproc", "2"]) == 0
        err = capsys.readouterr().err
        assert "BARWIN" in err
        assert "lock contention" in err

    def test_utilization_flag(self, source_file, capsys):
        assert main(["run", source_file, "--utilization"]) == 0
        err = capsys.readouterr().err
        assert "utilization" in err
        assert "driver" in err


class TestErrors:
    def test_unknown_machine_is_a_usage_error(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "pdp-11"]) == 2
        err = capsys.readouterr().err
        assert "error" in err
        assert "unknown machine 'pdp-11'" in err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/prog.frc"]) == 1

    def test_bad_program(self, tmp_path, capsys):
        path = tmp_path / "bad.frc"
        path.write_text("      THIS IS NOT FORCE\n", encoding="utf-8")
        assert main(["run", str(path)]) == 1


class TestArgumentValidation:
    """Bad flag values die at the parser with exit 2 and a clear
    `force … error:` message, before any file or runtime is touched."""

    def test_nproc_zero(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "0"]) == 2
        err = capsys.readouterr().err
        assert "force run: error:" in err
        assert "positive process count (got 0)" in err

    def test_nproc_negative(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "-3"]) == 2
        assert "positive process count (got -3)" in capsys.readouterr().err

    def test_nproc_not_an_integer(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "many"]) == 2
        assert "expected an integer" in capsys.readouterr().err

    def test_machine_typo_suggests_nearest(self, source_file, capsys):
        assert main(["run", source_file,
                     "--machine", "sequent-balence"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'sequent-balance'?" in err

    def test_machine_typo_on_translate_too(self, source_file, capsys):
        assert main(["translate", source_file, "--machine", "crya-2"]) == 2
        assert "did you mean 'cray-2'?" in capsys.readouterr().err

    def test_stage_typo_lists_choices(self, source_file, capsys):
        assert main(["translate", source_file, "--stage", "see"]) == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "sed" in err

    def test_validation_happens_before_file_access(self, capsys):
        # A bad --nproc on a missing file is still a usage error.
        assert main(["run", "/nonexistent/prog.frc", "--nproc", "0"]) == 2
