"""CLI tests (the `force` entry point)."""

import pytest

from repro.pipeline.cli import main
from repro._util.text import strip_margin

PROGRAM = strip_margin("""
    Force CLIP of NP ident ME
    Shared INTEGER TOTAL
    End declarations
    Barrier
          TOTAL = NP * 10
          WRITE(*,*) "TOTAL", TOTAL
    End barrier
    Join
          END
""")


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.frc"
    path.write_text(PROGRAM, encoding="utf-8")
    return str(path)


class TestMachinesCommand:
    def test_lists_all_six(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for key in ("hep", "flex32", "encore-multimax", "sequent-balance",
                    "alliant-fx8", "cray-2"):
            assert key in out


class TestTranslateCommand:
    def test_fortran_stage(self, source_file, capsys):
        assert main(["translate", source_file, "--machine", "hep"]) == 0
        out = capsys.readouterr().out
        assert "SUBROUTINE CLIP(ME, NP)" in out
        assert "CALL HEPSPN" in out

    def test_sed_stage(self, source_file, capsys):
        assert main(["translate", source_file, "--stage", "sed"]) == 0
        out = capsys.readouterr().out
        assert "force_main(`CLIP',`NP',`ME')" in out
        assert "barrier_begin()" in out

    def test_default_machine(self, source_file, capsys):
        assert main(["translate", source_file]) == 0
        assert "SPINLK" in capsys.readouterr().out


class TestRunCommand:
    def test_runs_and_prints_output(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "cray-2",
                     "--nproc", "3"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL 30" in out

    def test_stats_flag(self, source_file, capsys):
        assert main(["run", source_file, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "--- simulation ---" in err
        assert "makespan" in err
        assert "lock acquisitions" in err

    def test_stats_share_the_native_report_format(self, source_file):
        # The CLI's --stats report and the native runtime's
        # Force.stats_report() go through one renderer.
        from repro.pipeline.compile import force_translate
        from repro.pipeline.run import force_run
        from repro.machines import get_machine
        from repro.runtime.stats import render_stats

        with open(source_file, encoding="utf-8") as handle:
            source = handle.read()
        result = force_run(force_translate(
            source, get_machine("hep")), 2)
        stats = result.stats_dict()
        assert stats["sim"]["processes"] == 2
        assert stats["sim"]["makespan"] == result.makespan
        assert "--- simulation ---" in render_stats(stats)

    def test_trace_flag(self, source_file, capsys):
        assert main(["run", source_file, "--trace", "--nproc", "2"]) == 0
        err = capsys.readouterr().err
        assert "BARWIN" in err
        assert "lock contention" in err

    def test_utilization_flag(self, source_file, capsys):
        assert main(["run", source_file, "--utilization"]) == 0
        err = capsys.readouterr().err
        assert "utilization" in err
        assert "driver" in err


class TestErrors:
    def test_unknown_machine(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "pdp-11"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/prog.frc"]) == 1

    def test_bad_program(self, tmp_path, capsys):
        path = tmp_path / "bad.frc"
        path.write_text("      THIS IS NOT FORCE\n", encoding="utf-8")
        assert main(["run", str(path)]) == 1
