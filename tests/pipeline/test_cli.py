"""CLI tests (the `force` entry point)."""

import pytest

from repro.pipeline.cli import main
from repro._util.text import strip_margin

PROGRAM = strip_margin("""
    Force CLIP of NP ident ME
    Shared INTEGER TOTAL
    End declarations
    Barrier
          TOTAL = NP * 10
          WRITE(*,*) "TOTAL", TOTAL
    End barrier
    Join
          END
""")


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.frc"
    path.write_text(PROGRAM, encoding="utf-8")
    return str(path)


class TestMachinesCommand:
    def test_lists_all_six(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for key in ("hep", "flex32", "encore-multimax", "sequent-balance",
                    "alliant-fx8", "cray-2"):
            assert key in out


class TestTranslateCommand:
    def test_fortran_stage(self, source_file, capsys):
        assert main(["translate", source_file, "--machine", "hep"]) == 0
        out = capsys.readouterr().out
        assert "SUBROUTINE CLIP(ME, NP)" in out
        assert "CALL HEPSPN" in out

    def test_sed_stage(self, source_file, capsys):
        assert main(["translate", source_file, "--stage", "sed"]) == 0
        out = capsys.readouterr().out
        assert "force_main(`CLIP',`NP',`ME')" in out
        assert "barrier_begin()" in out

    def test_default_machine(self, source_file, capsys):
        assert main(["translate", source_file]) == 0
        assert "SPINLK" in capsys.readouterr().out


class TestRunCommand:
    def test_runs_and_prints_output(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "cray-2",
                     "--nproc", "3"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL 30" in out

    def test_stats_flag(self, source_file, capsys):
        assert main(["run", source_file, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "--- simulation ---" in err
        assert "makespan" in err
        assert "lock acquisitions" in err

    def test_stats_share_the_native_report_format(self, source_file):
        # The CLI's --stats report and the native runtime's
        # Force.stats_report() go through one renderer.
        from repro.pipeline.compile import force_translate
        from repro.pipeline.run import force_run
        from repro.machines import get_machine
        from repro.runtime.stats import render_stats

        with open(source_file, encoding="utf-8") as handle:
            source = handle.read()
        result = force_run(force_translate(
            source, get_machine("hep")), 2)
        stats = result.stats_dict()
        assert stats["sim"]["processes"] == 2
        assert stats["sim"]["makespan"] == result.makespan
        assert "--- simulation ---" in render_stats(stats)

    def test_trace_flag(self, source_file, capsys):
        assert main(["run", source_file, "--trace", "--nproc", "2"]) == 0
        err = capsys.readouterr().err
        assert "BARWIN" in err
        assert "lock contention" in err

    def test_utilization_flag(self, source_file, capsys):
        assert main(["run", source_file, "--utilization"]) == 0
        err = capsys.readouterr().err
        assert "utilization" in err
        assert "driver" in err


class TestTraceFile:
    def test_trace_file_is_valid_chrome_json(self, source_file, tmp_path,
                                             capsys):
        import json
        from repro.trace.export import validate_chrome_trace

        trace_path = tmp_path / "out.json"
        assert main(["run", source_file, "--nproc", "2",
                     "--trace", str(trace_path)]) == 0
        captured = capsys.readouterr()
        assert "TOTAL 20" in captured.out
        assert "events written to" in captured.err
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["nproc"] == 2
        assert doc["otherData"]["clock"] == "cycles"

    def test_trace_file_has_a_lane_per_force_process(self, source_file,
                                                     tmp_path):
        import json

        trace_path = tmp_path / "out.json"
        assert main(["run", source_file, "--nproc", "3",
                     "--trace", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        lanes = {r["args"]["name"] for r in doc["traceEvents"]
                 if r["ph"] == "M" and r["name"] == "thread_name"}
        # one lane per Force process (plus the simulator driver)
        assert sum(1 for lane in lanes if lane != "driver") >= 3

    def test_jsonl_format_by_flag_and_extension(self, source_file,
                                                tmp_path):
        from repro.trace.export import load_trace_file

        by_ext = tmp_path / "out.jsonl"
        by_flag = tmp_path / "out.dat"
        assert main(["run", source_file, "--trace", str(by_ext)]) == 0
        assert main(["run", source_file, "--trace", str(by_flag),
                     "--trace-format", "jsonl"]) == 0
        assert load_trace_file(str(by_ext))
        assert load_trace_file(str(by_flag))

    def test_text_format_writes_the_timeline(self, source_file, tmp_path):
        trace_path = tmp_path / "out.txt"
        assert main(["run", source_file, "--trace", str(trace_path)]) == 0
        content = trace_path.read_text(encoding="utf-8")
        assert "BARWIN" in content

    def test_bare_trace_flag_still_prints_to_stderr(self, source_file,
                                                    tmp_path, capsys):
        assert main(["run", source_file, "--trace"]) == 0
        err = capsys.readouterr().err
        assert "BARWIN" in err
        assert "lock contention" in err
        # nothing written besides the source fixture itself
        assert [p.name for p in tmp_path.iterdir()] == ["prog.frc"]


class TestTraceSubcommand:
    def _write_trace(self, source_file, tmp_path):
        trace_path = tmp_path / "out.json"
        assert main(["run", source_file, "--nproc", "2",
                     "--trace", str(trace_path)]) == 0
        return str(trace_path)

    def test_summary_text(self, source_file, tmp_path, capsys):
        path = self._write_trace(source_file, tmp_path)
        capsys.readouterr()
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "processes:" in out
        assert "--- barriers ---" in out

    def test_summary_json(self, source_file, tmp_path, capsys):
        import json

        path = self._write_trace(source_file, tmp_path)
        capsys.readouterr()
        assert main(["trace", path, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["events"] > 0
        assert doc["barriers"]["waits"] >= 1

    def test_missing_trace_file(self, capsys):
        assert main(["trace", "/nonexistent/trace.json"]) == 1

    def test_corrupt_trace_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert main(["trace", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestJsonRunFormat:
    def test_stats_format_json_document(self, source_file, capsys):
        import json

        assert main(["run", source_file, "--stats", "--format", "json",
                     "--nproc", "2", "--machine", "hep"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["machine"] == "hep"
        assert doc["nproc"] == 2
        assert doc["output"] == ["TOTAL 20"]
        assert doc["makespan"] > 0
        assert doc["stats"]["sim"]["processes"] == 2

    def test_format_json_without_stats_omits_them(self, source_file,
                                                  capsys):
        import json

        assert main(["run", source_file, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "stats" not in doc
        assert doc["output"] == ["TOTAL 40"]

    def test_trace_file_referenced_in_document(self, source_file,
                                               tmp_path, capsys):
        import json

        trace_path = tmp_path / "out.json"
        assert main(["run", source_file, "--format", "json",
                     "--trace", str(trace_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trace_file"] == str(trace_path)


class TestErrors:
    def test_unknown_machine_is_a_usage_error(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "pdp-11"]) == 2
        err = capsys.readouterr().err
        assert "error" in err
        assert "unknown machine 'pdp-11'" in err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/prog.frc"]) == 1

    def test_bad_program(self, tmp_path, capsys):
        path = tmp_path / "bad.frc"
        path.write_text("      THIS IS NOT FORCE\n", encoding="utf-8")
        assert main(["run", str(path)]) == 1


class TestExitCodeTaxonomy:
    """The documented exit statuses: 0 ok, 1 program error, 2 usage,
    3 deadlock/timeout — so scripts can tell "the program is wrong"
    from "it hung"."""

    @pytest.fixture()
    def deadlocking_file(self, tmp_path):
        # Only process 1 reaches the barrier: the force can never
        # complete and the simulator reports a deadlock.
        path = tmp_path / "stuck.frc"
        path.write_text(strip_margin("""
            Force STUCK of NP ident ME
            End declarations
                  IF (ME .EQ. 1) THEN
            Barrier
            End barrier
                  END IF
            Join
                  END
        """), encoding="utf-8")
        return str(path)

    def test_success_is_zero(self, source_file):
        assert main(["run", source_file]) == 0

    def test_deadlock_is_three(self, deadlocking_file, capsys):
        assert main(["run", deadlocking_file, "--nproc", "3"]) == 3
        err = capsys.readouterr().err
        assert "force: deadlock:" in err
        assert "deadlock" in err

    def test_program_error_is_one(self, tmp_path, capsys):
        path = tmp_path / "bad.frc"
        path.write_text("      THIS IS NOT FORCE\n", encoding="utf-8")
        assert main(["run", str(path)]) == 1
        assert "force: error:" in capsys.readouterr().err

    def test_usage_error_is_two(self, source_file):
        assert main(["run", source_file, "--nproc", "0"]) == 2

    def test_deadline_flag_accepted(self, source_file, capsys):
        assert main(["run", source_file, "--deadline", "30"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_deadline_must_be_positive(self, source_file, capsys):
        assert main(["run", source_file, "--deadline", "0"]) == 2
        assert "positive number of seconds" in capsys.readouterr().err

    def test_deadline_must_be_a_number(self, source_file, capsys):
        assert main(["run", source_file, "--deadline", "soon"]) == 2


class TestArgumentValidation:
    """Bad flag values die at the parser with exit 2 and a clear
    `force … error:` message, before any file or runtime is touched."""

    def test_nproc_zero(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "0"]) == 2
        err = capsys.readouterr().err
        assert "force run: error:" in err
        assert "positive process count (got 0)" in err

    def test_nproc_negative(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "-3"]) == 2
        assert "positive process count (got -3)" in capsys.readouterr().err

    def test_nproc_not_an_integer(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "many"]) == 2
        assert "expected an integer" in capsys.readouterr().err

    def test_machine_typo_suggests_nearest(self, source_file, capsys):
        assert main(["run", source_file,
                     "--machine", "sequent-balence"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'sequent-balance'?" in err

    def test_machine_typo_on_translate_too(self, source_file, capsys):
        assert main(["translate", source_file, "--machine", "crya-2"]) == 2
        assert "did you mean 'cray-2'?" in capsys.readouterr().err

    def test_stage_typo_lists_choices(self, source_file, capsys):
        assert main(["translate", source_file, "--stage", "see"]) == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "sed" in err

    def test_validation_happens_before_file_access(self, capsys):
        # A bad --nproc on a missing file is still a usage error.
        assert main(["run", "/nonexistent/prog.frc", "--nproc", "0"]) == 2


LOOP_PROGRAM = strip_margin("""
    Force CLOOP of NP ident ME
    Private INTEGER I, J, W
    Shared INTEGER SINK
    End declarations
    Barrier
          SINK = 0
    End barrier
    Selfsched DO 100 I = 1, 24
          W = 3 * I
          DO 5 J = 1, W
            SINK = SINK
    5     CONTINUE
          Critical LCK
          SINK = SINK + W
          End critical
    100 End Selfsched DO
    Join
          END
""")


@pytest.fixture()
def loop_file(tmp_path):
    path = tmp_path / "loop.frc"
    path.write_text(LOOP_PROGRAM, encoding="utf-8")
    return str(path)


class TestMetricsExport:
    def test_sim_prometheus_text(self, loop_file, tmp_path, capsys):
        out = tmp_path / "run.prom"
        assert main(["run", loop_file, "--metrics", str(out)]) == 0
        text = out.read_text()
        assert "# TYPE force_sim_makespan_cycles gauge" in text
        assert "force_sim_lock_acquisitions_total" in text
        assert "registry written" in capsys.readouterr().err

    def test_sim_json_document_validates(self, loop_file, tmp_path):
        import json

        from repro.obsv.metrics import validate_metrics
        out = tmp_path / "run.json"
        assert main(["run", loop_file, "--metrics", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_metrics(doc) == []

    def test_native_metrics_cover_constructs(self, loop_file, tmp_path):
        # The translated program synchronises via SPINLK/SPINUN, so
        # construct metrics come from the native runtime's lock hooks:
        # barrier episodes from Force.barrier, critical sections from
        # the named lock (selfsched index locks show up in traces, not
        # as a metrics family — their cost is lock churn, not indices).
        out = tmp_path / "native.prom"
        assert main(["run", loop_file, "--backend", "thread",
                     "--nproc", "2", "--metrics", str(out)]) == 0
        text = out.read_text()
        assert "force_barrier_episodes_total" in text
        assert "force_critical_acquisitions_total" in text
        assert 'name="LCK"' in text

    def test_json_run_document_names_metrics_file(self, loop_file,
                                                  tmp_path, capsys):
        import json
        out = tmp_path / "m.prom"
        assert main(["run", loop_file, "--metrics", str(out),
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["metrics_file"] == str(out)


class TestProfileCommand:
    def _trace(self, loop_file, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["run", loop_file, "--trace", str(trace)]) == 0
        return str(trace)

    def test_text_report(self, loop_file, tmp_path, capsys):
        trace = self._trace(loop_file, tmp_path)
        capsys.readouterr()
        assert main(["profile", trace]) == 0
        out = capsys.readouterr().out
        assert "=== force profile ===" in out
        assert "contention ranking" in out
        assert "critical path" in out
        assert "selfsched:ZZL100" in out

    def test_json_report(self, loop_file, tmp_path, capsys):
        import json
        trace = self._trace(loop_file, tmp_path)
        capsys.readouterr()
        assert main(["profile", trace, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clock"] == "cycles"
        assert "shares" in doc["critical_path"]

    def test_folded_stacks_file(self, loop_file, tmp_path, capsys):
        trace = self._trace(loop_file, tmp_path)
        folded = tmp_path / "stacks.folded"
        assert main(["profile", trace, "--folded", str(folded)]) == 0
        lines = folded.read_text().splitlines()
        assert lines
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            assert int(weight) > 0

    def test_missing_trace_is_an_error(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "absent.jsonl")]) == 1


class TestTuneCommand:
    def test_recommendation_document(self, loop_file, tmp_path, capsys):
        import json

        from repro.obsv.tune import validate_recommendation
        trace = tmp_path / "run.jsonl"
        assert main(["run", loop_file, "--trace", str(trace)]) == 0
        rec = tmp_path / "rec.json"
        assert main(["tune", str(trace), "--output", str(rec)]) == 0
        doc = json.loads(rec.read_text())
        assert validate_recommendation(doc) == []
        sched = doc["recommendations"]["sched"]
        assert sched is not None
        assert sched["policy"] in ("cyclic", "blocked", "self",
                                   "chunked", "guided")
        # nproc came from the trace header, not a flag
        assert doc["observations"]["nproc"] == 4

    def test_prints_to_stdout_without_output(self, loop_file, tmp_path,
                                             capsys):
        import json
        trace = tmp_path / "run.jsonl"
        assert main(["run", loop_file, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["tune", str(trace)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["generated_by"] == "force tune"


class TestTraceBufferDrops:
    def test_tiny_buffer_warns_and_reports(self, loop_file, tmp_path,
                                           capsys):
        import json
        trace = tmp_path / "small.jsonl"
        assert main(["run", loop_file, "--backend", "thread",
                     "--nproc", "2", "--trace", str(trace),
                     "--trace-buffer", "4", "--format", "json"]) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["dropped_events"] > 0
        assert "trace event(s) dropped" in captured.err
        assert "--trace-buffer" in captured.err

    def test_trace_summary_surfaces_drops(self, loop_file, tmp_path,
                                          capsys):
        import json
        trace = tmp_path / "small.jsonl"
        assert main(["run", loop_file, "--backend", "thread",
                     "--nproc", "2", "--trace", str(trace),
                     "--trace-buffer", "4"]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["dropped_events"] > 0
        assert main(["trace", str(trace)]) == 0
        err = capsys.readouterr().err
        assert "lost" in err and "ring-buffer" in err

    def test_default_buffer_drops_nothing(self, loop_file, tmp_path,
                                          capsys):
        import json
        trace = tmp_path / "big.jsonl"
        assert main(["run", loop_file, "--backend", "thread",
                     "--nproc", "2", "--trace", str(trace),
                     "--format", "json"]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["dropped_events"] == 0
        assert "dropped" not in captured.err


class TestSupervisedRunFlags:
    """`force run --checkpoint/--resume/--retries/--min-nproc`."""

    @pytest.fixture()
    def example(self):
        import os
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        return os.path.join(root, "examples", "sum_critical.frc")

    def test_sim_backend_refuses_supervision(self, source_file, capsys):
        assert main(["run", source_file, "--retries", "2"]) == 1
        err = capsys.readouterr().err
        assert "supervision" in err and "native backends" in err

    def test_checkpoint_needs_the_process_backend(self, example,
                                                  tmp_path, capsys):
        assert main(["run", example, "--backend", "thread",
                     "--checkpoint", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "process" in err and "COMMON" in err

    def test_resume_needs_a_checkpoint_dir(self, example, capsys):
        assert main(["run", example, "--backend", "process",
                     "--resume"]) == 1
        assert "--resume needs --checkpoint" in capsys.readouterr().err

    def test_min_nproc_needs_supervision(self, example, capsys):
        assert main(["run", example, "--backend", "thread",
                     "--min-nproc", "2"]) == 1
        assert "--min-nproc needs --retries" in capsys.readouterr().err

    def test_negative_retries_is_a_usage_error(self, example, capsys):
        assert main(["run", example, "--backend", "thread",
                     "--retries", "-1"]) == 2
        assert "force run: error:" in capsys.readouterr().err

    def test_checkpointed_process_run_writes_snapshots(self, example,
                                                       tmp_path,
                                                       capsys):
        import json
        import os
        ckpt = tmp_path / "snaps"
        assert main(["run", example, "--backend", "process",
                     "--nproc", "2", "--checkpoint", str(ckpt),
                     "--retries", "1", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "TOTAL 1275" in "".join(document["output"])
        assert document["supervision"]["retries"] == 0
        assert any(name.startswith("ckpt-")
                   for name in os.listdir(ckpt))

    def test_retries_alone_supervise_the_thread_backend(self, example,
                                                        capsys):
        import json
        assert main(["run", example, "--backend", "thread",
                     "--nproc", "2", "--retries", "2",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["supervision"]["ok"] is True
        assert document["supervision"]["final_nproc"] == 2
