"""CLI tests (the `force` entry point)."""

import pytest

from repro.pipeline.cli import main
from repro._util.text import strip_margin

PROGRAM = strip_margin("""
    Force CLIP of NP ident ME
    Shared INTEGER TOTAL
    End declarations
    Barrier
          TOTAL = NP * 10
          WRITE(*,*) "TOTAL", TOTAL
    End barrier
    Join
          END
""")


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.frc"
    path.write_text(PROGRAM, encoding="utf-8")
    return str(path)


class TestMachinesCommand:
    def test_lists_all_six(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for key in ("hep", "flex32", "encore-multimax", "sequent-balance",
                    "alliant-fx8", "cray-2"):
            assert key in out


class TestTranslateCommand:
    def test_fortran_stage(self, source_file, capsys):
        assert main(["translate", source_file, "--machine", "hep"]) == 0
        out = capsys.readouterr().out
        assert "SUBROUTINE CLIP(ME, NP)" in out
        assert "CALL HEPSPN" in out

    def test_sed_stage(self, source_file, capsys):
        assert main(["translate", source_file, "--stage", "sed"]) == 0
        out = capsys.readouterr().out
        assert "force_main(`CLIP',`NP',`ME')" in out
        assert "barrier_begin()" in out

    def test_default_machine(self, source_file, capsys):
        assert main(["translate", source_file]) == 0
        assert "SPINLK" in capsys.readouterr().out


class TestRunCommand:
    def test_runs_and_prints_output(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "cray-2",
                     "--nproc", "3"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL 30" in out

    def test_stats_flag(self, source_file, capsys):
        assert main(["run", source_file, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "--- simulation ---" in err
        assert "makespan" in err
        assert "lock acquisitions" in err

    def test_stats_share_the_native_report_format(self, source_file):
        # The CLI's --stats report and the native runtime's
        # Force.stats_report() go through one renderer.
        from repro.pipeline.compile import force_translate
        from repro.pipeline.run import force_run
        from repro.machines import get_machine
        from repro.runtime.stats import render_stats

        with open(source_file, encoding="utf-8") as handle:
            source = handle.read()
        result = force_run(force_translate(
            source, get_machine("hep")), 2)
        stats = result.stats_dict()
        assert stats["sim"]["processes"] == 2
        assert stats["sim"]["makespan"] == result.makespan
        assert "--- simulation ---" in render_stats(stats)

    def test_trace_flag(self, source_file, capsys):
        assert main(["run", source_file, "--trace", "--nproc", "2"]) == 0
        err = capsys.readouterr().err
        assert "BARWIN" in err
        assert "lock contention" in err

    def test_utilization_flag(self, source_file, capsys):
        assert main(["run", source_file, "--utilization"]) == 0
        err = capsys.readouterr().err
        assert "utilization" in err
        assert "driver" in err


class TestTraceFile:
    def test_trace_file_is_valid_chrome_json(self, source_file, tmp_path,
                                             capsys):
        import json
        from repro.trace.export import validate_chrome_trace

        trace_path = tmp_path / "out.json"
        assert main(["run", source_file, "--nproc", "2",
                     "--trace", str(trace_path)]) == 0
        captured = capsys.readouterr()
        assert "TOTAL 20" in captured.out
        assert "events written to" in captured.err
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["nproc"] == 2
        assert doc["otherData"]["clock"] == "cycles"

    def test_trace_file_has_a_lane_per_force_process(self, source_file,
                                                     tmp_path):
        import json

        trace_path = tmp_path / "out.json"
        assert main(["run", source_file, "--nproc", "3",
                     "--trace", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        lanes = {r["args"]["name"] for r in doc["traceEvents"]
                 if r["ph"] == "M" and r["name"] == "thread_name"}
        # one lane per Force process (plus the simulator driver)
        assert sum(1 for lane in lanes if lane != "driver") >= 3

    def test_jsonl_format_by_flag_and_extension(self, source_file,
                                                tmp_path):
        from repro.trace.export import load_trace_file

        by_ext = tmp_path / "out.jsonl"
        by_flag = tmp_path / "out.dat"
        assert main(["run", source_file, "--trace", str(by_ext)]) == 0
        assert main(["run", source_file, "--trace", str(by_flag),
                     "--trace-format", "jsonl"]) == 0
        assert load_trace_file(str(by_ext))
        assert load_trace_file(str(by_flag))

    def test_text_format_writes_the_timeline(self, source_file, tmp_path):
        trace_path = tmp_path / "out.txt"
        assert main(["run", source_file, "--trace", str(trace_path)]) == 0
        content = trace_path.read_text(encoding="utf-8")
        assert "BARWIN" in content

    def test_bare_trace_flag_still_prints_to_stderr(self, source_file,
                                                    tmp_path, capsys):
        assert main(["run", source_file, "--trace"]) == 0
        err = capsys.readouterr().err
        assert "BARWIN" in err
        assert "lock contention" in err
        # nothing written besides the source fixture itself
        assert [p.name for p in tmp_path.iterdir()] == ["prog.frc"]


class TestTraceSubcommand:
    def _write_trace(self, source_file, tmp_path):
        trace_path = tmp_path / "out.json"
        assert main(["run", source_file, "--nproc", "2",
                     "--trace", str(trace_path)]) == 0
        return str(trace_path)

    def test_summary_text(self, source_file, tmp_path, capsys):
        path = self._write_trace(source_file, tmp_path)
        capsys.readouterr()
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "processes:" in out
        assert "--- barriers ---" in out

    def test_summary_json(self, source_file, tmp_path, capsys):
        import json

        path = self._write_trace(source_file, tmp_path)
        capsys.readouterr()
        assert main(["trace", path, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["events"] > 0
        assert doc["barriers"]["waits"] >= 1

    def test_missing_trace_file(self, capsys):
        assert main(["trace", "/nonexistent/trace.json"]) == 1

    def test_corrupt_trace_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert main(["trace", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestJsonRunFormat:
    def test_stats_format_json_document(self, source_file, capsys):
        import json

        assert main(["run", source_file, "--stats", "--format", "json",
                     "--nproc", "2", "--machine", "hep"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["machine"] == "hep"
        assert doc["nproc"] == 2
        assert doc["output"] == ["TOTAL 20"]
        assert doc["makespan"] > 0
        assert doc["stats"]["sim"]["processes"] == 2

    def test_format_json_without_stats_omits_them(self, source_file,
                                                  capsys):
        import json

        assert main(["run", source_file, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "stats" not in doc
        assert doc["output"] == ["TOTAL 40"]

    def test_trace_file_referenced_in_document(self, source_file,
                                               tmp_path, capsys):
        import json

        trace_path = tmp_path / "out.json"
        assert main(["run", source_file, "--format", "json",
                     "--trace", str(trace_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trace_file"] == str(trace_path)


class TestErrors:
    def test_unknown_machine_is_a_usage_error(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "pdp-11"]) == 2
        err = capsys.readouterr().err
        assert "error" in err
        assert "unknown machine 'pdp-11'" in err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/prog.frc"]) == 1

    def test_bad_program(self, tmp_path, capsys):
        path = tmp_path / "bad.frc"
        path.write_text("      THIS IS NOT FORCE\n", encoding="utf-8")
        assert main(["run", str(path)]) == 1


class TestExitCodeTaxonomy:
    """The documented exit statuses: 0 ok, 1 program error, 2 usage,
    3 deadlock/timeout — so scripts can tell "the program is wrong"
    from "it hung"."""

    @pytest.fixture()
    def deadlocking_file(self, tmp_path):
        # Only process 1 reaches the barrier: the force can never
        # complete and the simulator reports a deadlock.
        path = tmp_path / "stuck.frc"
        path.write_text(strip_margin("""
            Force STUCK of NP ident ME
            End declarations
                  IF (ME .EQ. 1) THEN
            Barrier
            End barrier
                  END IF
            Join
                  END
        """), encoding="utf-8")
        return str(path)

    def test_success_is_zero(self, source_file):
        assert main(["run", source_file]) == 0

    def test_deadlock_is_three(self, deadlocking_file, capsys):
        assert main(["run", deadlocking_file, "--nproc", "3"]) == 3
        err = capsys.readouterr().err
        assert "force: deadlock:" in err
        assert "deadlock" in err

    def test_program_error_is_one(self, tmp_path, capsys):
        path = tmp_path / "bad.frc"
        path.write_text("      THIS IS NOT FORCE\n", encoding="utf-8")
        assert main(["run", str(path)]) == 1
        assert "force: error:" in capsys.readouterr().err

    def test_usage_error_is_two(self, source_file):
        assert main(["run", source_file, "--nproc", "0"]) == 2

    def test_deadline_flag_accepted(self, source_file, capsys):
        assert main(["run", source_file, "--deadline", "30"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_deadline_must_be_positive(self, source_file, capsys):
        assert main(["run", source_file, "--deadline", "0"]) == 2
        assert "positive number of seconds" in capsys.readouterr().err

    def test_deadline_must_be_a_number(self, source_file, capsys):
        assert main(["run", source_file, "--deadline", "soon"]) == 2


class TestArgumentValidation:
    """Bad flag values die at the parser with exit 2 and a clear
    `force … error:` message, before any file or runtime is touched."""

    def test_nproc_zero(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "0"]) == 2
        err = capsys.readouterr().err
        assert "force run: error:" in err
        assert "positive process count (got 0)" in err

    def test_nproc_negative(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "-3"]) == 2
        assert "positive process count (got -3)" in capsys.readouterr().err

    def test_nproc_not_an_integer(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "many"]) == 2
        assert "expected an integer" in capsys.readouterr().err

    def test_machine_typo_suggests_nearest(self, source_file, capsys):
        assert main(["run", source_file,
                     "--machine", "sequent-balence"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'sequent-balance'?" in err

    def test_machine_typo_on_translate_too(self, source_file, capsys):
        assert main(["translate", source_file, "--machine", "crya-2"]) == 2
        assert "did you mean 'cray-2'?" in capsys.readouterr().err

    def test_stage_typo_lists_choices(self, source_file, capsys):
        assert main(["translate", source_file, "--stage", "see"]) == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "sed" in err

    def test_validation_happens_before_file_access(self, capsys):
        # A bad --nproc on a missing file is still a usage error.
        assert main(["run", "/nonexistent/prog.frc", "--nproc", "0"]) == 2
