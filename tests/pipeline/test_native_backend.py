"""Native execution differential: sim vs thread vs process backends.

``force run --backend thread|process`` executes the python-host
macro expansion for real — Fortran barriers, criticals, selfsched
loops and askfor pools spinning on LOGICAL lock words in shared
COMMON.  For the example corpus all three vehicles must print the
same lines, and the process backend must leave ``/dev/shm`` clean.
"""

import glob
import json

import pytest

from repro._util.errors import ForceError
from repro.machines import get_machine
from repro.pipeline.cli import main
from repro.pipeline.compile import force_translate
from repro.pipeline.native import (
    NATIVE_BACKENDS,
    native_run,
    shared_block_names,
)
from repro.pipeline.run import force_run

# Fixed-form discipline: Force statements are indented, never column
# one — a flush-left ``Critical`` reads as a ``C`` comment line.
SUM_CRITICAL = """\
      Force SUMUP of NP ident ME
      Shared INTEGER TOTAL
      Private INTEGER I, MINE
      End declarations
      Barrier
      TOTAL = 0
      End barrier
      MINE = 0
      DO 10 I = ME, 50, NP
      MINE = MINE + I
10    CONTINUE
      Critical LCK
      TOTAL = TOTAL + MINE
      End critical
      Barrier
      WRITE(*,*) "TOTAL", TOTAL
      End barrier
      Join
      END
"""

ASKFOR_TREE = """\
      Force TREE of NP ident ME
      Taskq WORK(64)
      Shared INTEGER COUNT
      Private INTEGER NODE, C
      End declarations
      Barrier
      COUNT = 0
      Putwork WORK = 1
      End barrier
      Askfor 30 NODE from WORK
      Critical KC
      COUNT = COUNT + 1
      End critical
      C = 2 * NODE
      IF (C .LE. 15) THEN
      Putwork WORK = C
      Putwork WORK = C + 1
      END IF
30    End askfor
      Barrier
      WRITE(*,*) "NODES", COUNT
      End barrier
      Join
      END
"""

SELFSCHED = """\
      Force LOOP of NP ident ME
      Shared INTEGER SUM
      Private INTEGER I
      End declarations
      Barrier
      SUM = 0
      End barrier
      Selfsched DO 20 I = 1, 40
      Critical SC
      SUM = SUM + I
      End critical
20    End selfsched DO
      Barrier
      WRITE(*,*) "SUM", SUM
      End barrier
      Join
      END
"""

CORPUS = [("sum_critical", SUM_CRITICAL, ["TOTAL 1275"]),
          ("askfor_tree", ASKFOR_TREE, ["NODES 15"]),
          ("selfsched", SELFSCHED, ["SUM 820"])]


def _shm() -> set:
    return set(glob.glob("/dev/shm/*"))


def _host_translation(source):
    return force_translate(source, get_machine("python-host"))


class TestDifferentialAgainstSim:
    @pytest.mark.parametrize("name,source,expected",
                             CORPUS, ids=[c[0] for c in CORPUS])
    def test_all_three_vehicles_agree(self, name, source, expected):
        sim = force_run(
            force_translate(source, get_machine("sequent-balance")), 3)
        assert sim.output == expected
        translation = _host_translation(source)
        before = _shm()
        for backend in NATIVE_BACKENDS:
            result = native_run(translation, 3, backend=backend,
                                deadline=60)
            assert result.output == expected, backend
        assert _shm() == before

    def test_example_corpus_agrees(self):
        # every runnable .frc example: sim, thread and process must
        # print the same lines
        from pathlib import Path

        from repro.bench import NON_RUNNABLE_EXAMPLES

        examples = Path(__file__).resolve().parents[2] / "examples"
        seen = 0
        for path in sorted(examples.glob("*.frc")):
            if path.name in NON_RUNNABLE_EXAMPLES:
                continue
            source = path.read_text(encoding="utf-8")
            sim = force_run(
                force_translate(source, get_machine("sequent-balance")),
                3)
            translation = _host_translation(source)
            for backend in NATIVE_BACKENDS:
                result = native_run(translation, 3, backend=backend,
                                    deadline=120)
                assert result.output == sim.output, \
                    (path.name, backend)
            seen += 1
        assert seen >= 2       # jacobi + sum_critical at minimum

    def test_nproc_one_works(self):
        result = native_run(_host_translation(SUM_CRITICAL), 1,
                            backend="thread", deadline=60)
        assert result.output == ["TOTAL 1275"]

    def test_stats_carry_native_section(self):
        result = native_run(_host_translation(SUM_CRITICAL), 2,
                            backend="thread", stats=True, deadline=60)
        document = result.stats_dict()
        assert document["native"]["backend"] == "thread"
        assert document["native"]["nproc"] == 2
        assert document["native"]["wall_s"] >= 0
        assert "criticals" in document

    def test_wall_clock_recorded(self):
        result = native_run(_host_translation(SUM_CRITICAL), 2,
                            backend="thread", deadline=60)
        assert result.wall_s > 0
        assert result.backend == "thread"


class TestGuards:
    def test_only_python_host_expansions(self):
        translation = force_translate(SUM_CRITICAL,
                                      get_machine("sequent-balance"))
        with pytest.raises(ForceError, match="python-host"):
            native_run(translation, 2, backend="thread")

    def test_unknown_backend(self):
        with pytest.raises(ForceError, match="backend"):
            native_run(_host_translation(SUM_CRITICAL), 2,
                       backend="simd")

    def test_shared_block_names_from_expansion(self):
        translation = _host_translation(SUM_CRITICAL)
        names = shared_block_names(translation.fortran)
        assert "FRCENV" in names        # barrier state block
        assert any(name.startswith("ZZS") for name in names)


class TestCliBackendFlag:
    @pytest.fixture()
    def source_file(self, tmp_path):
        path = tmp_path / "prog.frc"
        path.write_text(SUM_CRITICAL, encoding="utf-8")
        return str(path)

    @pytest.mark.parametrize("backend", NATIVE_BACKENDS)
    def test_run_backend(self, backend, source_file, capsys):
        before = _shm()
        assert main(["run", source_file, "--backend", backend,
                     "--nproc", "3"]) == 0
        assert "TOTAL 1275" in capsys.readouterr().out
        assert _shm() == before

    def test_json_document_has_backend_and_wall(self, source_file,
                                                capsys):
        assert main(["run", source_file, "--backend", "thread",
                     "--nproc", "2", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["backend"] == "thread"
        assert document["wall_s"] > 0
        assert "makespan" not in document

    def test_sim_stays_default(self, source_file, capsys):
        assert main(["run", source_file, "--nproc", "2",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["backend"] == "sim"
        assert "makespan" in document

    def test_machine_conflict_rejected(self, source_file, capsys):
        assert main(["run", source_file, "--backend", "process",
                     "--machine", "cray-2"]) == 1
        err = capsys.readouterr().err
        assert "python-host" in err

    def test_machine_python_host_accepted(self, source_file, capsys):
        assert main(["run", source_file, "--backend", "thread",
                     "--machine", "python-host", "--nproc", "2"]) == 0
        assert "TOTAL 1275" in capsys.readouterr().out

    def test_deadline_fires_as_exit_3(self, tmp_path, capsys):
        # Only member 1 ever arrives at the barrier: with nproc=2 the
        # run can never complete, and --deadline must turn that into
        # the structured exit code 3 instead of hanging.
        source = (
            "      Force HANG of NP ident ME\n"
            "      Shared INTEGER X\n"
            "      End declarations\n"
            "      IF (ME .EQ. 1) THEN\n"
            "      Barrier\n"
            "      X = 1\n"
            "      End barrier\n"
            "      END IF\n"
            "      Join\n"
            "      END\n")
        path = tmp_path / "hang.frc"
        path.write_text(source, encoding="utf-8")
        before = _shm()
        code = main(["run", str(path), "--backend", "process",
                     "--nproc", "2", "--deadline", "2"])
        assert code == 3
        assert _shm() == before
