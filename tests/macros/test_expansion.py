"""Macro-library expansion tests, including the §4.2 golden structure."""

import pytest

from repro.machines import (
    ALLIANT_FX8,
    CRAY_2,
    ENCORE_MULTIMAX,
    FLEX_32,
    HEP,
    MACHINES,
    SEQUENT_BALANCE,
)
from repro.macros import (
    MACHDEP_INTERFACE,
    build_processor,
    machdep_definitions,
    machindep_definitions,
)
from repro.pipeline import force_translate


def expand(machine, text):
    m4 = build_processor(machine)
    return m4.process(text + "\n")


class TestLoader:
    @pytest.mark.parametrize("key", list(MACHINES))
    def test_all_machines_load(self, key):
        machine = MACHINES[key]
        m4 = build_processor(machine)
        for name in MACHDEP_INTERFACE:
            assert m4.is_defined(name), f"{key} missing {name}"

    def test_machindep_identical_for_all(self):
        # The entire machine-independent layer is one shared text.
        assert machindep_definitions() == machindep_definitions()

    def test_machdep_differs_between_machines(self):
        texts = {machdep_definitions(m) for m in MACHINES.values()}
        assert len(texts) == len(MACHINES)


class TestLockMacros:
    def test_lock_call_names_per_machine(self):
        expected = {
            SEQUENT_BALANCE: "SPINLK",
            ENCORE_MULTIMAX: "SPINLK",
            ALLIANT_FX8: "SPINLK",
            CRAY_2: "SYSLCK",
            FLEX_32: "CMBLCK",
            HEP: "HEPLKW",
        }
        for machine, call in expected.items():
            out = expand(machine, "mi_lock(`X')")
            assert f"CALL {call}(X)" in out, machine.name

    def test_unlock_call_names(self):
        assert "SPINUN" in expand(SEQUENT_BALANCE, "mi_unlock(`X')")
        assert "SYSUNL" in expand(CRAY_2, "mi_unlock(`X')")
        assert "HEPLKS" in expand(HEP, "mi_unlock(`X')")


class TestAsyncMacros:
    def test_two_lock_produce(self):
        out = expand(SEQUENT_BALANCE, "produce(`V',`42')")
        # Lock F, write, unlock E — exactly the paper's protocol.
        lines = [l.strip() for l in out.strip().split("\n")
                 if not l.startswith("C")]
        assert lines == ["CALL SPINLK(ZZFV)", "V = 42", "CALL SPINUN(ZZEV)"]

    def test_two_lock_consume(self):
        out = expand(SEQUENT_BALANCE, "consume(`V',`X')")
        lines = [l.strip() for l in out.strip().split("\n")
                 if not l.startswith("C")]
        assert lines == ["CALL SPINLK(ZZEV)", "X = V", "CALL SPINUN(ZZFV)"]

    def test_hep_produce_is_hardware(self):
        out = expand(HEP, "produce(`V',`42')")
        assert "HEPPRD(V, 42)" in out
        assert "SPINLK" not in out

    def test_array_element_async(self):
        out = expand(SEQUENT_BALANCE, "produce(`Q(I)',`W + 1')")
        assert "CALL SPINLK(ZZFQ(I))" in out
        assert "Q(I) = W + 1" in out
        assert "CALL SPINUN(ZZEQ(I))" in out

    def test_void(self):
        assert "FRCVOD(ZZEV, ZZFV)" in expand(SEQUENT_BALANCE,
                                              "voidasync(`V')")
        assert "HEPVOD(V)" in expand(HEP, "voidasync(`V')")

    def test_async_decl_declares_ef_locks(self):
        out = expand(SEQUENT_BALANCE, "async_decl(`INTEGER',`V')")
        assert "LOGICAL ZZEV, ZZFV" in out
        assert "CALL FRCAIN(V, ZZEV, ZZFV)" in out

    def test_async_decl_hep_inits_hardware(self):
        out = expand(HEP, "async_decl(`INTEGER',`V')")
        assert "CALL HEPVIN(V)" in out
        assert "FRCAIN" not in out


class TestRegistration:
    def test_compile_time_directive(self):
        out = expand(HEP, "shared_decl(`INTEGER',`N')")
        assert "C$FORCE SHARED ZZSN" in out

    def test_run_time_divert(self):
        m4 = build_processor(ENCORE_MULTIMAX)
        body = m4.process("shared_decl(`INTEGER',`N')\n")
        assert "C$FORCE SHARED" not in body
        tail = m4.process("mi_emit_startup_unit\n")
        assert 'CALL FRCSHB("ZZSN")' in tail


class TestDeclarationLists:
    def test_multiple_entities(self):
        out = expand(HEP, "shared_decl(`INTEGER',`A, B, C')")
        for name in "ABC":
            assert f"COMMON /ZZS{name}/ {name}" in out

    def test_array_dims_stripped_from_common(self):
        # The paper's "deletion of dimensions for common declarations".
        out = expand(HEP, "shared_decl(`REAL',`A(10, 10)')")
        assert "REAL A(10, 10)" in out
        assert "COMMON /ZZSA/ A\n" in out


class TestSelfschedGolden:
    """E2: the paper's §4.2 selfscheduled DO expansion, structurally."""

    def expansion(self, machine=SEQUENT_BALANCE):
        m4 = build_processor(machine)
        src = ("force_main(`P',`NPROC',`ME')\n"
               "selfsched_do(`100',`K',`START, LAST, INCR')\n"
               "      BODY = 1\n"
               "end_selfsched_do(`100')\n")
        return m4.process(src)

    def test_entry_lock_barwin(self):
        out = self.expansion()
        entry = out.split("100 CALL")[0]
        assert "CALL SPINLK(BARWIN)" in entry

    def test_first_process_initializes_index(self):
        out = self.expansion()
        assert "IF (ZZNBAR .EQ. 0) THEN" in out
        assert "ZZI100 = (START)" in out

    def test_arrival_reporting(self):
        out = self.expansion()
        assert "ZZNBAR = ZZNBAR + 1" in out
        assert "IF (ZZNBAR .EQ. NPROC) THEN" in out
        # Last arriver releases the exit gate, others the entry gate.
        assert "CALL SPINUN(BARWOT)" in out
        assert "CALL SPINUN(BARWIN)" in out

    def test_labelled_index_critical_section(self):
        out = self.expansion()
        assert "100 CALL SPINLK(ZZL100)" in out
        assert "K = ZZI100" in out
        assert "ZZI100 = K + (INCR)" in out
        assert "CALL SPINUN(ZZL100)" in out

    def test_completion_test_both_signs(self):
        out = self.expansion()
        assert "(INCR) .GT. 0 .AND. K .LE. (LAST)" in out
        assert "(INCR) .LT. 0 .AND. K .GE. (LAST)" in out

    def test_loop_back_and_exit(self):
        out = self.expansion()
        assert "GO TO 100" in out
        exit_part = out.split("GO TO 100")[1]
        assert "CALL SPINLK(BARWOT)" in exit_part
        assert "ZZNBAR = ZZNBAR - 1" in exit_part

    def test_paper_comments_present(self):
        out = self.expansion()
        for comment in ("C loop entry code",
                        "C self scheduled loop index distribution",
                        "C get next index value",
                        "C test for completion",
                        "C loop exit code",
                        "C report arrival of processes",
                        "C report exit of processes"):
            assert comment in out, comment

    def test_same_structure_on_every_machine(self):
        for machine in MACHINES.values():
            out = self.expansion(machine)
            assert "ZZI100 = K + (INCR)" in out
            assert "GO TO 100" in out


class TestDriverGeneration:
    def test_fork_machines_use_frkall(self):
        for machine in (SEQUENT_BALANCE, ENCORE_MULTIMAX, CRAY_2, FLEX_32,
                        ALLIANT_FX8):
            src = "Force P of NP ident ME\nEnd declarations\nJoin\n      END\n"
            result = force_translate(src, machine)
            assert 'CALL FRKALL("P")' in result.fortran, machine.name

    def test_hep_uses_subroutine_spawn(self):
        src = "Force P of NP ident ME\nEnd declarations\nJoin\n      END\n"
        result = force_translate(src, HEP)
        assert 'CALL HEPSPN("P")' in result.fortran
        assert "FRKALL" not in result.fortran

    def test_run_time_machines_call_startup(self):
        src = "Force P of NP ident ME\nEnd declarations\nJoin\n      END\n"
        for machine in (ENCORE_MULTIMAX, ALLIANT_FX8):
            fortran = force_translate(src, machine).fortran
            driver = fortran.split("C$FORCE END DRIVER")[0]
            assert "CALL ZZSTRT" in driver, machine.name

    def test_sequent_driver_does_not_call_startup(self):
        src = "Force P of NP ident ME\nEnd declarations\nJoin\n      END\n"
        fortran = force_translate(src, SEQUENT_BALANCE).fortran
        driver = fortran.split("C$FORCE END DRIVER")[0]
        assert "CALL ZZSTRT" not in driver
        assert "SUBROUTINE ZZSTRT" in fortran    # emitted for run 1

    def test_compile_time_machines_have_no_startup_unit(self):
        src = "Force P of NP ident ME\nEnd declarations\nJoin\n      END\n"
        for machine in (HEP, FLEX_32, CRAY_2):
            result = force_translate(src, machine)
            assert not result.has_startup_unit, machine.name
            assert result.shared_directives, machine.name

    def test_driver_at_beginning(self):
        src = "Force P of NP ident ME\nEnd declarations\nJoin\n      END\n"
        fortran = force_translate(src, HEP).fortran
        assert fortran.startswith("C$FORCE BEGIN DRIVER")

    def test_environment_initialization(self):
        src = "Force P of NP ident ME\nEnd declarations\nJoin\n      END\n"
        fortran = force_translate(src, HEP).fortran
        assert "ZZNBAR = 0" in fortran
        assert "CALL FRCLKI(BARWIN, 0)" in fortran
        assert "CALL FRCLKI(BARWOT, 1)" in fortran


class TestBarrierMacro:
    def test_barrier_pair_shares_label(self):
        m4 = build_processor(SEQUENT_BALANCE)
        out = m4.process("force_main(`P',`NP',`ME')\n"
                         "barrier_begin()\n      S = 1\nbarrier_end()\n")
        assert "GO TO 90001" in out
        assert "90001 CONTINUE" in out

    def test_nested_barriers_get_distinct_labels(self):
        m4 = build_processor(SEQUENT_BALANCE)
        out = m4.process("force_main(`P',`NP',`ME')\n"
                         "barrier_begin()\nbarrier_end()\n"
                         "barrier_begin()\nbarrier_end()\n")
        assert "90001 CONTINUE" in out
        assert "90002 CONTINUE" in out

    def test_barrier_section_between_entry_and_exit(self):
        m4 = build_processor(SEQUENT_BALANCE)
        out = m4.process("force_main(`P',`NP',`ME')\n"
                         "barrier_begin()\n      S = 77\nbarrier_end()\n")
        section = out.split("C barrier section (one process)")[1]
        assert "S = 77" in section.split("C barrier exit")[0]


class TestCritical:
    def test_critical_emits_lock_declarations(self):
        out = expand(SEQUENT_BALANCE,
                     "force_main(`P',`NP',`ME')\ncritical(`LCK')\n"
                     "      S = 1\nend_critical()")
        assert "LOGICAL LCK" in out
        assert "COMMON /ZZKLCK/ LCK" in out
        assert "CALL SPINLK(LCK)" in out
        assert "CALL SPINUN(LCK)" in out

    def test_nested_criticals(self):
        out = expand(SEQUENT_BALANCE,
                     "force_main(`P',`NP',`ME')\ncritical(`A')\n"
                     "critical(`B')\nend_critical()\nend_critical()")
        # Inner unlock is B, outer is A (stack discipline).
        inner = out.index("CALL SPINUN(B)")
        outer = out.index("CALL SPINUN(A)")
        assert inner < outer
