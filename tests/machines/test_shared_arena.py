"""Unit tests for :class:`repro.machines.memory.SharedArena`.

The arena is the process backend's real shared memory — one POSIX
segment with a bump allocator whose cursor lives inside the segment,
so views and post-fork allocations agree across processes.  Leak-proof
lifecycle is the core contract: every test asserts ``/dev/shm`` is
clean afterwards.
"""

import glob
import multiprocessing
import os

import numpy as np
import pytest

from repro._util.errors import MachineError
from repro.machines.memory import (
    ARENA_HEADER_BYTES,
    ARENA_OWNER_SLOT,
    SharedArena,
    sweep_stale_arenas,
)


def _segments() -> set:
    return set(glob.glob("/dev/shm/force-arena-*"))


class TestAllocation:
    def test_alloc_starts_after_header(self):
        with SharedArena(size=1 << 16) as arena:
            assert arena.alloc(8) == ARENA_HEADER_BYTES

    def test_alloc_bumps_and_aligns(self):
        with SharedArena(size=1 << 16) as arena:
            first = arena.alloc(3)
            second = arena.alloc(8)
            assert second > first
            assert second % 8 == 0
            assert arena.alloc(1, align=64) % 64 == 0

    def test_exhaustion_is_an_error(self):
        with SharedArena(size=ARENA_HEADER_BYTES + 64) as arena:
            arena.alloc(64)
            with pytest.raises(MachineError, match="exhausted"):
                arena.alloc(8)

    def test_view_bounds_checked(self):
        with SharedArena(size=1 << 16) as arena:
            with pytest.raises(MachineError, match="outside"):
                arena.view(arena.size - 4, 1, np.int64)

    def test_alloc_view_zero_filled(self):
        with SharedArena(size=1 << 16) as arena:
            view = arena.alloc_view(16)
            assert view.dtype == np.int64
            assert not view.any()

    def test_too_small_for_header(self):
        with pytest.raises(MachineError, match="header"):
            SharedArena(size=ARENA_HEADER_BYTES)

    def test_needs_size_or_name(self):
        with pytest.raises(MachineError):
            SharedArena()


class TestCrossProcess:
    def test_views_shared_over_fork(self):
        with SharedArena(size=1 << 16) as arena:
            view = arena.alloc_view(4)
            ctx = multiprocessing.get_context("fork")

            def bump():
                view[0] = 41
                view[0] += 1

            proc = ctx.Process(target=bump)
            proc.start()
            proc.join(10)
            assert proc.exitcode == 0
            assert int(view[0]) == 42

    def test_attach_by_name_sees_allocator_cursor(self):
        with SharedArena(size=1 << 16) as arena:
            offset = arena.alloc(32)
            arena.view(offset, 4)[:] = (1, 2, 3, 4)
            other = SharedArena(name=arena.name)
            try:
                assert list(other.view(offset, 4)) == [1, 2, 3, 4]
                # the cursor lives in the segment: an attach-side
                # alloc continues where the creator left off
                assert other.alloc(8) >= offset + 32
            finally:
                other.close()

    def test_attacher_cannot_unlink(self):
        arena = SharedArena(size=1 << 16)
        try:
            other = SharedArena(name=arena.name)
            other.close()
            other.unlink()          # non-owner: must be a no-op
            assert f"/dev/shm/{arena.name}" in _segments()
        finally:
            arena.close()
            arena.unlink()
        assert f"/dev/shm/{arena.name}" not in _segments()


class TestLifecycle:
    def test_context_manager_unlinks(self):
        before = _segments()
        with SharedArena(size=1 << 16) as arena:
            name = arena.name
            assert f"/dev/shm/{name}" in _segments()
        assert _segments() == before

    def test_close_and_unlink_idempotent(self):
        arena = SharedArena(size=1 << 16)
        arena.close()
        arena.close()
        arena.unlink()
        arena.unlink()
        assert _segments() == set(_segments())  # and no crash

    def test_unlink_survives_missing_segment(self):
        arena = SharedArena(size=1 << 16)
        arena.close()
        arena.unlink()
        arena.unlink()              # FileNotFoundError swallowed


def _orphan_arena(conn):
    """Create an arena and die without any cleanup (a killed parent).

    A Pipe (not a Queue) ships the name out: ``send`` writes the fd
    synchronously, so the abrupt ``os._exit`` cannot swallow it.
    """
    arena = SharedArena(size=1 << 16)
    conn.send(arena.name)
    os._exit(0)                     # no close, no unlink, no atexit


def _spawn_orphan():
    ctx = multiprocessing.get_context("fork")
    ours, theirs = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_orphan_arena, args=(theirs,))
    proc.start()
    theirs.close()
    assert ours.poll(10), "orphan child never reported its arena"
    orphan = ours.recv()
    proc.join(10)
    ours.close()
    return orphan


class TestStaleSweep:
    def test_creator_stamps_its_pid_into_the_header(self):
        with SharedArena(size=1 << 16) as arena:
            header = arena.view(0, ARENA_OWNER_SLOT + 1)
            assert int(header[ARENA_OWNER_SLOT]) == os.getpid()

    def test_sweep_reclaims_a_dead_owners_segment(self):
        orphan = _spawn_orphan()
        assert f"/dev/shm/{orphan}" in _segments(), \
            "the orphan should have leaked (that is the scenario)"

        with SharedArena(size=1 << 16) as live:
            removed = sweep_stale_arenas()
            assert orphan in removed
            assert f"/dev/shm/{orphan}" not in _segments()
            # a segment whose owner is alive is never touched
            assert live.name not in removed
            assert f"/dev/shm/{live.name}" in _segments()

    def test_process_backend_run_starts_from_a_clean_shm(self):
        # The runtime hook: a leaked segment from a killed run is
        # swept before the next ProcessForce allocates its arena.
        from repro.runtime import Force
        orphan = _spawn_orphan()

        force = Force(2, backend="process", timeout=30.0)
        force.run(_touch_shared)
        assert f"/dev/shm/{orphan}" not in _segments()
        assert _segments() == set()     # and the run's own is gone too

    def test_sweep_of_an_empty_directory_is_quiet(self, tmp_path):
        assert sweep_stale_arenas(shm_dir=str(tmp_path)) == []
        assert sweep_stale_arenas(shm_dir=str(tmp_path / "no")) == []


def _touch_shared(force, me):
    counter = force.shared_counter("touched")
    with force.critical("bump"):
        counter.value += 1
    force.barrier()
