"""Unit tests for :class:`repro.machines.memory.SharedArena`.

The arena is the process backend's real shared memory — one POSIX
segment with a bump allocator whose cursor lives inside the segment,
so views and post-fork allocations agree across processes.  Leak-proof
lifecycle is the core contract: every test asserts ``/dev/shm`` is
clean afterwards.
"""

import glob
import multiprocessing

import numpy as np
import pytest

from repro._util.errors import MachineError
from repro.machines.memory import (
    ARENA_HEADER_BYTES,
    SharedArena,
)


def _segments() -> set:
    return set(glob.glob("/dev/shm/force-arena-*"))


class TestAllocation:
    def test_alloc_starts_after_header(self):
        with SharedArena(size=1 << 16) as arena:
            assert arena.alloc(8) == ARENA_HEADER_BYTES

    def test_alloc_bumps_and_aligns(self):
        with SharedArena(size=1 << 16) as arena:
            first = arena.alloc(3)
            second = arena.alloc(8)
            assert second > first
            assert second % 8 == 0
            assert arena.alloc(1, align=64) % 64 == 0

    def test_exhaustion_is_an_error(self):
        with SharedArena(size=ARENA_HEADER_BYTES + 64) as arena:
            arena.alloc(64)
            with pytest.raises(MachineError, match="exhausted"):
                arena.alloc(8)

    def test_view_bounds_checked(self):
        with SharedArena(size=1 << 16) as arena:
            with pytest.raises(MachineError, match="outside"):
                arena.view(arena.size - 4, 1, np.int64)

    def test_alloc_view_zero_filled(self):
        with SharedArena(size=1 << 16) as arena:
            view = arena.alloc_view(16)
            assert view.dtype == np.int64
            assert not view.any()

    def test_too_small_for_header(self):
        with pytest.raises(MachineError, match="header"):
            SharedArena(size=ARENA_HEADER_BYTES)

    def test_needs_size_or_name(self):
        with pytest.raises(MachineError):
            SharedArena()


class TestCrossProcess:
    def test_views_shared_over_fork(self):
        with SharedArena(size=1 << 16) as arena:
            view = arena.alloc_view(4)
            ctx = multiprocessing.get_context("fork")

            def bump():
                view[0] = 41
                view[0] += 1

            proc = ctx.Process(target=bump)
            proc.start()
            proc.join(10)
            assert proc.exitcode == 0
            assert int(view[0]) == 42

    def test_attach_by_name_sees_allocator_cursor(self):
        with SharedArena(size=1 << 16) as arena:
            offset = arena.alloc(32)
            arena.view(offset, 4)[:] = (1, 2, 3, 4)
            other = SharedArena(name=arena.name)
            try:
                assert list(other.view(offset, 4)) == [1, 2, 3, 4]
                # the cursor lives in the segment: an attach-side
                # alloc continues where the creator left off
                assert other.alloc(8) >= offset + 32
            finally:
                other.close()

    def test_attacher_cannot_unlink(self):
        arena = SharedArena(size=1 << 16)
        try:
            other = SharedArena(name=arena.name)
            other.close()
            other.unlink()          # non-owner: must be a no-op
            assert f"/dev/shm/{arena.name}" in _segments()
        finally:
            arena.close()
            arena.unlink()
        assert f"/dev/shm/{arena.name}" not in _segments()


class TestLifecycle:
    def test_context_manager_unlinks(self):
        before = _segments()
        with SharedArena(size=1 << 16) as arena:
            name = arena.name
            assert f"/dev/shm/{name}" in _segments()
        assert _segments() == before

    def test_close_and_unlink_idempotent(self):
        arena = SharedArena(size=1 << 16)
        arena.close()
        arena.close()
        arena.unlink()
        arena.unlink()
        assert _segments() == set(_segments())  # and no crash

    def test_unlink_survives_missing_segment(self):
        arena = SharedArena(size=1 << 16)
        arena.close()
        arena.unlink()
        arena.unlink()              # FileNotFoundError swallowed
