"""Machine catalog and memory-layout tests."""

import pytest

from repro.machines import (
    ALLIANT_FX8,
    CRAY_2,
    ENCORE_MULTIMAX,
    FLEX_32,
    HEP,
    MACHINES,
    MachineError,
    MemoryLayout,
    SEQUENT_BALANCE,
    get_machine,
    machine_names,
)
from repro.machines.memory import VariableSpec
from repro.machines.model import (
    LockType,
    MachineModel,
    ProcessModel,
    SharingBinding,
)


class TestCatalog:
    def test_seven_machines(self):
        # the paper's six ports plus the Python host this
        # reproduction itself runs on (the process backend's machine)
        assert len(MACHINES) == 7

    def test_paper_port_list(self):
        # "implemented on the HEP, Flex/32, Encore Multimax, Sequent
        # Balance, Alliant FX/8, and Cray-2 multiprocessors" — plus
        # our own seventh port, the Python host.
        names = {m.name for m in MACHINES.values()}
        assert names == {"HEP", "Flex/32", "Encore Multimax",
                         "Sequent Balance", "Alliant FX/8", "Cray-2",
                         "Python Host"}

    def test_lookup_by_key(self):
        assert get_machine("hep") is HEP
        assert get_machine("flex32") is FLEX_32

    def test_lookup_by_display_name(self):
        assert get_machine("Encore Multimax") is ENCORE_MULTIMAX
        assert get_machine("Cray-2") is CRAY_2

    def test_unknown_machine(self):
        with pytest.raises(MachineError):
            get_machine("connection-machine")

    def test_machine_names_order(self):
        assert machine_names()[0] == "hep"

    def test_describe_mentions_axes(self):
        text = SEQUENT_BALANCE.describe()
        assert "spin" in text and "link-time" in text


class TestPaperAttributes:
    def test_hep_hardware_full_empty(self):
        assert HEP.lock_type is LockType.HARDWARE_FE
        assert HEP.process_model is ProcessModel.SUBROUTINE_SPAWN
        assert HEP.sharing_binding is SharingBinding.COMPILE_TIME

    def test_fork_machines(self):
        # Encore and Sequent fork with a complete copy of data+stack.
        for machine in (ENCORE_MULTIMAX, SEQUENT_BALANCE):
            assert machine.process_model is ProcessModel.UNIX_FORK

    def test_alliant_shares_data_segments(self):
        assert ALLIANT_FX8.process_model is ProcessModel.SHARED_DATA_FORK

    def test_lock_types_match_paper(self):
        assert SEQUENT_BALANCE.lock_type is LockType.SPIN
        assert ENCORE_MULTIMAX.lock_type is LockType.SPIN
        assert CRAY_2.lock_type is LockType.SYSCALL
        assert FLEX_32.lock_type is LockType.COMBINED

    def test_sharing_binding_times(self):
        assert FLEX_32.sharing_binding is SharingBinding.COMPILE_TIME
        assert SEQUENT_BALANCE.sharing_binding is SharingBinding.LINK_TIME
        assert ENCORE_MULTIMAX.sharing_binding is SharingBinding.RUN_TIME
        assert ALLIANT_FX8.sharing_binding is SharingBinding.RUN_TIME

    def test_cray_locks_scarce(self):
        assert CRAY_2.lock_limit > 0

    def test_hep_process_creation_cheap(self):
        # "a large process creation cost ... prevents fine grained
        # parallelism" on fork machines; HEP creates via subroutine call.
        fork_costs = [m.costs.process_create for m in
                      (ENCORE_MULTIMAX, SEQUENT_BALANCE, FLEX_32, CRAY_2)]
        assert HEP.costs.process_create < min(fork_costs) / 10

    def test_syscall_lock_costs_dominate_spin(self):
        assert CRAY_2.costs.syscall_overhead > \
            SEQUENT_BALANCE.costs.lock_acquire * 10

    def test_combined_lock_has_spin_limit(self):
        assert FLEX_32.combined_spin_limit > 0

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(
                name="bad", vendor="x", processors=0,
                process_model=ProcessModel.UNIX_FORK,
                lock_type=LockType.SPIN,
                sharing_binding=SharingBinding.RUN_TIME,
                page_size=4096)


class TestMemoryLayout:
    shared = [VariableSpec("NSHARE", "INTEGER"),
              VariableSpec("A", "REAL", 1000),
              VariableSpec("FLAG", "LOGICAL")]
    private = [VariableSpec("I", "INTEGER"),
               VariableSpec("TMP", "DOUBLE PRECISION", 10)]

    def test_encore_padded_both_ends(self):
        plan = MemoryLayout(ENCORE_MULTIMAX).plan(self.shared, self.private)
        plan.check()
        page = ENCORE_MULTIMAX.page_size
        assert plan.shared_start % page == 0
        assert plan.shared_end % page == 0
        assert plan.padding_bytes > 0

    def test_alliant_starts_on_page(self):
        plan = MemoryLayout(ALLIANT_FX8).plan(self.shared, self.private)
        plan.check()
        assert plan.shared_start % ALLIANT_FX8.page_size == 0

    def test_hep_no_padding(self):
        plan = MemoryLayout(HEP).plan(self.shared, self.private)
        plan.check()
        assert plan.padding_bytes == 0

    def test_private_never_overlaps_shared(self):
        for machine in MACHINES.values():
            plan = MemoryLayout(machine).plan(self.shared, self.private)
            plan.check()
            for p in plan.private:
                assert p.end <= plan.shared_start or \
                    p.start >= plan.shared_end

    def test_shared_inside_region(self):
        plan = MemoryLayout(ENCORE_MULTIMAX).plan(self.shared, self.private)
        for p in plan.shared:
            assert plan.shared_start <= p.start
            assert p.end <= plan.shared_end

    def test_placement_lookup(self):
        plan = MemoryLayout(HEP).plan(self.shared, self.private)
        assert plan.placement("A").spec.elements == 1000
        with pytest.raises(MachineError):
            plan.placement("NOPE")

    def test_double_precision_alignment(self):
        plan = MemoryLayout(HEP).plan(
            [VariableSpec("B", "LOGICAL"),
             VariableSpec("D", "DOUBLE PRECISION", 2)], [])
        d = plan.placement("D")
        assert d.start % 8 == 0

    def test_sizes(self):
        assert VariableSpec("X", "DOUBLE PRECISION", 3).size == 24
        assert VariableSpec("C", "CHARACTER", 8).size == 8
        with pytest.raises(MachineError):
            VariableSpec("Z", "QUATERNION").size
