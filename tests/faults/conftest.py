"""Fixtures for the fault-injection suite.

The chaos-sweep test records its outcome counts into
``BENCH_results.json`` through the same ``record_result`` machinery
the experiment benchmarks use.  The benchmarks tree is outside tier-1
(``testpaths = ["tests"]``), so its conftest is loaded here by path
and its session-finish writer delegated to, rather than duplicated.
Both conftests active at once (``pytest tests benchmarks``) is
harmless: results merge into the file by name.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

_BENCH_CONFTEST = (Path(__file__).resolve().parents[2]
                   / "benchmarks" / "conftest.py")


def _load_bench_conftest():
    name = "_bench_conftest_for_faults"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, _BENCH_CONFTEST)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


_bench = _load_bench_conftest()

#: re-exported pytest fixture (same name, same contract)
record_result = _bench.record_result


def pytest_sessionfinish(session, exitstatus):
    _bench.pytest_sessionfinish(session, exitstatus)
