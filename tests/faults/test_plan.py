"""Fault plans: spec grammar, validation, serialisation, seeding."""

import pytest

from repro.faults.plan import (
    FAULT_KINDS,
    NOTIFY_SITES,
    SITES,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    parse_fault_spec,
    random_plan,
)


class TestSpecGrammar:
    def test_minimal_spec(self):
        spec = parse_fault_spec("raise@barrier.entry")
        assert spec.kind == "raise"
        assert spec.site == "barrier.entry"
        assert spec.name == ""
        assert spec.proc == 0 and spec.occurrence == 1

    def test_named_construct(self):
        spec = parse_fault_spec("die@askfor.got/jobs:proc=1")
        assert spec.name == "jobs"
        assert spec.proc == 1

    def test_all_options(self):
        spec = parse_fault_spec(
            "delay@critical.hold/hot:proc=2,n=3,seconds=0.25")
        assert (spec.proc, spec.occurrence, spec.seconds) == (2, 3, 0.25)

    @pytest.mark.parametrize("bad", [
        "raise",                          # no @SITE
        "@barrier.entry",                 # no kind
        "raise@",                         # no site
        "explode@barrier.entry",          # unknown kind
        "raise@barrier.enter",            # unknown site
        "raise@barrier.entry:n",          # option without value
        "raise@barrier.entry:n=soon",     # non-integer occurrence
        "raise@barrier.entry:speed=9",    # unknown option
        "lost-wakeup@critical.hold",      # not a notifying site
        "raise@barrier.entry:n=0",        # occurrence < 1
        "raise@barrier.entry:proc=-1",    # negative process
    ])
    def test_rejected_with_fault_spec_error(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_every_kind_and_site_is_parseable(self):
        for kind in FAULT_KINDS:
            sites = NOTIFY_SITES if kind == "lost-wakeup" else SITES
            for site in sites:
                assert parse_fault_spec(f"{kind}@{site}").site == site


class TestSpecMatching:
    def test_any_process_any_name(self):
        spec = FaultSpec("raise", "critical.hold")
        assert spec.matches("critical.hold", "sum", 3)
        assert not spec.matches("critical.acquire", "sum", 3)

    def test_pinned_process_and_name(self):
        spec = FaultSpec("raise", "critical.hold", name="sum", proc=2)
        assert spec.matches("critical.hold", "sum", 2)
        assert not spec.matches("critical.hold", "sum", 1)
        assert not spec.matches("critical.hold", "other", 2)


class TestPlanSerialisation:
    def test_json_roundtrip(self):
        plan = FaultPlan.from_specs(
            ["die@askfor.got/jobs:proc=1",
             "delay@critical.hold:seconds=0.2,n=2"], seed=42)
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_from_specs_keeps_order(self):
        plan = FaultPlan.from_specs(
            ["raise@barrier.entry", "die@selfsched.chunk"])
        assert [s.kind for s in plan.faults] == ["raise", "die"]

    def test_bad_json_is_a_spec_error(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_json("not json")
        with pytest.raises(FaultSpecError):
            FaultPlan.from_json("[1, 2]")

    def test_describe_names_every_fault(self):
        plan = FaultPlan.from_specs(["raise@barrier.entry:proc=2"],
                                    seed=7)
        text = plan.describe()
        assert "seed 7" in text
        assert "raise@barrier.entry" in text
        assert "proc=2" in text


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        a = random_plan(123, nproc=4)
        b = random_plan(123, nproc=4)
        assert a == b

    def test_different_seeds_differ_somewhere(self):
        plans = [random_plan(seed, nproc=4) for seed in range(50)]
        assert len({p.to_json() for p in plans}) > 1

    def test_every_generated_plan_is_valid(self):
        # __post_init__ validation runs on every generated spec; a
        # sweep of seeds must never produce an invalid combination.
        for seed in range(200):
            plan = random_plan(seed, nproc=4)
            assert 1 <= len(plan.faults) <= 3
            for spec in plan.faults:
                assert spec.kind in FAULT_KINDS
                assert spec.site in SITES

    def test_site_targeting(self):
        plan = random_plan(5, nproc=4,
                           sites=("critical.hold", "critical.acquire"))
        assert all(s.site.startswith("critical.")
                   for s in plan.faults)
