"""`force chaos` — the CLI surface of the chaos harness."""

import json

import pytest

from repro.faults.corpus import CORPUS
from repro.pipeline.cli import main


class TestChaosCommand:
    def test_small_clean_sweep_exits_ok(self, capsys):
        code = main(["chaos", "--seed", "7", "--runs", "3",
                     "--deadline", "6", "--construct-timeout", "1",
                     "sum_critical"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos sweep: 3 run(s), seed 7" in out
        assert "invariant held" in out

    def test_list_prints_the_corpus(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in CORPUS:
            assert name in out
        assert "exercises:" in out

    def test_unknown_program_is_a_force_error(self, capsys):
        assert main(["chaos", "no_such_program"]) == 1
        err = capsys.readouterr().err
        assert "unknown chaos program" in err
        assert "force chaos --list" in err

    def test_inject_and_plan_are_mutually_exclusive(self, tmp_path,
                                                    capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text('{"seed": 1, "faults": []}',
                             encoding="utf-8")
        code = main(["chaos", "--inject", "raise@barrier.entry",
                     "--plan", str(plan_file), "sum_critical"])
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_spec_grammar_is_a_usage_error(self, capsys):
        # Grammar problems are caught at the argparse layer: exit 2,
        # like any other malformed flag.
        code = main(["chaos", "--inject", "bogus@nowhere",
                     "sum_critical"])
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err


class TestExplicitPlans:
    def test_survivable_injection_exits_ok(self, capsys):
        code = main(["chaos", "--runs", "1", "--deadline", "6",
                     "--construct-timeout", "1",
                     "--inject", "delay@barrier.entry:seconds=0.01",
                     "sections"])
        assert code == 0
        assert "faults injected: 1" in capsys.readouterr().out

    def test_plan_file_replays(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "seed": 42,
            "faults": [{"kind": "raise", "site": "critical.hold",
                        "name": "sum", "occurrence": 1}],
        }), encoding="utf-8")
        code = main(["chaos", "--plan", str(plan_file), "--runs", "1",
                     "--deadline", "6", "--construct-timeout", "1",
                     "--format", "json", "sum_critical"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counts"] == {"injected-error": 1}
        assert report["seed"] == 42


class TestJsonOutput:
    @pytest.fixture()
    def json_report(self, capsys):
        def sweep():
            code = main(["chaos", "--seed", "11", "--runs", "4",
                         "--deadline", "6", "--construct-timeout", "1",
                         "--format", "json"])
            assert code == 0
            return json.loads(capsys.readouterr().out)
        return sweep

    def test_report_shape(self, json_report):
        report = json_report()
        assert set(report) >= {"seed", "runs", "nproc", "counts",
                               "faults_injected", "outcomes",
                               "violations"}
        assert report["runs"] == 4
        assert len(report["outcomes"]) == 4
        for outcome in report["outcomes"]:
            assert outcome["plan"] is not None
            assert outcome["status"]

    def test_same_seed_replays_identical_plans(self, json_report):
        # Statuses can legitimately differ between runs (a die fault
        # races real scheduling); the *plans* must not.
        first, second = json_report(), json_report()
        assert [o["plan"] for o in first["outcomes"]] == \
            [o["plan"] for o in second["outcomes"]]
        assert [o["program"] for o in first["outcomes"]] == \
            [o["program"] for o in second["outcomes"]]


class TestSupervisedChaos:
    def test_supervised_die_sweep_recovers_bit_identical(self, capsys,
                                                         tmp_path):
        code = main(["chaos", "--seed", "77", "--runs", "2",
                     "--deadline", "12", "--construct-timeout", "3",
                     "--fault-kinds", "die", "--supervise",
                     "--min-nproc", "3", "--checkpoints",
                     str(tmp_path), "--format", "json",
                     "sum_critical"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["config"]["supervised"] is True
        assert report["config"]["fault_kinds"] == ["die"]
        assert report["violations"] == []
        for outcome in report["outcomes"]:
            assert outcome["status"] in ("ok", "recovered")
            assert outcome["state_digest"] == outcome["oracle_digest"]
            assert outcome["supervision"] is not None

    def test_text_report_names_the_pinned_config(self, capsys):
        code = main(["chaos", "--seed", "5", "--runs", "1",
                     "--deadline", "8", "--construct-timeout", "1.5",
                     "--fault-kinds", "die", "--supervise",
                     "sections"])
        assert code == 0
        out = capsys.readouterr().out
        assert "construct-timeout=1.5s" in out
        assert "supervised" in out

    def test_unknown_fault_kind_is_a_usage_error(self, capsys):
        code = main(["chaos", "--fault-kinds", "die,meteor",
                     "sum_critical"])
        assert code == 2
        assert "meteor" in capsys.readouterr().err
