"""The recovery differential oracle: die, resume, compare bit-for-bit.

A supervised chaos sweep is the tentpole's acceptance harness: every
seeded die-fault run must either finish clean (the plan never fired)
or *recover* — result oracle passing AND final shared-state digest
bit-identical to a fault-free run of the same program on the same
backend.  Anything else (corrupt, hang, unrecovered death) is an
invariant violation.

Also covered here: the failure-artifact contract (revision + exact
replay command in every outcome document) and the pinned
``construct_timeout`` recorded through report and outcome configs.
"""

import json
import os

import pytest

from repro.faults.chaos import (
    INVARIANT_OK,
    ChaosOutcome,
    chaos_sweep,
    oracle_digest,
    replay_command,
    run_supervised,
    write_failure_artifacts,
)
from repro.faults.corpus import CORPUS
from repro.faults.plan import FaultPlan, FaultSpec, random_plan
from repro.runtime.supervisor import RetryPolicy

DEADLINE = 12.0
CONSTRUCT_TIMEOUT = 3.0


class TestSupervisedSweep:
    def test_die_sweep_recovers_bit_identical(self):
        # One run per corpus program plus change; kinds pinned to
        # "die" so every fired plan exercises death recovery.
        report = chaos_sweep(
            seed=77, runs=8, nproc=4, min_nproc=3,
            deadline=DEADLINE, construct_timeout=CONSTRUCT_TIMEOUT,
            fault_kinds=("die",), supervise=True, retries=3)
        assert report.violations == [], \
            "\n".join(o.describe() for o in report.violations)
        fired = [o for o in report.outcomes if o.injected]
        recovered = [o for o in fired if o.status == "recovered"]
        assert fired, "no plan fired; the sweep proved nothing"
        assert len(recovered) / len(fired) >= 0.9
        # the differential oracle itself: every completed run's final
        # state hashes equal to the fault-free reference
        for outcome in report.outcomes:
            assert outcome.status in ("ok", "recovered")
            assert outcome.state_digest == outcome.oracle_digest != ""

    def test_supervised_report_carries_the_pinned_config(self):
        report = chaos_sweep(
            seed=5, runs=1, nproc=3, deadline=DEADLINE,
            construct_timeout=1.25, fault_kinds=("die",),
            supervise=True, min_nproc=2)
        assert report.construct_timeout == 1.25
        assert report.config["construct_timeout"] == 1.25
        assert report.config["supervised"] is True
        assert report.config["fault_kinds"] == ["die"]
        outcome = report.outcomes[0]
        assert outcome.config["construct_timeout"] == 1.25
        assert outcome.as_dict()["config"]["supervised"] is True

    def test_checkpoint_root_keeps_snapshots_per_run(self, tmp_path):
        report = chaos_sweep(
            seed=101, runs=2, nproc=4, min_nproc=3,
            programs=["sum_critical"],
            deadline=DEADLINE, construct_timeout=CONSTRUCT_TIMEOUT,
            fault_kinds=("die",), supervise=True,
            checkpoint_root=str(tmp_path))
        assert report.violations == []
        roots = sorted(os.listdir(tmp_path))
        assert roots == ["sum_critical-seed101", "sum_critical-seed102"]


class TestElasticRecovery:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_degraded_restart_matches_the_oracle(self, backend,
                                                 tmp_path):
        # die on the very first critical acquisition; degrade_after=1
        # forces the retry down to three workers — the recovered state
        # must still hash equal to the full-width fault-free run.
        entry = CORPUS["sum_critical"]
        plan = FaultPlan(seed=3, faults=(
            FaultSpec(kind="die", site="critical.acquire",
                      occurrence=2),))
        outcome, _force = run_supervised(
            entry, plan, nproc=4, min_nproc=3,
            deadline=DEADLINE, construct_timeout=CONSTRUCT_TIMEOUT,
            backend=backend, checkpoint_dir=str(tmp_path),
            retry=RetryPolicy(retries=2, degrade_after=1,
                              base_delay=0.0, max_delay=0.0, seed=3))
        assert outcome.status == "recovered", outcome.describe()
        assert outcome.supervision["degraded_restarts"] >= 1
        assert outcome.supervision["final_nproc"] == 3
        assert outcome.state_digest == outcome.oracle_digest

    def test_unfired_plan_is_plain_ok(self, tmp_path):
        entry = CORPUS["sections"]
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(kind="die", site="critical.acquire",
                      name="no_such_lock"),))
        outcome, _force = run_supervised(
            entry, plan, nproc=3, deadline=DEADLINE,
            construct_timeout=CONSTRUCT_TIMEOUT,
            checkpoint_dir=str(tmp_path),
            retry=RetryPolicy(retries=1, base_delay=0.0,
                              max_delay=0.0))
        assert outcome.status == "ok"
        assert outcome.supervision["retries"] == 0


class TestArtifacts:
    def _outcome(self):
        entry = CORPUS["sum_critical"]
        plan = random_plan(9, nproc=4, max_faults=2, kinds=("die",))
        return ChaosOutcome(
            program=entry.name, seed=9, status="corrupt", elapsed=0.1,
            error="wrong answer", plan=plan,
            config={"nproc": 4, "deadline": 6.0,
                    "construct_timeout": 1.5,
                    "barrier_algorithm": "central-counter",
                    "backend": "process", "supervised": True,
                    "min_nproc": 2, "retries": 3,
                    "fault_kinds": ["die"], "max_faults": 2})

    def test_replay_command_is_exact(self):
        assert replay_command(self._outcome()) == (
            "force chaos --seed 9 --runs 1 --nproc 4 --deadline 6 "
            "--construct-timeout 1.5 --barrier central-counter "
            "--backend process --max-faults 2 --fault-kinds die "
            "--supervise --min-nproc 2 --retries 3 sum_critical")

    def test_artifacts_carry_revision_and_replay(self, tmp_path):
        outcome = self._outcome()
        written = write_failure_artifacts(str(tmp_path), outcome, None)
        outcome_path = [p for p in written
                        if p.endswith(".outcome.json")][0]
        document = json.loads(open(outcome_path).read())
        assert "git_revision" in document     # str or null, never absent
        assert document["git_revision"] is None \
            or isinstance(document["git_revision"], str)
        assert document["replay"] == replay_command(outcome)
        assert document["config"]["construct_timeout"] == 1.5
        plan_path = [p for p in written if p.endswith(".plan.json")][0]
        assert json.loads(open(plan_path).read())["seed"] == 9

    def test_recovered_is_an_invariant_keeping_status(self):
        assert "recovered" in INVARIANT_OK


class TestOracleDigest:
    def test_oracle_is_deterministic_per_backend(self):
        entry = CORPUS["jacobi"]
        kwargs = dict(nproc=4, deadline=DEADLINE,
                      construct_timeout=CONSTRUCT_TIMEOUT,
                      barrier_algorithm="central-counter",
                      backend="thread")
        assert oracle_digest(entry, **kwargs) \
            == oracle_digest(entry, **kwargs)
