"""End-to-end injection: faults fired inside a running native force.

The promptness bound (PROMPT) follows the cancellation suite: every
structured failure must surface in a couple of revalidation slices,
never by riding out the global join timeout.
"""

from time import monotonic

import pytest

from repro.faults.injector import InjectedFault
from repro.faults.plan import FaultPlan
from repro.runtime import (
    Force,
    ForceDeadlockError,
    ForceProgramError,
    ForceWorkerDied,
)

PROMPT = 2.0         # seconds: "fails fast" budget
JOIN_TIMEOUT = 20.0  # the bound we must never actually ride out


def plan(*specs: str) -> FaultPlan:
    return FaultPlan.from_specs(list(specs))


def run_expecting(force, program, *exc_types):
    flat: tuple = ()
    for entry in exc_types:
        flat += entry if isinstance(entry, tuple) else (entry,)
    started = monotonic()
    with pytest.raises(flat) as info:
        force.run(program)
    return info.value, monotonic() - started


class TestRaiseFaults:
    def test_raise_in_critical_fails_fast(self):
        force = Force(4, timeout=JOIN_TIMEOUT,
                      inject=plan("raise@critical.hold/sum"))

        def program(force, me):
            total = force.shared_counter("total")
            for k in force.selfsched_range("loop", 1, 40):
                with force.critical("sum"):
                    total.value += k
            force.barrier()

        error, elapsed = run_expecting(force, program,
                                       ForceProgramError)
        assert isinstance(error.original, InjectedFault)
        assert "critical.hold" in str(error.original)
        assert elapsed < PROMPT
        assert len(force.injected_faults()) == 1

    def test_raise_at_barrier_entry_poisons_peers(self):
        force = Force(4, timeout=JOIN_TIMEOUT,
                      inject=plan("raise@barrier.entry:proc=3"))

        def program(force, me):
            force.barrier()

        error, elapsed = run_expecting(force, program,
                                       ForceProgramError)
        assert error.me == 3
        assert elapsed < PROMPT


class TestDelayFaults:
    def test_slow_critical_holder_is_survivable(self):
        force = Force(4, timeout=JOIN_TIMEOUT, construct_timeout=5.0,
                      inject=plan(
                          "delay@critical.hold/sum:seconds=0.3"))
        expected = sum(range(1, 41))

        def program(force, me):
            total = force.shared_counter("total")
            for k in force.selfsched_range("loop", 1, 40):
                with force.critical("sum"):
                    total.value += k
            force.barrier()

        force.run(program)
        assert force.shared_counter("total").value == expected
        assert len(force.injected_faults()) == 1

    def test_slow_producer_is_survivable(self):
        force = Force(2, timeout=JOIN_TIMEOUT, construct_timeout=5.0,
                      inject=plan(
                          "delay@asyncvar.produce/chan:seconds=0.2"))

        def program(force, me):
            channel = force.async_var("chan")
            sink = force.shared_counter("sink")
            if me == 1:
                for k in range(5):
                    channel.produce(k)
            else:
                for _ in range(5):
                    sink.value += channel.consume()
            force.barrier()

        force.run(program)
        assert force.shared_counter("sink").value == sum(range(5))


class TestLostWakeups:
    def test_asyncvar_consumer_survives_a_swallowed_produce(self):
        force = Force(2, timeout=JOIN_TIMEOUT,
                      inject=plan("lost-wakeup@asyncvar.produce/chan"))

        def program(force, me):
            channel = force.async_var("chan")
            sink = force.shared_counter("sink")
            if me == 1:
                for k in range(4):
                    channel.produce(k + 1)
            else:
                for _ in range(4):
                    sink.value += channel.consume()
            force.barrier()

        started = monotonic()
        force.run(program)
        # survived via revalidation (bounded wait slices), promptly
        assert monotonic() - started < PROMPT
        assert force.shared_counter("sink").value == 10
        assert [r.kind for r in force.injected_faults()] == \
            ["lost-wakeup"]

    def test_askfor_waiter_survives_a_swallowed_put(self):
        force = Force(3, timeout=JOIN_TIMEOUT,
                      inject=plan("lost-wakeup@askfor.put/work"))

        def program(force, me):
            pool = force.askfor("work", [4])
            count = force.shared_counter("count")
            force.barrier()
            for item in pool:
                if item > 1:
                    pool.put(item - 1)
                    pool.put(item - 1)
                with force.critical("count"):
                    count.value += 1
            force.barrier()

        force.run(program)
        assert force.shared_counter("count").value == 2 ** 4 - 1


class TestDieFaults:
    def test_dead_askfor_holder_is_named_not_hung(self):
        force = Force(2, timeout=JOIN_TIMEOUT, construct_timeout=5.0,
                      inject=plan("die@askfor.got/work"))

        def program(force, me):
            pool = force.askfor("work", [1])
            force.barrier()
            for _item in pool:
                pass
            force.barrier()

        error, elapsed = run_expecting(force, program, ForceWorkerDied)
        message = str(error)
        assert "died" in message
        assert "askfor 'work'" in message
        assert "process" in message
        assert elapsed < PROMPT

    def test_dead_barrier_partner_hits_the_construct_deadline(self):
        force = Force(2, timeout=JOIN_TIMEOUT, construct_timeout=0.5,
                      inject=plan("die@barrier.entry:proc=2"))

        def program(force, me):
            force.barrier()

        error, elapsed = run_expecting(
            force, program, (ForceDeadlockError, ForceWorkerDied))
        assert elapsed < PROMPT
        if isinstance(error, ForceDeadlockError):
            assert "barrier" in str(error)

    def test_die_mid_selfsched_yields_a_structured_error(self):
        force = Force(2, timeout=JOIN_TIMEOUT, construct_timeout=0.5,
                      inject=plan("die@selfsched.chunk/loop"))

        def program(force, me):
            for _k in force.selfsched_range("loop", 1, 20):
                pass
            force.barrier()

        error, elapsed = run_expecting(
            force, program, (ForceDeadlockError, ForceWorkerDied))
        assert elapsed < PROMPT
        assert isinstance(error,
                          (ForceDeadlockError, ForceWorkerDied))

    def test_completed_run_with_a_death_is_not_trusted(self):
        # The dying process does no further work, but its peers can
        # finish: the force must still refuse to report success.
        force = Force(2, timeout=JOIN_TIMEOUT,
                      inject=plan("die@critical.hold/mark:proc=2"))

        def program(force, me):
            if me == 2:
                with force.critical("mark"):
                    pass
            # no synchronisation afterwards: me=1 finishes cleanly

        error, _ = run_expecting(force, program, ForceWorkerDied)
        assert "process 2" in str(error)
        assert "critical.hold" in str(error)


class TestConstructDeadlines:
    def test_parked_consumer_names_its_asyncvar(self):
        force = Force(2, timeout=JOIN_TIMEOUT, construct_timeout=0.3)

        def program(force, me):
            if me == 1:
                force.async_var("chan").consume()   # never produced

        error, elapsed = run_expecting(force, program,
                                       ForceDeadlockError)
        assert "asyncvar 'chan'" in str(error)
        assert elapsed < PROMPT

    def test_missing_barrier_partner_names_the_barrier(self):
        force = Force(2, timeout=JOIN_TIMEOUT, construct_timeout=0.3)

        def program(force, me):
            if me == 1:
                force.barrier()

        error, elapsed = run_expecting(force, program,
                                       ForceDeadlockError)
        assert "barrier" in str(error)
        assert elapsed < PROMPT

    def test_deadline_error_carries_structured_fields(self):
        force = Force(2, timeout=JOIN_TIMEOUT, construct_timeout=0.3)

        def program(force, me):
            if me == 1:
                force.async_var("chan").consume()

        error, _ = run_expecting(force, program, ForceDeadlockError)
        assert error.timeout == pytest.approx(0.3)
        assert "asyncvar" in (error.construct or "")


class TestFaultTraceEvents:
    def test_injected_faults_appear_in_the_trace(self):
        force = Force(2, timeout=JOIN_TIMEOUT, trace=True,
                      inject=plan("delay@barrier.entry:seconds=0.01"))

        def program(force, me):
            force.barrier()

        force.run(program)
        faults = [e for e in force.trace_events()
                  if e.kind == "fault"]
        assert len(faults) == 1
        assert faults[0].op == "delay"
        assert faults[0].name == "barrier.entry"
