"""The chaos invariant, asserted over a seeded sweep of the corpus.

Scale the sweep with ``FORCE_CHAOS_RUNS`` (the CI smoke job and the
acceptance run use larger values); the default keeps tier-1 fast while
still covering every corpus program and fault kind.
"""

import os

import pytest

from repro.faults.chaos import (
    INVARIANT_OK,
    ChaosReport,
    chaos_sweep,
    render_report,
    run_one,
    sites_for,
    write_failure_artifacts,
)
from repro.faults.corpus import CORPUS
from repro.faults.plan import FaultPlan, random_plan

SEED = 20260806
RUNS = int(os.environ.get("FORCE_CHAOS_RUNS", "24"))
NPROC = 4
DEADLINE = 8.0
CONSTRUCT_TIMEOUT = 1.0


@pytest.fixture(scope="module")
def sweep_report() -> ChaosReport:
    return chaos_sweep(seed=SEED, runs=RUNS, nproc=NPROC,
                       deadline=DEADLINE,
                       construct_timeout=CONSTRUCT_TIMEOUT)


class TestChaosInvariant:
    def test_no_hangs_no_corruption(self, sweep_report):
        assert sweep_report.violations == [], \
            render_report(sweep_report)
        assert all(outcome.status in INVARIANT_OK
                   for outcome in sweep_report.outcomes)

    def test_every_run_finished_inside_its_budget(self, sweep_report):
        slow = [o for o in sweep_report.outcomes
                if o.elapsed > DEADLINE + 5.0]
        assert slow == []

    def test_faults_were_actually_injected(self, sweep_report):
        # A sweep that injects nothing tests nothing: site targeting
        # must keep the hit rate meaningful.
        assert sweep_report.faults_injected >= RUNS // 3

    def test_structured_errors_name_a_construct(self, sweep_report):
        for outcome in sweep_report.outcomes:
            if outcome.status in ("worker-died", "deadlock"):
                assert any(word in outcome.error for word in
                           ("barrier", "critical", "selfsched",
                            "askfor", "asyncvar")), outcome.error

    def test_outcomes_recorded_to_bench_results(self, sweep_report,
                                                record_result):
        record_result(
            "chaos_sweep",
            params={"seed": SEED, "runs": RUNS, "nproc": NPROC,
                    "deadline_s": DEADLINE,
                    "construct_timeout_s": CONSTRUCT_TIMEOUT},
            wall_s=round(sum(o.elapsed
                             for o in sweep_report.outcomes), 3),
            data={"counts": sweep_report.counts,
                  "faults_injected": sweep_report.faults_injected,
                  "violations": len(sweep_report.violations)})


class TestReplayDeterminism:
    def test_same_seed_derives_identical_plans(self):
        first = chaos_sweep(seed=SEED, runs=4, nproc=NPROC,
                            deadline=DEADLINE,
                            construct_timeout=CONSTRUCT_TIMEOUT)
        second = chaos_sweep(seed=SEED, runs=4, nproc=NPROC,
                             deadline=DEADLINE,
                             construct_timeout=CONSTRUCT_TIMEOUT)
        assert [o.plan.as_dict() for o in first.outcomes] == \
            [o.plan.as_dict() for o in second.outcomes]
        assert [o.program for o in first.outcomes] == \
            [o.program for o in second.outcomes]

    def test_proc_pinned_fault_replays_identically(self):
        # Barrier entries are per-process deterministic, so a pinned
        # plan must fire the same fault sequence on every replay.
        plan = FaultPlan.from_specs(
            ["raise@barrier.entry:proc=3,n=7"], seed=99)
        runs = [run_one(CORPUS["jacobi"], plan, nproc=NPROC,
                        deadline=DEADLINE,
                        construct_timeout=CONSTRUCT_TIMEOUT)
                for _ in range(2)]
        sequences = [[(r.kind, r.site, r.proc, r.occurrence)
                      for r in force.injected_faults()]
                     for _outcome, force in runs]
        assert sequences[0] == sequences[1] == \
            [("raise", "barrier.entry", 3, 7)]
        assert {outcome.status for outcome, _force in runs} == \
            {"injected-error"}


class TestSiteTargeting:
    def test_each_program_targets_only_reachable_sites(self):
        for entry in CORPUS.values():
            sites = sites_for(entry)
            assert sites, entry.name
            plan = random_plan(3, nproc=NPROC, sites=sites)
            assert all(spec.site in sites for spec in plan.faults)

    def test_askfor_program_targets_askfor_sites(self):
        assert "askfor.got" in sites_for(CORPUS["askfor_tree"])
        assert "asyncvar.produce" in sites_for(CORPUS["pipeline"])


class TestFailureArtifacts:
    def test_artifacts_round_trip_the_plan(self, tmp_path):
        plan = FaultPlan.from_specs(
            ["delay@barrier.entry:seconds=0.01"], seed=5)
        outcome, force = run_one(CORPUS["sections"], plan,
                                 nproc=2, deadline=DEADLINE,
                                 construct_timeout=CONSTRUCT_TIMEOUT)
        written = write_failure_artifacts(str(tmp_path), outcome,
                                          force)
        names = sorted(p.split("/")[-1] for p in written)
        assert names == ["sections-seed5.outcome.json",
                         "sections-seed5.plan.json",
                         "sections-seed5.trace.json"]
        replay = FaultPlan.from_json(
            (tmp_path / "sections-seed5.plan.json").read_text(
                encoding="utf-8"))
        assert replay == plan
