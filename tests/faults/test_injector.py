"""The injector: exact occurrence counting, deterministic firing."""

import threading

import pytest

from repro.faults.injector import (
    FaultInjector,
    InjectedDeath,
    InjectedFault,
)
from repro.faults.plan import FaultPlan, FaultSpec


def injector(*specs: FaultSpec, **kwargs) -> FaultInjector:
    return FaultInjector(FaultPlan(seed=0, faults=list(specs)), **kwargs)


class TestOccurrenceCounting:
    def test_fires_exactly_at_the_nth_hit(self):
        inj = injector(FaultSpec("raise", "critical.hold",
                                 occurrence=3))
        inj.fire("critical.hold", "sum", me=1)
        inj.fire("critical.hold", "sum", me=2)
        with pytest.raises(InjectedFault):
            inj.fire("critical.hold", "sum", me=1)

    def test_fires_at_most_once(self):
        inj = injector(FaultSpec("raise", "critical.hold"))
        with pytest.raises(InjectedFault):
            inj.fire("critical.hold", "sum", me=1)
        for _ in range(5):
            inj.fire("critical.hold", "sum", me=1)   # quiet now
        assert len(inj.injected) == 1

    def test_non_matching_sites_do_not_count(self):
        inj = injector(FaultSpec("raise", "critical.hold",
                                 occurrence=2))
        inj.fire("critical.acquire", "sum", me=1)
        inj.fire("barrier.entry", "barrier", me=1)
        inj.fire("critical.hold", "sum", me=1)       # hit 1 of 2
        assert inj.injected == []

    def test_proc_filter_counts_only_that_process(self):
        inj = injector(FaultSpec("raise", "selfsched.chunk", proc=2,
                                 occurrence=2))
        inj.fire("selfsched.chunk", "loop", me=1)
        inj.fire("selfsched.chunk", "loop", me=2)    # proc-2 hit 1
        inj.fire("selfsched.chunk", "loop", me=3)
        with pytest.raises(InjectedFault) as info:
            inj.fire("selfsched.chunk", "loop", me=2)
        assert info.value.me == 2

    def test_name_filter(self):
        inj = injector(FaultSpec("raise", "critical.hold", name="hot"))
        inj.fire("critical.hold", "cold", me=1)
        with pytest.raises(InjectedFault):
            inj.fire("critical.hold", "hot", me=1)


class TestFaultKinds:
    def test_die_raises_base_exception(self):
        inj = injector(FaultSpec("die", "askfor.got"))
        with pytest.raises(InjectedDeath):
            inj.fire("askfor.got", "jobs", me=1)
        # not catchable by `except Exception` in user programs
        assert not issubclass(InjectedDeath, Exception)

    def test_delay_sleeps_for_the_spec_duration(self):
        naps = []
        inj = injector(FaultSpec("delay", "critical.hold",
                                 seconds=0.123),
                       sleep=naps.append)
        inj.fire("critical.hold", "sum", me=1)
        assert naps == [0.123]

    def test_lost_wakeup_swallows_exactly_one_notify(self):
        inj = injector(FaultSpec("lost-wakeup", "asyncvar.produce",
                                 occurrence=2))
        assert inj.swallow_notify("asyncvar.produce", "chan", me=1) \
            is False
        assert inj.swallow_notify("asyncvar.produce", "chan", me=1) \
            is True
        assert inj.swallow_notify("asyncvar.produce", "chan", me=1) \
            is False

    def test_fire_and_swallow_count_independently(self):
        # A raise spec and a lost-wakeup spec at the same site must
        # each see its own consistent occurrence stream.
        inj = injector(
            FaultSpec("raise", "askfor.put", occurrence=2),
            FaultSpec("lost-wakeup", "askfor.put", occurrence=1))
        assert inj.swallow_notify("askfor.put", "jobs", me=1) is True
        inj.fire("askfor.put", "jobs", me=1)         # raise hit 1
        with pytest.raises(InjectedFault):
            inj.fire("askfor.put", "jobs", me=1)     # raise hit 2


class TestProcessResolution:
    def test_me_resolved_from_force_thread_name(self):
        inj = injector(FaultSpec("raise", "barrier.entry", proc=7))
        result = {}

        def worker():
            try:
                inj.fire("barrier.entry", "barrier")
                result["fired"] = False
            except InjectedFault as exc:
                result["fired"] = True
                result["me"] = exc.me

        thread = threading.Thread(target=worker, name="force-7")
        thread.start()
        thread.join()
        assert result == {"fired": True, "me": 7}


class TestRecords:
    def test_every_firing_is_recorded_in_order(self):
        inj = injector(FaultSpec("delay", "critical.hold",
                                 seconds=0.0),
                       FaultSpec("lost-wakeup", "askfor.put"),
                       sleep=lambda _s: None)
        inj.fire("critical.hold", "sum", me=1)
        inj.swallow_notify("askfor.put", "jobs", me=2)
        assert [(r.kind, r.site, r.proc) for r in inj.injected] == \
            [("delay", "critical.hold", 1), ("lost-wakeup",
                                             "askfor.put", 2)]
        assert "critical.hold" in inj.report()

    def test_recorded_as_trace_events(self):
        from repro.trace.collector import TraceCollector

        tracer = TraceCollector()
        tracer.register_lane("force-1")
        inj = injector(FaultSpec("delay", "critical.hold",
                                 seconds=0.0),
                       tracer=tracer, sleep=lambda _s: None)
        inj.fire("critical.hold", "sum", me=1)
        faults = [e for e in tracer.events() if e.kind == "fault"]
        assert len(faults) == 1
        assert faults[0].op == "delay"
        tracer.release_lane()
