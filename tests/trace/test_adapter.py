"""Simulator trace lines -> unified model events."""

from repro.core import HEP, SEQUENT_BALANCE, force_compile_and_run, \
    programs
from repro.trace.adapter import event_from_sim_line, events_from_sim_trace


class TestLockCategorisation:
    def test_barrier_gate_locks(self):
        for lock in ("BARWIN", "BARWOT", "BARWIN(2)"):
            event = event_from_sim_line(5, "p-1", f"acquired {lock}")
            assert event.kind == "barrier"
            assert event.op == "acquire"
            assert event.name == lock

    def test_selfsched_index_locks(self):
        event = event_from_sim_line(5, "p-1", "waiting on ZZL100")
        assert event.kind == "selfsched"
        assert event.op == "wait"

    def test_other_locks_are_critical_sections(self):
        event = event_from_sim_line(5, "p-1", "released SUMLCK")
        assert event.kind == "critical"
        assert event.op == "release"
        assert event.name == "SUMLCK"

    def test_granted_verb(self):
        assert event_from_sim_line(1, "p", "granted L").op == "grant"


class TestBlockCategorisation:
    def test_full_empty_cells_are_asyncvar(self):
        event = event_from_sim_line(9, "p-2", "block ('fe-full', 'X')")
        assert event.kind == "asyncvar"
        assert event.op == "block"

    def test_queue_keys_are_askfor(self):
        event = event_from_sim_line(9, "p-2", "block ('queue', 'WORK')")
        assert event.kind == "askfor"

    def test_other_keys_are_sched(self):
        event = event_from_sim_line(9, "p-2", "block ('join', 3)")
        assert event.kind == "sched"


class TestSchedEvents:
    def test_spawn(self):
        event = event_from_sim_line(0, "driver", "spawn summer-1")
        assert event.kind == "sched"
        assert event.op == "spawn"
        assert event.name == "summer-1"

    def test_lifecycle_words(self):
        for word in ("spawned", "woken", "done"):
            assert event_from_sim_line(1, "p", word).op == word

    def test_unrecognised_text_still_becomes_an_event(self):
        event = event_from_sim_line(1, "p", "something odd")
        assert event.kind == "sched"
        assert event.detail == "something odd"


class TestDetailPassthrough:
    def test_original_line_preserved_verbatim(self):
        what = "waiting on BARWIN"
        assert event_from_sim_line(3, "p", what).detail == what
        assert event_from_sim_line(3, "p", what).text_line() == what

    def test_real_run_adapts_every_line(self):
        source = programs.render("sum_critical", n=10)
        result = force_compile_and_run(source, SEQUENT_BALANCE, nproc=3,
                                       trace=True)
        events = events_from_sim_trace(result.trace)
        assert len(events) == len(result.trace)
        kinds = {e.kind for e in events}
        assert "barrier" in kinds
        assert "critical" in kinds
        # order and content preserved
        for (when, who, what), event in zip(result.trace, events):
            assert event.ts == when
            assert event.proc == who
            assert event.detail == what

    def test_askfor_waits_categorised(self):
        source = programs.render("askfor_tree", depth=3, qsize=64, work=5)
        result = force_compile_and_run(source, SEQUENT_BALANCE, nproc=2,
                                       trace=True)
        kinds = {e.kind for e in result.trace_events()}
        assert "askfor" in kinds

    def test_hardware_full_empty_waits_are_asyncvar(self):
        # Only the HEP has hardware full/empty cells; the two-lock
        # machines' async traffic shows up as lock (critical) events,
        # exactly as the paper describes the protocol.
        source = programs.render("pipeline", items=5)
        result = force_compile_and_run(source, HEP, nproc=2, trace=True)
        kinds = {e.kind for e in result.trace_events()}
        assert "asyncvar" in kinds
