"""Exporters: Chrome trace JSON, JSONL, text; file IO; validation."""

import json

import pytest

from repro._util.errors import ForceError
from repro.trace.events import TraceEvent
from repro.trace.export import (
    from_chrome,
    from_jsonl,
    infer_trace_format,
    load_trace_file,
    to_chrome,
    to_jsonl,
    to_text,
    validate_chrome_trace,
    write_trace_file,
)

NATIVE_EVENTS = [
    TraceEvent(ts=0.001, proc="force-1", kind="barrier", name="barrier",
               op="wait", phase="X", dur=0.0005),
    TraceEvent(ts=0.002, proc="force-2", kind="critical", name="sum",
               op="hold", phase="X", dur=0.0001),
    TraceEvent(ts=0.003, proc="force-1", kind="selfsched", name="L100",
               op="chunk", args={"index": 3}),
    TraceEvent(ts=0.004, proc="force-2", kind="sched", name="force-2",
               op="end"),
]

SIM_EVENTS = [
    TraceEvent(ts=10, proc="summer-1", kind="barrier", name="BARWIN",
               op="acquire", detail="acquired BARWIN"),
    TraceEvent(ts=25, proc="summer-2", kind="critical", name="ZZSLCK",
               op="wait", detail="waiting on ZZSLCK"),
]


class TestChrome:
    def test_one_lane_per_process(self):
        doc = to_chrome(NATIVE_EVENTS)
        names = [r["args"]["name"] for r in doc["traceEvents"]
                 if r["ph"] == "M" and r["name"] == "thread_name"]
        assert sorted(names) == ["force-1", "force-2"]

    def test_native_timestamps_scaled_to_microseconds(self):
        doc = to_chrome(NATIVE_EVENTS)
        assert doc["otherData"]["ts_scale"] == 1e6
        spans = [r for r in doc["traceEvents"] if r.get("ph") == "X"]
        assert spans[0]["ts"] == pytest.approx(1000.0)
        assert spans[0]["dur"] == pytest.approx(500.0)

    def test_sim_cycles_pass_through_unscaled(self):
        doc = to_chrome(SIM_EVENTS)
        assert doc["otherData"]["ts_scale"] == 1.0
        first = next(r for r in doc["traceEvents"] if r.get("ph") == "i")
        assert first["ts"] == 10

    def test_meta_lands_in_other_data(self):
        doc = to_chrome(NATIVE_EVENTS, meta={"nproc": 2})
        assert doc["otherData"]["nproc"] == 2

    def test_round_trip_preserves_model(self):
        restored = from_chrome(to_chrome(NATIVE_EVENTS))
        assert len(restored) == len(NATIVE_EVENTS)
        for original, back in zip(NATIVE_EVENTS, restored):
            assert back.proc == original.proc
            assert back.kind == original.kind
            assert back.name == original.name
            assert back.op == original.op
            assert back.phase == original.phase
            assert back.ts == pytest.approx(original.ts)
            assert back.dur == pytest.approx(original.dur)

    def test_round_trip_keeps_sim_cycles_integral(self):
        restored = from_chrome(to_chrome(SIM_EVENTS))
        assert [e.ts for e in restored] == [10, 25]
        assert all(isinstance(e.ts, int) for e in restored)

    def test_named_like_a_kind_survives_round_trip(self):
        # A critical section literally named "barrier" must not be
        # mistaken for an unnamed event exported under its kind.
        tricky = [TraceEvent(ts=0.1, proc="p", kind="critical",
                             name="barrier", op="hold")]
        assert from_chrome(to_chrome(tricky))[0].name == "barrier"

    def test_not_a_trace_document(self):
        with pytest.raises(ForceError):
            from_chrome({"foo": 1})


class TestValidator:
    def test_valid_documents_pass(self):
        assert validate_chrome_trace(to_chrome(NATIVE_EVENTS)) == []
        assert validate_chrome_trace(to_chrome(SIM_EVENTS)) == []

    def test_top_level_must_be_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_trace_events_must_be_list(self):
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_unknown_phase_reported(self):
        doc = to_chrome(NATIVE_EVENTS)
        doc["traceEvents"][-1]["ph"] = "Q"
        assert any("unknown phase" in e
                   for e in validate_chrome_trace(doc))

    def test_negative_ts_reported(self):
        doc = to_chrome(NATIVE_EVENTS)
        doc["traceEvents"][-1]["ts"] = -5
        assert any("negative ts" in e
                   for e in validate_chrome_trace(doc))

    def test_complete_event_needs_duration(self):
        doc = to_chrome(NATIVE_EVENTS)
        span = next(r for r in doc["traceEvents"] if r.get("ph") == "X")
        del span["dur"]
        assert any("dur" in e for e in validate_chrome_trace(doc))

    def test_unnamed_lane_reported(self):
        doc = to_chrome(NATIVE_EVENTS)
        doc["traceEvents"] = [r for r in doc["traceEvents"]
                              if r.get("name") != "thread_name"]
        assert any("thread_name" in e
                   for e in validate_chrome_trace(doc))

    def test_empty_trace_reported(self):
        assert any("no events" in e
                   for e in validate_chrome_trace({"traceEvents": []}))


class TestJsonl:
    def test_round_trip(self):
        restored = from_jsonl(to_jsonl(NATIVE_EVENTS, meta={"x": 1}))
        assert [e.as_dict() for e in restored] == \
            [e.as_dict() for e in NATIVE_EVENTS]

    def test_header_line_is_meta(self):
        first = to_jsonl(NATIVE_EVENTS, meta={"nproc": 4}).splitlines()[0]
        assert json.loads(first) == {"meta": {"nproc": 4}}

    def test_blank_lines_ignored(self):
        text = to_jsonl(SIM_EVENTS) + "\n\n"
        assert len(from_jsonl(text)) == 2


class TestText:
    def test_cycles_render_the_classic_stamp(self):
        text = to_text(SIM_EVENTS)
        assert "t=        10 | summer-1       | acquired BARWIN" in text

    def test_seconds_render_in_milliseconds(self):
        text = to_text(NATIVE_EVENTS)
        assert "ms |" in text
        assert "force-1" in text

    def test_truncation_marker(self):
        text = to_text(SIM_EVENTS, max_events=1)
        assert "... 1 more events" in text

    def test_only_filter(self):
        text = to_text(SIM_EVENTS, only=("waiting",))
        assert "waiting on ZZSLCK" in text
        assert "acquired" not in text

    def test_empty(self):
        assert "no trace events" in to_text([])


class TestFiles:
    def test_format_inference(self):
        assert infer_trace_format("out.json") == "chrome"
        assert infer_trace_format("out.jsonl") == "jsonl"
        assert infer_trace_format("out.txt") == "text"
        assert infer_trace_format("trace") == "chrome"

    def test_write_and_load_chrome(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert write_trace_file(path, NATIVE_EVENTS) == "chrome"
        restored = load_trace_file(path)
        assert [e.proc for e in restored] == \
            [e.proc for e in NATIVE_EVENTS]

    def test_write_and_load_jsonl(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert write_trace_file(path, SIM_EVENTS) == "jsonl"
        assert len(load_trace_file(path)) == 2

    def test_explicit_format_beats_extension(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert write_trace_file(path, SIM_EVENTS,
                                format="jsonl") == "jsonl"
        assert len(load_trace_file(path)) == 2

    def test_text_format_writes_the_timeline(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        write_trace_file(path, SIM_EVENTS)
        content = (tmp_path / "trace.txt").read_text(encoding="utf-8")
        assert "acquired BARWIN" in content

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ForceError):
            write_trace_file(str(tmp_path / "t"), SIM_EVENTS,
                             format="xml")

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all {", encoding="utf-8")
        with pytest.raises(ForceError):
            load_trace_file(str(path))

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ForceError):
            load_trace_file(str(path))
