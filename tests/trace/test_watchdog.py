"""Stall watchdog: quiet-period detection and stall reports."""

import time

import pytest

from repro.runtime import Force
from repro._util.errors import ForceError
from repro.trace.collector import TraceCollector
from repro.trace.watchdog import StallWatchdog, render_stall_report


class TestRenderStallReport:
    def test_names_each_parked_process(self):
        collector = TraceCollector()
        collector.register_lane("force-1")
        collector.mark_parked("barrier", "barrier")
        report = render_stall_report(collector, quiet_for=1.5)
        assert "--- stall watchdog ---" in report
        assert "no trace events for 1.50s" in report
        assert "force-1" in report
        assert "parked on barrier 'barrier'" in report

    def test_nothing_parked_hints_at_compute_loop(self):
        report = render_stall_report(TraceCollector())
        assert "no process is marked parked" in report


class TestStallWatchdog:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            StallWatchdog(TraceCollector(), 0)

    def test_reports_a_stall_once(self):
        collector = TraceCollector()
        collector.register_lane("force-1")
        collector.record("sched", "force-1", "start")
        collector.mark_parked("asyncvar", "chan")
        reports = []
        watchdog = StallWatchdog(collector, 0.1, sink=reports.append)
        watchdog.start()
        try:
            deadline = time.monotonic() + 2.0
            while not reports and time.monotonic() < deadline:
                time.sleep(0.01)
            # same stall: no second report however long we wait
            time.sleep(0.3)
        finally:
            watchdog.stop()
        assert len(reports) == 1
        assert "asyncvar 'chan'" in reports[0]
        assert watchdog.stall_count == 1

    def test_fresh_events_rearm_the_watchdog(self):
        collector = TraceCollector()
        collector.register_lane("force-1")
        collector.mark_parked("barrier", "barrier")
        reports = []
        watchdog = StallWatchdog(collector, 0.1, sink=reports.append)
        watchdog.start()
        try:
            deadline = time.monotonic() + 2.0
            while not reports and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(reports) == 1
            collector.record("sched", op="progress")   # program moved
            deadline = time.monotonic() + 2.0
            while len(reports) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            watchdog.stop()
        assert len(reports) == 2    # a distinct second stall

    def test_quiet_without_parked_processes_stays_silent(self):
        collector = TraceCollector()
        reports = []
        watchdog = StallWatchdog(collector, 0.05, sink=reports.append)
        watchdog.start()
        time.sleep(0.3)
        watchdog.stop()
        assert reports == []


class TestHungForce:
    def test_dump_names_the_construct_each_process_parks_on(self):
        reports = []
        force = Force(nproc=2, trace=True, timeout=1.5,
                      watchdog_interval=0.25,
                      watchdog_sink=reports.append)

        def program(force, me):
            if me == 1:
                force.barrier()                     # partner never comes
            else:
                force.async_var("chan").consume()   # never produced

        with pytest.raises(ForceError) as info:
            force.run(program)
        # join-deadline diagnostics driven by the parked map
        message = str(info.value)
        assert "did not terminate" in message
        assert "parked on" in message
        # the watchdog fired before the deadline and named both
        assert reports, "watchdog never fired on a hung force"
        dump = "\n".join(reports)
        assert "force-1" in dump and "force-2" in dump
        assert "barrier" in dump
        assert "asyncvar 'chan'" in dump

    def test_poisoned_stragglers_unwind_after_timeout(self):
        import threading

        # Only *this* force's threads count: earlier tests may leak
        # uncancellable daemon sleepers that are still winding down.
        before = set(threading.enumerate())
        force = Force(nproc=2, trace=True, timeout=0.5)

        def program(force, me):
            if me == 1:
                force.barrier()

        with pytest.raises(ForceError):
            force.run(program)

        def mine():
            return [t for t in threading.enumerate()
                    if t.name.startswith("force-") and t not in before]

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not mine():
                break
            time.sleep(0.01)
        assert not mine(), \
            "stragglers still parked after the force was poisoned"
