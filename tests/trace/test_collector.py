"""TraceCollector: ring buffers, lanes, drops, parked state."""

import threading

import pytest

from repro.trace.collector import TraceCollector, _Ring
from repro.trace.events import TraceEvent


def _event(ts, proc="p", kind="sched"):
    return TraceEvent(ts=ts, proc=proc, kind=kind)


class TestRing:
    def test_keeps_everything_under_capacity(self):
        ring = _Ring(8)
        for i in range(5):
            ring.append(_event(i))
        assert [e.ts for e in ring.snapshot()] == [0, 1, 2, 3, 4]
        assert ring.dropped == 0

    def test_overflow_drops_oldest_and_counts(self):
        ring = _Ring(4)
        for i in range(10):
            ring.append(_event(i))
        assert [e.ts for e in ring.snapshot()] == [6, 7, 8, 9]
        assert ring.dropped == 6

    def test_exactly_full_is_not_a_drop(self):
        ring = _Ring(3)
        for i in range(3):
            ring.append(_event(i))
        assert ring.dropped == 0
        assert len(ring.snapshot()) == 3


class TestCollector:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceCollector(0)

    def test_records_fall_into_registered_lane(self):
        collector = TraceCollector()
        collector.register_lane("force-1")
        collector.record("barrier", "b", "wait")
        events = collector.events()
        assert len(events) == 1
        assert events[0].proc == "force-1"
        assert collector.lanes == ["force-1"]

    def test_unregistered_thread_uses_main_lane(self):
        collector = TraceCollector()
        collector.record("sched", op="tick")
        assert collector.lanes == ["main"]
        assert collector.events()[0].proc == "main"

    def test_events_merge_lanes_in_time_order(self):
        collector = TraceCollector()
        done = []

        def worker(lane, times):
            collector.register_lane(lane)
            for ts in times:
                collector.record("sched", op="tick", ts=ts)
            collector.release_lane()
            done.append(lane)

        a = threading.Thread(target=worker, args=("a", [3.0, 1.0]))
        b = threading.Thread(target=worker, args=("b", [2.0]))
        a.start(), b.start(), a.join(), b.join()
        assert sorted(done) == ["a", "b"]
        assert [(e.ts, e.proc) for e in collector.events()] == \
            [(1.0, "a"), (2.0, "b"), (3.0, "a")]

    def test_drop_counting_across_collector(self):
        collector = TraceCollector(capacity=4)
        collector.register_lane("one")
        for i in range(9):
            collector.record("sched", op="tick", ts=float(i))
        assert collector.dropped == 5
        assert len(collector.events()) == 4

    def test_record_advances_last_event_at(self):
        collector = TraceCollector()
        before = collector.last_event_at
        collector.record("sched", op="tick")
        assert collector.last_event_at >= before

    def test_explicit_ts_and_args_are_preserved(self):
        collector = TraceCollector()
        collector.record("selfsched", "L100", "chunk", ts=1.5, index=7)
        event = collector.events()[0]
        assert event.ts == 1.5
        assert event.args == {"index": 7}


class TestParkedState:
    def test_mark_and_clear(self):
        collector = TraceCollector()
        collector.register_lane("force-1")
        collector.mark_parked("barrier", "barrier")
        assert collector.parked() == {"force-1": ("barrier", "barrier")}
        collector.clear_parked()
        assert collector.parked() == {}

    def test_release_lane_clears_parked(self):
        collector = TraceCollector()
        collector.register_lane("force-2")
        collector.mark_parked("asyncvar", "chan")
        collector.release_lane()
        assert collector.parked() == {}

    def test_parked_is_a_snapshot(self):
        collector = TraceCollector()
        collector.register_lane("force-1")
        collector.mark_parked("critical", "sum")
        snap = collector.parked()
        collector.clear_parked()
        assert snap == {"force-1": ("critical", "sum")}
