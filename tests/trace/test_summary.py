"""Per-construct trace summaries (`force trace`)."""

import json

from repro.core import SEQUENT_BALANCE, force_compile_and_run, programs
from repro.runtime import Force
from repro.trace.events import TraceEvent
from repro.trace.summary import render_trace_summary, summarize_events


def _native_events():
    force = Force(nproc=2, trace=True, timeout=30)

    def program(force, me):
        force.barrier()
        with force.critical("sum"):
            pass
        for _i in force.selfsched_range("L100", 1, 6):
            pass

    force.run(program)
    return force.trace_events()


class TestSummarizeNative:
    def test_sections_from_a_native_run(self):
        summary = summarize_events(_native_events())
        assert summary["processes"] == ["force-1", "force-2"]
        assert summary["barriers"]["episodes"] >= 1
        assert summary["criticals"]["sum"]["acquisitions"] == 2
        assert summary["selfsched"]["L100"]["chunks"] == 6
        per_process = summary["selfsched"]["L100"]["per_process"]
        assert sum(per_process.values()) == 6

    def test_wait_stats_use_measured_spans(self):
        summary = summarize_events(_native_events())
        wait = summary["barriers"]["wait"]
        assert wait["count"] == summary["barriers"]["waits"]
        assert wait["min_s"] >= 0.0


class TestSummarizeSim:
    def test_instant_only_traces_still_count(self):
        source = programs.render("sum_critical", n=10)
        result = force_compile_and_run(source, SEQUENT_BALANCE, nproc=3,
                                       trace=True)
        summary = summarize_events(result.trace_events())
        assert summary["events"] == len(result.trace)
        # barrier gate-lock traffic shows up as barrier activity
        assert summary["barriers"]["waits"] >= 0
        assert summary["criticals"]     # the sum lock


class TestSummarizeEdgeCases:
    def test_empty_stream(self):
        summary = summarize_events([])
        assert summary["events"] == 0
        assert summary["processes"] == []
        # empty WaitStats report zeros, never the +inf sentinel
        assert summary["barriers"]["wait"]["min_s"] == 0.0

    def test_askfor_and_asyncvar_sections(self):
        events = [
            TraceEvent(ts=0.1, proc="p1", kind="askfor", name="pool",
                       op="put"),
            TraceEvent(ts=0.2, proc="p2", kind="askfor", name="pool",
                       op="got"),
            TraceEvent(ts=0.3, proc="p2", kind="asyncvar", name="chan",
                       op="consume", phase="X", dur=0.05),
        ]
        summary = summarize_events(events)
        assert summary["askfor"]["pool"] == \
            {"put": 1, "got": 1, "wait": summary["askfor"]["pool"]["wait"]}
        chan = summary["asyncvar"]["chan"]
        assert chan["blocked"] == 1
        assert chan["by_op"] == {"consume": 1}
        assert chan["wait"]["total_s"] == 0.05


class TestRender:
    def test_text_rendering(self):
        text = render_trace_summary(summarize_events(_native_events()))
        assert "processes: 2" in text
        assert "--- barriers ---" in text
        assert "--- critical sections ---" in text
        assert "--- selfscheduled loops ---" in text

    def test_json_rendering_is_valid_json(self):
        text = render_trace_summary(summarize_events(_native_events()),
                                    as_json=True)
        doc = json.loads(text)
        assert doc["processes"] == ["force-1", "force-2"]
