"""End-to-end tracing of the native runtime."""

import time

import pytest

from repro.runtime import Force
from repro._util.errors import ForceError
from repro.trace.export import to_chrome, validate_chrome_trace


def _full_program(force, me):
    force.barrier()
    with force.critical("sum"):
        pass
    for _i in force.selfsched_range("L100", 1, 6):
        pass
    pool = force.askfor("pool", [1, 2, 3, 4])
    for _item in pool:
        pass
    chan = force.async_var("chan")
    force.barrier()
    if me == 2:
        assert chan.consume() == 99
    elif me == 1:
        time.sleep(0.05)          # let the consumer block first
        chan.produce(99)
    force.barrier()


class TestNativeTrace:
    def test_all_construct_kinds_recorded(self):
        force = Force(nproc=2, trace=True, timeout=30)
        force.run(_full_program)
        events = force.trace_events()
        kinds = {e.kind for e in events}
        for kind in ("barrier", "critical", "selfsched", "askfor",
                     "asyncvar", "sched"):
            assert kind in kinds, f"missing {kind} events"

    def test_one_lane_per_force_process(self):
        force = Force(nproc=3, trace=True, timeout=30)

        def program(force, me):
            force.barrier()

        force.run(program)
        lanes = {e.proc for e in force.trace_events()}
        assert lanes == {"force-1", "force-2", "force-3"}

    def test_chrome_export_of_a_native_run_validates(self):
        force = Force(nproc=2, trace=True, timeout=30)
        force.run(_full_program)
        doc = to_chrome(force.trace_events(), meta={"nproc": 2})
        assert validate_chrome_trace(doc) == []

    def test_measured_waits_are_spans(self):
        force = Force(nproc=2, trace=True, timeout=30)
        force.run(_full_program)
        barrier_waits = [e for e in force.trace_events()
                         if e.kind == "barrier" and e.op == "wait"]
        assert barrier_waits
        assert all(e.phase == "X" and e.dur >= 0 for e in barrier_waits)

    def test_selfsched_chunks_carry_the_index(self):
        force = Force(nproc=2, trace=True, timeout=30)

        def program(force, me):
            for _i in force.selfsched_range("L200", 1, 8):
                pass

        force.run(program)
        chunks = [e for e in force.trace_events()
                  if e.kind == "selfsched" and e.op == "chunk"]
        assert sorted(e.args["index"] for e in chunks) == list(range(1, 9))

    def test_trace_off_by_default(self):
        force = Force(nproc=1)
        assert not force.trace_enabled
        assert force.trace_collector is None
        with pytest.raises(ForceError):
            force.trace_events()

    def test_bounded_collection_drops_not_grows(self):
        force = Force(nproc=2, trace=True, trace_capacity=16, timeout=30)

        def program(force, me):
            for _sweep in range(20):
                with force.critical("busy"):
                    pass

        force.run(program)
        assert len(force.trace_events()) <= 2 * 16
        assert force.trace_collector.dropped > 0


class TestOverhead:
    def test_disabled_tracing_costs_nothing_measurable(self):
        # The off path pays one `is None` test per interception point;
        # a traced run does strictly more work, so the disabled run
        # must not be slower (generous margin for scheduler noise).
        def program(force, me):
            for _ in range(300):
                with force.critical("hot"):
                    pass

        def measure(**kwargs):
            force = Force(nproc=2, timeout=60, **kwargs)
            best = float("inf")
            for _round in range(3):
                start = time.perf_counter()
                force.run(program)
                best = min(best, time.perf_counter() - start)
            return best

        disabled = measure()
        enabled = measure(trace=True)
        assert disabled <= enabled * 1.5 + 0.05, \
            (f"tracing disabled ({disabled:.4f}s) measurably slower "
             f"than enabled ({enabled:.4f}s)")
