"""End-to-end portability tests: the paper's central claim (E1).

Every sample program, translated and simulated on every machine, must
produce identical program output — while the generated code, the
sharing mechanism and the performance profile differ per machine.
"""

import pytest

from repro.core import programs
from repro.machines import (
    ALLIANT_FX8,
    CRAY_2,
    ENCORE_MULTIMAX,
    HEP,
    MACHINES,
    SEQUENT_BALANCE,
)
from repro.pipeline import force_compile_and_run, force_run, force_translate
from repro.sim import SimulationError

ALL_MACHINES = list(MACHINES.values())


def run(name, machine, nproc=3, **params):
    source = programs.render(name, **params)
    return force_compile_and_run(source, machine, nproc)


class TestExpectedOutputs:
    """Correctness of each sample on one reference machine."""

    def test_sum_critical(self):
        result = run("sum_critical", SEQUENT_BALANCE, n=50)
        assert result.output == ["TOTAL 1275"]

    def test_jacobi_converges(self):
        result = run("jacobi", SEQUENT_BALANCE)
        assert len(result.output) == 1
        assert result.output[0].startswith("PROBE")
        near_edge = int(result.output[0].split()[1])
        assert 0 < near_edge < 100_000

    def test_dot_product(self):
        result = run("dot_product", SEQUENT_BALANCE, n=40)
        # sum(2i) for i=1..40 = 1640
        assert result.output == ["DOT 1640"]

    def test_pipeline(self):
        result = run("pipeline", SEQUENT_BALANCE, items=8)
        # sum of squares 1..8 = 204
        assert result.output == ["SINK 204"]

    def test_sections(self):
        result = run("sections", SEQUENT_BALANCE)
        assert result.output == ["100"]

    def test_askfor_tree(self):
        result = run("askfor_tree", SEQUENT_BALANCE, depth=5)
        # A unit of weight w spawns two of w-1: nodes = 2^5 - 1 = 31.
        assert result.output == ["NODES 31"]

    def test_matrix_scale(self):
        result = run("matrix_scale", SEQUENT_BALANCE)
        # 2*(1+1) + 2*(4+5) + 2*(2+1) = 4 + 18 + 6 = 28
        assert result.output == ["CHECK 28"]

    def test_subroutine_call(self):
        result = run("subroutine_call", SEQUENT_BALANCE)
        assert result.output == ["ACC 1055"]


class TestPortabilityMatrix:
    """Same source, same output, on all six machines (E1)."""

    @pytest.mark.parametrize("name", ["sum_critical", "dot_product",
                                      "pipeline", "sections",
                                      "askfor_tree", "matrix_scale",
                                      "subroutine_call", "jacobi"])
    def test_output_identical_across_machines(self, name):
        reference = None
        for machine in ALL_MACHINES:
            result = run(name, machine)
            if reference is None:
                reference = result.output
            assert result.output == reference, machine.name

    @pytest.mark.parametrize("nproc", [1, 2, 5, 8])
    def test_output_independent_of_process_count(self, nproc):
        # §1: "independence of the number of processes executing".
        result = run("sum_critical", SEQUENT_BALANCE, nproc=nproc)
        assert result.output == ["TOTAL 1275"]

    def test_generated_code_differs_across_machines(self):
        source = programs.render("sum_critical")
        texts = {m.key: force_translate(source, m).fortran
                 for m in ALL_MACHINES}
        # Encore and Alliant differ only in their page model (a runtime
        # property), so their generated code coincides; every other
        # pair differs.
        assert texts["encore-multimax"] == texts["alliant-fx8"]
        distinct = set(texts.values())
        assert len(distinct) == len(ALL_MACHINES) - 1
        assert "SPINLK" in texts["sequent-balance"]
        assert "SYSLCK" in texts["cray-2"]
        assert "CMBLCK" in texts["flex32"]
        assert "HEPLKW" in texts["hep"]

    def test_makespans_differ_across_machines(self):
        spans = {m.key: run("sum_critical", m).makespan
                 for m in ALL_MACHINES}
        assert len(set(spans.values())) > 1
        # The HEP's cheap process creation makes it fastest here.
        assert spans["hep"] == min(spans.values())


class TestDeterminism:
    def test_same_run_twice_is_identical(self):
        first = run("sum_critical", ENCORE_MULTIMAX, nproc=4)
        second = run("sum_critical", ENCORE_MULTIMAX, nproc=4)
        assert first.output == second.output
        assert first.makespan == second.makespan
        assert first.stats.lock_acquisitions == \
            second.stats.lock_acquisitions


class TestSharingMechanisms:
    def test_sequent_linker_commands(self):
        result = run("sum_critical", SEQUENT_BALANCE)
        assert result.linker_commands
        assert any("FRCENV" in c for c in result.linker_commands)

    def test_compile_time_directives(self):
        source = programs.render("sum_critical")
        translation = force_translate(source, HEP)
        assert "FRCENV" in translation.shared_directives
        assert not translation.has_startup_unit

    def test_encore_memory_plan_padded(self):
        result = run("jacobi", ENCORE_MULTIMAX)
        plan = result.memory_plan
        assert plan is not None
        page = ENCORE_MULTIMAX.page_size
        assert plan.shared_start % page == 0
        assert plan.shared_end % page == 0

    def test_alliant_plan_page_aligned_start(self):
        result = run("jacobi", ALLIANT_FX8)
        plan = result.memory_plan
        assert plan is not None
        assert plan.shared_start % ALLIANT_FX8.page_size == 0

    def test_registry_contains_generated_blocks(self):
        result = run("sum_critical", ENCORE_MULTIMAX)
        assert result.registry.is_shared("FRCENV")
        assert result.registry.is_shared("ZZKLCK")


class TestCrossMachineErrors:
    def test_wrong_machine_binary_rejected(self):
        # Translate for the Sequent (spinlocks), run on the Cray
        # (syscall locks): the runtime must refuse the lock primitive.
        source = programs.render("sum_critical")
        translation = force_translate(source, SEQUENT_BALANCE)
        hacked = translation
        hacked.machine = CRAY_2
        with pytest.raises(SimulationError, match="not available"):
            force_run(hacked, nproc=2)


class TestStatistics:
    def test_lock_stats_collected(self):
        result = run("sum_critical", SEQUENT_BALANCE, nproc=4)
        assert result.stats.lock_acquisitions > 0

    def test_spin_machine_records_spin(self):
        result = run("sum_critical", SEQUENT_BALANCE, nproc=6)
        assert result.stats.spin_cycles > 0

    def test_syscall_machine_records_switches(self):
        result = run("sum_critical", CRAY_2, nproc=4)
        assert result.stats.context_switches > 0
        assert result.stats.spin_cycles == 0

    def test_utilization_sane(self):
        result = run("jacobi", SEQUENT_BALANCE, nproc=4)
        assert 0.0 < result.stats.utilization <= 1.0
