"""Stress tests: Force constructs composed in the tricky ways real
programs compose them — loop reentry, nesting, async arrays, and the
failure modes (deadlock detection)."""

import pytest

from repro.core import (
    CRAY_2,
    HEP,
    MACHINES,
    SEQUENT_BALANCE,
    force_compile_and_run,
)
from repro.sim import SimulationError
from repro._util.text import strip_margin


def run(src, machine=SEQUENT_BALANCE, nproc=4, **kw):
    return force_compile_and_run(strip_margin(src), machine, nproc, **kw)


class TestSelfschedReentry:
    """The paper's BARWIN/BARWOT protocol exists precisely so a
    selfscheduled loop inside a sequential loop can be re-entered
    safely: a fast process must not start the next episode before the
    slow ones have left the previous one."""

    SOURCE = """
        Force REENT of NP ident ME
        Shared INTEGER TOTAL
        Private INTEGER K, SWEEP
        End declarations
        Barrier
              TOTAL = 0
        End barrier
              DO 50 SWEEP = 1, 5
              Selfsched DO 100 K = 1, 12
              Critical TLCK
              TOTAL = TOTAL + K
              End critical
        100   End Selfsched DO
        50    CONTINUE
        Barrier
              WRITE(*,*) "TOTAL", TOTAL
        End barrier
        Join
              END
    """

    @pytest.mark.parametrize("nproc", [1, 2, 4, 7])
    def test_exact_coverage_every_sweep(self, nproc):
        result = run(self.SOURCE, nproc=nproc)
        # 5 sweeps x sum(1..12) = 5 * 78 = 390
        assert result.output == ["TOTAL 390"]

    def test_on_all_machines(self):
        outputs = {run(self.SOURCE, machine=m).output[0]
                   for m in MACHINES.values()}
        assert outputs == {"TOTAL 390"}


class TestAsyncArrays:
    def test_per_element_channels(self):
        # Process 1 produces into Q(i); process i consumes Q(i-1)... a
        # scatter over an async array with per-element full/empty.
        src = """
            Force SCAT of NP ident ME
            Async INTEGER Q(8)
            Shared INTEGER SUM
            Private INTEGER V, K
            End declarations
            Barrier
                  SUM = 0
            End barrier
                  IF (ME .EQ. 1) THEN
                    DO 10 K = 1, 8
                  Produce Q(K) = 10 * K
            10      CONTINUE
                  END IF
                  IF (ME .EQ. 2) THEN
                    DO 20 K = 1, 8
                  Consume Q(K) into V
                  SUM = SUM + V
            20      CONTINUE
                  END IF
            Barrier
                  WRITE(*,*) "SUM", SUM
            End barrier
            Join
                  END
        """
        for machine in (SEQUENT_BALANCE, HEP):
            result = run(src, machine=machine, nproc=3)
            assert result.output == ["SUM 360"], machine.name

    def test_cray_lock_scarcity_bites_async_arrays(self):
        # Each element needs two locks on two-lock machines; the
        # Cray-2's scarce locks (limit 32) cannot cover a 32-element
        # async array (64 locks) — the authentic §4.1.3 caveat.
        src = """
            Force BIGQ of NP ident ME
            Async INTEGER Q(32)
            Private INTEGER K
            End declarations
                  IF (ME .EQ. 1) THEN
                    DO 10 K = 1, 32
                  Produce Q(K) = K
            10      CONTINUE
                  END IF
                  IF (ME .EQ. 2) THEN
                    DO 20 K = 1, 32
                  Consume Q(K) into J
            20      CONTINUE
                  END IF
            Join
                  END
        """
        with pytest.raises(SimulationError, match="lock limit"):
            run(src, machine=CRAY_2, nproc=2)
        # The HEP, with a full/empty bit on every cell, is fine.
        result = run(src, machine=HEP, nproc=2)
        assert result.stats.processes == 3   # driver + 2


class TestNesting:
    def test_critical_inside_selfsched_inside_pcase_section(self):
        src = """
            Force NEST of NP ident ME
            Shared INTEGER A, B
            Private INTEGER K
            End declarations
            Barrier
                  A = 0
                  B = 0
            End barrier
            Pcase
            Usect
                  A = 100
            Usect
                  B = 200
            End pcase
            Barrier
            End barrier
            Selfsched DO 100 K = 1, 10
              Critical LCK
                  A = A + 1
              End critical
            100 End Selfsched DO
            Barrier
                  WRITE(*,*) A, B
            End barrier
            Join
                  END
        """
        result = run(src)
        assert result.output == ["110 200"]

    def test_barriers_inside_sequential_loop(self):
        src = """
            Force PHASES of NP ident ME
            Shared INTEGER PHASE(6)
            Private INTEGER S
            End declarations
                  DO 50 S = 1, 6
            Barrier
                  PHASE(S) = PHASE(S) + S
            End barrier
            50    CONTINUE
            Barrier
                  WRITE(*,*) PHASE(1), PHASE(6)
            End barrier
            Join
                  END
        """
        # Barrier section runs once per episode: PHASE(S) = S exactly.
        result = run(src, nproc=5)
        assert result.output == ["1 6"]

    def test_forcesub_with_own_selfsched(self):
        src = """
            Force TOP of NP ident ME
            End declarations
            Forcecall WORKER(3)
            Forcecall WORKER(4)
            Join
                  END
            Forcesub WORKER(SCALE) of NP ident ME
            Shared INTEGER ACC
            Private INTEGER K
            End declarations
            Barrier
                  ACC = 0
            End barrier
            Selfsched DO 100 K = 1, 5
              Critical WLCK
                  ACC = ACC + K * SCALE
              End critical
            100 End Selfsched DO
            Barrier
                  WRITE(*,*) "ACC", ACC
            End barrier
                  RETURN
                  END
        """
        result = run(src, nproc=3)
        assert result.output == ["ACC 45", "ACC 60"]


class TestFailureModes:
    def test_deadlock_detected_and_reported(self):
        # Only process 1 reaches the barrier: the force can never
        # complete and the simulator must say so, naming the blocker.
        src = """
            Force STUCK of NP ident ME
            End declarations
                  IF (ME .EQ. 1) THEN
            Barrier
            End barrier
                  END IF
            Join
                  END
        """
        with pytest.raises(SimulationError, match="deadlock"):
            run(src, nproc=3)

    def test_consume_without_produce_deadlocks(self):
        src = """
            Force EMPTYC of NP ident ME
            Async INTEGER V
            Private INTEGER X
            End declarations
                  IF (ME .EQ. 1) THEN
                  Consume V into X
                  END IF
            Join
                  END
        """
        with pytest.raises(SimulationError, match="deadlock"):
            run(src, nproc=2)

    def test_stop_inside_force_halts_whole_simulation(self):
        src = """
            Force HALTS of NP ident ME
            End declarations
                  IF (ME .EQ. 2) THEN
                  WRITE(*,*) "STOPPING"
                  STOP
                  END IF
            Barrier
            End barrier
            Join
                  END
        """
        result = run(src, nproc=3)
        assert result.stats.halted
        assert "STOPPING" in result.output


class TestOversubscription:
    SOURCE = """
        Force SATUR of NP ident ME
        Private INTEGER I, J
        End declarations
        Presched DO 100 I = 1, 2000
              J = I + 1
        100 End presched DO
        Join
              END
    """

    def test_spin_machine_oversubscription_deadlocks(self):
        # 32 processes on the 20-CPU Encore: the Join barrier's
        # spinners hold every processor and the rest starve — the
        # hazard that made one-process-per-processor the Force's
        # operating point on spinlock machines.
        from repro.core import ENCORE_MULTIMAX
        with pytest.raises(SimulationError, match="starved"):
            run(self.SOURCE, machine=ENCORE_MULTIMAX, nproc=32)

    def test_at_capacity_is_fine(self):
        from repro.core import ENCORE_MULTIMAX
        result = run(self.SOURCE, machine=ENCORE_MULTIMAX,
                     nproc=ENCORE_MULTIMAX.processors)
        assert result.stats.processes == ENCORE_MULTIMAX.processors + 1

    def test_syscall_machine_tolerates_oversubscription(self):
        result = run(self.SOURCE, machine=CRAY_2, nproc=12)
        assert result.stats.processes == 13


class TestScale:
    def test_sixteen_processes_on_hep(self):
        src = """
            Force WIDE of NP ident ME
            Shared INTEGER TOTAL
            Private INTEGER K
            End declarations
            Barrier
                  TOTAL = 0
            End barrier
            Selfsched DO 100 K = 1, 200
              Critical LCK
                  TOTAL = TOTAL + 1
              End critical
            100 End Selfsched DO
            Barrier
                  WRITE(*,*) TOTAL, NP
            End barrier
            Join
                  END
        """
        result = run(src, machine=HEP, nproc=16)
        assert result.output == ["200 16"]
