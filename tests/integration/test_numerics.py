"""Numerical validation: the Force kernels against numpy references."""

import numpy as np
import pytest

from repro.core import HEP, MACHINES, SEQUENT_BALANCE, \
    force_compile_and_run, programs


def lu_reference_trace(n: int) -> float:
    """Trace of U from unpivoted Gaussian elimination, via numpy."""
    a = np.empty((n, n))
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            a[i - 1, j - 1] = 1.0 / (i + j) + (n if i == j else 0.0)
    for k in range(n - 1):
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return float(np.trace(np.triu(a)))


def jacobi_reference(n: int, iters: int) -> np.ndarray:
    u = np.zeros(n)
    u[0] = u[-1] = 100.0
    for _ in range(iters):
        unew = u.copy()
        unew[1:-1] = 0.5 * (u[:-2] + u[2:])
        u = unew
    return u


class TestLU:
    @pytest.mark.parametrize("n", [4, 8, 12])
    def test_matches_numpy(self, n):
        source = programs.render("lu_decomposition", n=n)
        result = force_compile_and_run(source, SEQUENT_BALANCE, nproc=4)
        expected = round(1000.0 * lu_reference_trace(n))
        assert result.output == [f"TRACEU {expected}"]

    def test_same_on_all_machines(self):
        source = programs.render("lu_decomposition", n=8)
        outputs = {force_compile_and_run(source, m, nproc=3).output[0]
                   for m in MACHINES.values()}
        assert len(outputs) == 1

    @pytest.mark.parametrize("nproc", [1, 2, 3, 5, 8])
    def test_independent_of_force_size(self, nproc):
        source = programs.render("lu_decomposition", n=8)
        result = force_compile_and_run(source, HEP, nproc=nproc)
        expected = round(1000.0 * lu_reference_trace(8))
        assert result.output == [f"TRACEU {expected}"]


class TestJacobiAgainstNumpy:
    def test_probe_values_match(self):
        n, iters = 16, 30
        source = programs.render("jacobi", n=n, iters=iters)
        result = force_compile_and_run(source, SEQUENT_BALANCE, nproc=4)
        u = jacobi_reference(n, iters)
        expected_edge = round(1000.0 * u[3])       # U(4), 1-based
        expected_mid = round(1000.0 * u[n // 2 - 1])
        assert result.output == [f"PROBE {expected_edge} {expected_mid}"]


class TestDotAgainstNumpy:
    @pytest.mark.parametrize("n", [1, 7, 40, 100])
    def test_dot_product(self, n):
        source = programs.render("dot_product", n=n)
        result = force_compile_and_run(source, SEQUENT_BALANCE, nproc=4)
        x = np.arange(1, n + 1, dtype=float)
        expected = round(float(x @ (2.0 * np.ones(n))))
        assert result.output == [f"DOT {expected}"]
