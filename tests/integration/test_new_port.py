"""Porting the Force to a *seventh* machine (§5).

"Given the fairly strong differences between the machines already
hosting the Force, we expect no major difficulties in porting the
system to any shared memory multiprocessor."

This test performs that port: a fictional late-80s machine ("Cedar-ish"
cluster multiprocessor) with spin locks and run-time sharing gets a
machine-dependent macro set of ~30 lines — nothing else changes — and
the whole sample-program suite runs on it with outputs identical to
the six original machines.
"""

import pytest

from repro.core import SEQUENT_BALANCE, force_run, programs
from repro.machines.model import (
    CostTable,
    LockType,
    MachineModel,
    ProcessModel,
    SharingBinding,
)
from repro.macros import MACHDEP_INTERFACE
from repro.macros.machdep import MACHDEP_MODULES
from repro.macros.machdep.common import (
    environment_macro,
    fork_driver,
    startup_registration,
    two_lock_async_macros,
)
from repro.pipeline import force_translate
from repro.sim.force_runtime import LOCK_CALL_NAMES

NEW_MACHINE = MachineModel(
    name="Cedarish C-32",
    vendor="Fictional Systems",
    processors=32,
    process_model=ProcessModel.UNIX_FORK,
    lock_type=LockType.SPIN,
    sharing_binding=SharingBinding.RUN_TIME,
    page_size=2048,
    shared_padded_both_ends=True,
    costs=CostTable(
        lock_acquire=9,
        lock_release=7,
        spin_retry=5,
        syscall_overhead=550,
        context_switch=300,
        process_create=9_000,
        shared_access_penalty=2,
    ),
)

# The entire port: one machine-dependent macro definition set.
NEW_MACHDEP_DEFINITIONS = (
    "dnl --- Cedarish C-32 machine-dependent Force macros --------------\n"
    + two_lock_async_macros("SPINLK", "SPINUN")
    + startup_registration(driver_calls_startup=True)
    + fork_driver()
    + environment_macro()
)


class _PortModule:
    DEFINITIONS = NEW_MACHDEP_DEFINITIONS


@pytest.fixture()
def ported(monkeypatch):
    monkeypatch.setitem(MACHDEP_MODULES, NEW_MACHINE.key, _PortModule)
    return NEW_MACHINE


class TestSeventhPort:
    def test_port_provides_complete_interface(self, ported):
        from repro.macros import build_processor
        m4 = build_processor(ported)
        for name in MACHDEP_INTERFACE:
            assert m4.is_defined(name)

    def test_lock_names_consistent_with_model(self, ported):
        lock_name, unlock_name = LOCK_CALL_NAMES[ported.lock_type]
        fortran = force_translate(
            programs.render("sum_critical"), ported).fortran
        assert f"CALL {lock_name}(" in fortran
        assert f"CALL {unlock_name}(" in fortran

    @pytest.mark.parametrize("name", ["sum_critical", "dot_product",
                                      "pipeline", "sections",
                                      "askfor_tree", "matrix_scale",
                                      "subroutine_call"])
    def test_whole_suite_runs_on_the_new_machine(self, ported, name):
        source = programs.render(name)
        new = force_run(force_translate(source, ported), nproc=4)
        reference = force_run(
            force_translate(source, SEQUENT_BALANCE), nproc=4)
        assert new.output == reference.output

    def test_page_invariants_hold(self, ported):
        result = force_run(
            force_translate(programs.render("jacobi"), ported), nproc=4)
        plan = result.memory_plan
        assert plan is not None
        assert plan.shared_start % ported.page_size == 0
        assert plan.shared_end % ported.page_size == 0

    def test_port_is_small(self):
        # The paper's economics: the port fits in a few dozen lines.
        lines = [l for l in NEW_MACHDEP_DEFINITIONS.split("\n")
                 if l.strip() and not l.strip().startswith("dnl")]
        assert len(lines) < 40
