"""The `force check` subcommand and the `translate --check` gate."""

import json
import pathlib

import pytest

from repro._util.text import strip_margin
from repro.pipeline.cli import main

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

CLEAN = strip_margin("""
    Force OK of NP ident ME
    Shared INTEGER TOTAL
    End declarations
    Barrier
          TOTAL = NP
    End barrier
    Join
          END
""")

RACY = strip_margin("""
    Force BAD of NP ident ME
    Shared INTEGER TOTAL
    End declarations
          TOTAL = 1
    Join
          END
""")

WARN_ONLY = strip_margin("""
    Force WARNY of NP ident ME
    Async INTEGER V
    Private INTEGER X
    End declarations
      Consume V into X
    Join
          END
""")


@pytest.fixture()
def write(tmp_path):
    def _write(name, source):
        path = tmp_path / name
        path.write_text(source, encoding="utf-8")
        return str(path)
    return _write


class TestCheckExitCodes:
    def test_clean_program_exits_zero(self, write, capsys):
        assert main(["check", write("ok.frc", CLEAN)]) == 0
        out = capsys.readouterr().out
        assert "1 file(s) checked: 0 error(s), 0 warning(s)" in out

    def test_errors_exit_one(self, write, capsys):
        assert main(["check", write("bad.frc", RACY)]) == 1
        out = capsys.readouterr().out
        assert "error[F001]" in out
        assert "bad.frc:4:" in out

    def test_warnings_alone_exit_zero(self, write, capsys):
        assert main(["check", write("warn.frc", WARN_ONLY)]) == 0
        out = capsys.readouterr().out
        assert "warning[F007]" in out

    def test_werror_promotes_warnings(self, write, capsys):
        assert main(["check", "--werror",
                     write("warn.frc", WARN_ONLY)]) == 1
        out = capsys.readouterr().out
        assert "error[F007]" in out

    def test_multiple_files_one_bad_fails_the_batch(self, write, capsys):
        assert main(["check", write("ok.frc", CLEAN),
                     write("bad.frc", RACY)]) == 1
        out = capsys.readouterr().out
        assert "2 file(s) checked" in out

    def test_racy_stencil_example(self, capsys):
        assert main(["check",
                     str(EXAMPLES / "racy_stencil.frc")]) == 1
        out = capsys.readouterr().out
        # the issue's acceptance floor: at least four distinct codes
        codes = {line.split("[", 1)[1].split("]", 1)[0]
                 for line in out.splitlines() if "[F0" in line}
        assert len(codes) >= 4

    def test_shipped_clean_examples(self, capsys):
        clean = sorted(str(p) for p in EXAMPLES.glob("*.frc")
                       if p.name != "racy_stencil.frc")
        assert main(["check", *clean]) == 0


class TestJsonFormat:
    def test_round_trips_through_json_loads(self, write, capsys):
        path = write("bad.frc", RACY)
        assert main(["check", "--format", "json", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["errors"] >= 1
        (entry,) = payload["files"]
        assert entry["file"] == path
        diag = entry["diagnostics"][0]
        assert diag["code"] == "F001"
        assert diag["severity"] == "error"
        assert diag["line"] == 4
        assert diag["suggestion"]
        assert diag["title"]

    def test_clean_file_yields_empty_diagnostics(self, write, capsys):
        assert main(["check", "--format", "json",
                     write("ok.frc", CLEAN)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["files"][0]["diagnostics"] == []


class TestTranslateCheckGate:
    def test_gate_blocks_bad_program(self, write, capsys):
        assert main(["translate", "--check",
                     write("bad.frc", RACY)]) == 1
        captured = capsys.readouterr()
        assert "static checks failed" in captured.err
        assert "SUBROUTINE" not in captured.out   # nothing translated

    def test_gate_passes_clean_program(self, write, capsys):
        assert main(["translate", "--check",
                     write("ok.frc", CLEAN)]) == 0
        assert "SUBROUTINE OK" in capsys.readouterr().out

    def test_without_flag_bad_program_still_translates(self, write,
                                                       capsys):
        assert main(["translate", write("bad.frc", RACY)]) == 0
        assert "SUBROUTINE BAD" in capsys.readouterr().out
