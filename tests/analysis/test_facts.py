"""The ``--facts`` surface: schema, round-trip, the compiled layer's
kernel-eligibility gate, and the CLI flags that carry the document
from ``force check`` to ``force run``."""

import json
import pathlib

import pytest

from repro.analysis import analyze_source
from repro.analysis.facts import (
    FACTS_VERSION,
    build_facts,
    load_facts,
    race_free_doalls,
    validate_facts,
    write_facts,
)
from repro.pipeline.cli import main

REPO = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


def _summaries(*names):
    out = []
    for name in names:
        path = EXAMPLES / name
        _, summary = analyze_source(path.read_text(encoding="utf-8"),
                                    str(path))
        out.append((str(path), summary))
    return out


class TestSchema:
    def test_corpus_document_validates(self):
        names = [p.relative_to(EXAMPLES).as_posix()
                 for p in sorted(EXAMPLES.rglob("*.frc"))]
        doc = build_facts(_summaries(*names))
        assert doc["version"] == FACTS_VERSION
        assert validate_facts(doc) == []
        assert len(doc["files"]) == len(names)

    def test_validator_rejects_broken_documents(self):
        assert validate_facts([]) != []
        assert validate_facts({"version": 99, "files": []}) != []
        assert validate_facts({"version": FACTS_VERSION,
                               "files": [{"file": 3}]}) != []

    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "facts.json"
        written = write_facts(str(path), _summaries("jacobi.frc"))
        loaded = load_facts(str(path))
        assert loaded == written

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 0}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_facts(str(path))


class TestVerdicts:
    def test_jacobi_doalls_are_race_free(self):
        doc = build_facts(_summaries("jacobi.frc"))
        doalls = doc["files"][0]["doalls"]
        assert len(doalls) == 2
        assert all(d["race_free"] for d in doalls)
        eligible = race_free_doalls(doc)
        assert sorted(d["label"] for d in eligible["JACOBI"]) \
            == ["10", "20"]

    def test_racy_stencil_doall_is_not(self):
        doc = build_facts(_summaries("racy_stencil.frc"))
        entry = doc["files"][0]
        (doall,) = entry["doalls"]
        assert doall["race_free"] is False
        assert race_free_doalls(doc) == {}
        assert entry["privatizable"] == ["SWEEPS"]
        assert any(r["kind"] == "read/write" for r in entry["races"])

    def test_critical_contention_sites(self):
        doc = build_facts(_summaries("sum_critical.frc"))
        (critical,) = doc["files"][0]["criticals"]
        assert critical["name"] == "LCK"
        assert critical["protects"] == ["TOTAL"]
        assert len(critical["sites"]) == 1


class TestKernelEligibilityGate:
    def test_force_run_marks_proven_loops(self):
        from repro.machines import get_machine
        from repro.pipeline.compile import force_translate
        from repro.pipeline.run import force_run
        source = (EXAMPLES / "jacobi.frc").read_text(encoding="utf-8")
        facts = build_facts(_summaries("jacobi.frc"))
        translation = force_translate(source,
                                      get_machine("sequent-balance"))
        gated = force_run(translation, 4, facts=facts)
        assert gated.kernel_eligible == {"JACOBI": [10, 20]}
        plain = force_run(translation, 4)
        assert plain.kernel_eligible == {}
        # the gate must not perturb execution
        assert gated.output == plain.output
        assert gated.makespan == plain.makespan


class TestCliFlags:
    def test_check_facts_writes_a_valid_document(self, tmp_path, capsys):
        out = tmp_path / "facts.json"
        assert main(["check", str(EXAMPLES / "jacobi.frc"),
                     "--facts", str(out)]) == 0
        assert "facts: 1 file(s)" in capsys.readouterr().err
        doc = load_facts(str(out))
        assert doc["files"][0]["doalls"]

    def test_check_explain_renders_witnesses(self, capsys):
        assert main(["check", "--explain",
                     str(EXAMPLES / "racy_stencil.frc")]) == 1
        out = capsys.readouterr().out
        assert "witness (read/write):" in out
        assert "phase 2" in out
        assert "holding {}" in out
        assert "the same statement on every other process" in out

    def test_run_facts_reports_eligible_loops(self, tmp_path, capsys):
        facts = tmp_path / "facts.json"
        assert main(["check", str(EXAMPLES / "jacobi.frc"),
                     "--facts", str(facts)]) == 0
        capsys.readouterr()
        assert main(["run", str(EXAMPLES / "jacobi.frc"),
                     "--facts", str(facts), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel_eligible"] == {"JACOBI": [10, 20]}

    def test_run_rejects_invalid_facts_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert main(["run", str(EXAMPLES / "jacobi.frc"),
                     "--facts", str(bad)]) == 1
        assert "facts" in capsys.readouterr().err
