"""Unit tests for the barrier-phase MHP engine: the phase partitioner,
the MHP relation, and the interprocedural summaries they feed."""

from repro._util.text import strip_margin
from repro.analysis import parse_program, summarize
from repro.analysis.mhp import may_happen_in_parallel, no_mhp_reason
from repro.analysis.phases import BARRIER, REPLICATED, partition


def _summary(source):
    return summarize(parse_program(strip_margin(source), "t.frc"))


def _accesses(summary, name):
    return [a for a in summary.accesses if a.name == name]


class TestPhasePartitioner:
    SOURCE = strip_margin("""
        Force PH of NP ident ME
        Shared INTEGER A, B, C
        End declarations
              A = 1
        Barrier
              B = 2
        End barrier
              C = 3
        Join
              A = 4
              END
    """)

    def test_barrier_body_gets_its_own_phase(self):
        program = parse_program(self.SOURCE, "t.frc")
        rp = partition(program.routines[0])
        by_name = {(a.name, a.site.phase, a.site.region)
                   for a in rp.accesses if a.is_write}
        assert ("A", 0, REPLICATED) in by_name
        assert ("B", 1, BARRIER) in by_name
        assert ("C", 2, REPLICATED) in by_name
        assert ("A", 3, REPLICATED) in by_name   # Join is a boundary
        assert rp.phase_count == 4

    def test_doall_frames_and_locks_are_recorded(self):
        source = strip_margin("""
            Force FR of NP ident ME
            Shared INTEGER T
            Private INTEGER I
            End declarations
            Presched DO 10 I = 1, 8
                  Critical LCK
                  T = T + I
                  End critical
            10 End presched DO
            Join
                  END
        """)
        program = parse_program(source, "t.frc")
        rp = partition(program.routines[0])
        write = next(a for a in rp.accesses
                     if a.name == "T" and a.is_write)
        assert write.site.locks == ("LCK",)
        (frame,) = write.site.frames
        assert frame.indices == ("I",)
        assert frame.lower_bound("I") == "1"
        assert frame.upper_bound("I") == "8"


class TestMhpRelation:
    SOURCE = """
        Force MH of NP ident ME
        Shared INTEGER A, B, C, D, E
        End declarations
              A = 1
        Barrier
              B = 2
        End barrier
              C = 3
              IF (ME .EQ. 1) D = 4
              IF (ME .EQ. 1) E = 5
        Join
              END
    """

    def setup_method(self):
        self.summary = _summary(self.SOURCE)

    def _write(self, name):
        return next(a for a in _accesses(self.summary, name)
                    if a.is_write)

    def test_different_phases_never_mhp(self):
        a, c = self._write("A"), self._write("C")
        assert not may_happen_in_parallel(a, c)
        assert "barrier" in no_mhp_reason(a, c)

    def test_barrier_body_never_mhp_even_with_itself(self):
        b = self._write("B")
        assert not may_happen_in_parallel(b, b)
        assert "single-process" in no_mhp_reason(b, b)

    def test_replicated_statement_races_with_itself(self):
        c = self._write("C")
        assert may_happen_in_parallel(c, c)
        assert no_mhp_reason(c, c) is None

    def test_identical_guards_pin_the_same_process(self):
        d, e = self._write("D"), self._write("E")
        assert d.guard is not None
        assert not may_happen_in_parallel(d, d)   # guarded self
        assert not may_happen_in_parallel(d, e)   # same canonical guard

    def test_sections_do_not_self_race_but_cross_sections_do(self):
        source = """
            Force SEC of NP ident ME
            Shared INTEGER X, Y
            End declarations
            Pcase
            Usect
                  X = 1
            Usect
                  Y = X
            End pcase
            Join
                  END
        """
        summary = _summary(source)
        x = next(a for a in _accesses(summary, "X") if a.is_write)
        y_read = next(a for a in _accesses(summary, "X")
                      if not a.is_write)
        assert not may_happen_in_parallel(x, x)
        assert may_happen_in_parallel(x, y_read)   # End pcase: no sync


class TestInterproceduralSummaries:
    SOURCE = """
        Force MAIN of NP ident ME
        Shared INTEGER ACC
        End declarations
              ACC = 0
        Forcecall HELPER(7)
              ACC = 2
        Join
              END
        Forcesub HELPER(X) of NP ident ME
        Shared INTEGER ACC
        End declarations
        Barrier
              ACC = X
        End barrier
              IF (ID .EQ. 1) ACC = 1
              RETURN
              END
    """.replace("ID", "ME")

    def test_callee_barriers_shift_caller_phases(self):
        summary = _summary(self.SOURCE)
        writes = [(a.routine, a.line, a.phase)
                  for a in _accesses(summary, "ACC") if a.is_write]
        first = next(p for r, l, p in writes
                     if r == "MAIN" and l == 4)
        inside = next(p for r, l, p in writes if r == "HELPER")
        after = next(p for r, l, p in writes
                     if r == "MAIN" and l == 6)
        # HELPER consumes two boundaries (barrier open + close), so
        # the caller's post-call write lands two phases later.
        assert inside == first + 1
        assert after == first + 2

    def test_guard_substitutes_the_callers_ident(self):
        summary = _summary(self.SOURCE)
        guarded = next(a for a in _accesses(summary, "ACC")
                       if a.guard is not None)
        assert guarded.guard == "ME .EQ. 1"
        assert guarded.chain == ("MAIN", "HELPER")

    def test_lockset_carries_into_the_callee(self):
        source = """
            Force LK of NP ident ME
            Shared INTEGER T
            End declarations
                  Critical OUTER
            Forcecall SUB
                  End critical
            Join
                  END
            Forcesub SUB of NP ident ME
            Shared INTEGER T
            End declarations
                  T = 1
                  RETURN
                  END
        """
        summary = _summary(source)
        write = next(a for a in _accesses(summary, "T") if a.is_write)
        assert write.locks == ("OUTER",)
        assert write.routine == "SUB"

    def test_recursion_is_cut_with_a_note(self):
        source = """
            Force RC of NP ident ME
            Shared INTEGER T
            End declarations
            Forcecall LOOPY
            Join
                  END
            Forcesub LOOPY of NP ident ME
            Shared INTEGER T
            End declarations
                  T = 1
            Forcecall LOOPY
                  RETURN
                  END
        """
        summary = _summary(source)
        assert any("recursi" in note.lower() for note in summary.notes)
        # the first expansion of the body is still analyzed
        assert any(a.name == "T" and a.is_write
                   for a in summary.accesses)
