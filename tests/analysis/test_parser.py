"""Construct-tree parser tests (sed-stage output → tree + symbols)."""

from repro._util.text import strip_margin
from repro.analysis.construct_parser import (
    KNOWN_MACROS,
    Construct,
    MacroStmt,
    Stmt,
    parse_macro_call,
    parse_program,
    walk_statements,
)
from repro.analysis.symbols import split_decl_list


def parse(src):
    return parse_program(strip_margin(src))


class TestMacroCallParsing:
    def test_no_args(self):
        assert parse_macro_call("barrier_begin()") == ("barrier_begin", [])

    def test_quoted_args(self):
        assert parse_macro_call("force_main(`CLIP',`NP',`ME')") == \
            ("force_main", ["CLIP", "NP", "ME"])

    def test_args_with_inner_parens(self):
        assert parse_macro_call("produce(`Q(I)',`W + F(2)')") == \
            ("produce", ["Q(I)", "W + F(2)"])

    def test_fortran_lines_are_filtered_by_known_macros(self):
        # The parser is permissive — `A(I) = B(I)` superficially looks
        # like a call — and the dispatcher filters on KNOWN_MACROS.
        for line in ("      A(I) = B(I)", "      CALL FRCQPT(1, 2)"):
            parsed = parse_macro_call(line)
            assert parsed is None or parsed[0] not in KNOWN_MACROS


class TestDeclListSplitting:
    def test_arrays_keep_their_commas(self):
        assert split_decl_list("A(100, 100), B") == \
            [("A", True), ("B", False)]

    def test_scalars(self):
        assert split_decl_list("I, J, K") == \
            [("I", False), ("J", False), ("K", False)]


class TestTree:
    SRC = """
        Force DEMO of NP ident ME
        Shared INTEGER TOTAL
        Private INTEGER K
        End declarations
        Barrier
              TOTAL = 0
        End barrier
        Selfsched DO 100 K = 1, 10
              Critical LCK
              TOTAL = TOTAL + K
              End critical
        100 End Selfsched DO
        Join
              END
    """

    def test_one_routine_with_symbols(self):
        program = parse(self.SRC)
        assert [d.code for d in program.diagnostics] == []
        (routine,) = program.routines
        assert routine.name == "DEMO"
        assert routine.ident_var == "ME"
        assert routine.symbols.storage_of("TOTAL") == "shared"
        assert routine.symbols.storage_of("K") == "private"

    def test_nesting_shape(self):
        (routine,) = parse(self.SRC).routines
        constructs = [n for n in routine.body if isinstance(n, Construct)]
        assert [c.kind for c in constructs] == ["barrier", "doall"]
        doall = constructs[1]
        assert doall.label == "100"
        assert doall.index_vars == ("K",)
        inner = [n for n in doall.body if isinstance(n, Construct)]
        assert [c.kind for c in inner] == ["critical"]
        assert inner[0].name == "LCK"

    def test_line_numbers_point_at_source(self):
        (routine,) = parse(self.SRC).routines
        barrier = next(n for n in routine.body
                       if isinstance(n, Construct))
        assert barrier.line == 5
        total_stmt = barrier.body[0]
        assert isinstance(total_stmt, Stmt)
        assert total_stmt.line == 6

    def test_forcesub_gets_its_own_routine(self):
        program = parse("""
            Force TOP of NP ident ME
            End declarations
            Forcecall STEP(1)
            Join
                  END
            Forcesub STEP(SCALE) of NP ident ME
            Shared INTEGER ACC
            End declarations
                  RETURN
                  END
        """)
        assert [r.name for r in program.routines] == ["TOP", "STEP"]
        sub = program.routines[1]
        assert sub.kind == "sub"
        assert sub.symbols.storage_of("SCALE") == "param"
        assert sub.symbols.storage_of("ACC") == "shared"


class TestContextWalk:
    def test_me_guard_is_tracked_across_blocks(self):
        program = parse("""
            Force P of NP ident ME
            Shared INTEGER S
            End declarations
                  IF (ME .EQ. 1) THEN
                  S = 1
                  ELSE
                  S = 2
                  END IF
                  S = 3
            Join
                  END
        """)
        (routine,) = program.routines
        ctx_by_text = {s.text.strip(): c
                       for s, c in walk_statements(routine)}
        assert ctx_by_text["S = 1"].guarded
        assert not ctx_by_text["S = 2"].guarded
        assert not ctx_by_text["S = 3"].guarded

    def test_logical_if_guard(self):
        program = parse("""
            Force P of NP ident ME
            Shared INTEGER S
            End declarations
                  IF (ME .EQ. 1) S = 1
            Join
                  END
        """)
        (routine,) = program.routines
        stmts = [(s.text.strip(), c.guarded)
                 for s, c in walk_statements(routine)]
        assert ("S = 1", True) in stmts

    def test_macro_leaves_are_kept(self):
        program = parse("""
            Force P of NP ident ME
            Async INTEGER V
            Private INTEGER X
            End declarations
            Produce V = 1
              Consume V into X
            Join
                  END
        """)
        (routine,) = program.routines
        macros = [n.name for n in routine.body if isinstance(n, MacroStmt)]
        assert "produce" in macros
        assert "consume" in macros
