"""Regression tests for the two seed F001 bugs this engine fixes.

Satellite 1 — ``parse_assignment`` missed logical-IF one-liners
(``IF (P .EQ. ME) X = 1``): the embedded assignment was invisible, so
neither the guarded (safe) nor the unguarded (racy) form produced the
right verdict.

Satellite 2 — any mention of the DOALL index inside a subscript was
treated as ownership, so ``A(I + J)`` (private ``J``) and other
non-injective terms passed.  Ownership now requires an affine
subscript whose collision equation forces the index — with every
other symbol replicated-by-storage-class (Shared or parameter).
"""

from repro._util.text import strip_margin
from repro.analysis import check_source
from repro.analysis.fortranish import parse_assignment


def _errors(source):
    return [d for d in check_source(strip_margin(source))
            if d.is_error]


class TestLogicalIfAssignments:
    def test_parse_assignment_unwraps_logical_if(self):
        parsed = parse_assignment("IF (P .EQ. ME) X = 1")
        assert parsed is not None
        assert parsed.name == "X"
        assert parsed.guard == "P .EQ. ME"

    def test_me_guarded_write_is_clean(self):
        assert _errors("""
            Force G of NP ident ME
            Shared INTEGER S
            End declarations
                  IF (ME .EQ. 1) S = 1
            Join
                  END
        """) == []

    def test_unguarded_embedded_write_is_f001(self):
        (diag,) = _errors("""
            Force G of NP ident ME
            Shared INTEGER S
            Private INTEGER K
            End declarations
                  K = 1
                  IF (K .GT. 0) S = 1
            Join
                  END
        """)
        assert diag.code == "F001"
        assert diag.line == 6
        assert "S" in diag.message

    def test_two_different_guards_still_race_with_each_other(self):
        (diag,) = _errors("""
            Force G of NP ident ME
            Shared INTEGER S
            End declarations
                  IF (ME .EQ. 1) S = 1
                  IF (ME .EQ. 2) S = 2
            Join
                  END
        """)
        assert diag.witness.kind == "write/write"


class TestAffineSubscriptOwnership:
    HEAD = """
        Force A of NP ident ME
        Shared REAL A(100), B(100)
        Shared INTEGER N
        Private INTEGER I, J
        End declarations
        Barrier
              N = 50
        End barrier
    """
    TAIL = """
        Join
              END
    """

    def _loop(self, *body):
        lines = "\n".join(f"      {line}" for line in body)
        return _errors(self.HEAD
                       + f"Presched DO 10 I = 1, 50\n{lines}\n"
                         "10 End presched DO" + self.TAIL)

    def test_plain_index_is_owned(self):
        assert self._loop("A(I) = 1.0") == []

    def test_strided_index_is_owned(self):
        assert self._loop("A(2 * I) = 1.0") == []

    def test_shared_offset_is_owned(self):
        # injective in I: N is Shared, replicated by storage class
        assert self._loop("A(N - I) = 1.0") == []

    def test_private_offset_is_not_ownership(self):
        # the seed passed this: I appears in the subscript.  Nothing
        # proves two processes agree on private J, so A(I+J) races.
        (diag,) = self._loop("A(I + J) = 1.0")
        assert diag.code == "F001"
        assert "DOALL" in diag.message

    def test_reflected_read_aliases_the_write(self):
        # A(I) written while another process reads A(N - I): collision
        # does not force the iterations to coincide.
        (diag,) = self._loop("A(I) = 1.0", "B(I) = A(N - I)")
        assert diag.witness.kind == "read/write"

    def test_parity_separated_accesses_are_disjoint(self):
        assert self._loop("A(2 * I) = A(2 * I + 1)",
                          "B(I) = A(2 * I + 1)") == []

    def test_ident_subscript_partitions_by_process(self):
        assert _errors(self.HEAD + "      A(ME) = 1.0" + self.TAIL) == []
