"""The adversarial corpus: races the seed checker missed, false
positives it reported, and the ``--format json`` goldens locking the
exact diagnostic payload for each program.

Each program in ``examples/adversarial/`` is a minimal Force idiom the
barrier-phase MHP engine must judge differently than the seed's
per-assignment checker did:

==================  ==================================================
missing_barrier     DOALL write vs replicated read after ``End
                    presched DO`` (which does not synchronize) — a
                    read/write pair the seed never looked for
helper_race         write under Critical in a Forcesub vs a bare read
                    in the caller — interprocedural, lockset on one
                    side only
twin_writers        two differently ME-guarded writes in two distinct
                    Forcesubs — a write/write pair across routines
locked_helper       write in a helper protected by the Critical every
                    call site holds — seed false positive, now
                    suppressed by the interprocedural lockset
owner_compute       ME-guarded logical-IF write and the ``A(ME)``
                    slot idiom — seed false positive, now suppressed
priv_temp           racy Shared temporary every phase writes before
                    reading — still a race, but the facts file marks
                    it privatizable (the mechanical fix)
==================  ==================================================
"""

import json
import pathlib

import pytest

from repro.analysis import analyze_source, check_file, render_json
from repro.analysis.facts import build_file_facts, validate_facts

REPO = pathlib.Path(__file__).resolve().parents[2]
ADVERSARIAL = REPO / "examples" / "adversarial"
GOLDENS = pathlib.Path(__file__).parent / "goldens"

PROGRAMS = ("helper_race", "locked_helper", "missing_barrier",
            "owner_compute", "priv_temp", "twin_writers")


def _check(name):
    return check_file(str(ADVERSARIAL / f"{name}.frc"))


def _facts(name):
    path = ADVERSARIAL / f"{name}.frc"
    _, summary = analyze_source(path.read_text(encoding="utf-8"),
                                str(path))
    return build_file_facts(str(path), summary)


class TestJsonGoldens:
    """``force check --format json`` output is pinned per program; a
    diff here means the diagnostic payload changed shape or content."""

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_matches_golden(self, name):
        rel = f"examples/adversarial/{name}.frc"
        source = (REPO / rel).read_text(encoding="utf-8")
        diagnostics, _ = analyze_source(source, rel)
        payload = json.loads(render_json([(rel, diagnostics)]))
        golden = json.loads(
            (GOLDENS / f"{name}.json").read_text(encoding="utf-8"))
        assert payload == golden


class TestTrueRacesTheSeedMissed:
    """Acceptance: at least three genuine races the seed's
    per-assignment F001 could not see, each with a two-sided witness."""

    def test_missing_barrier_doall_write_vs_later_read(self):
        (diag,) = [d for d in _check("missing_barrier") if d.is_error]
        assert diag.code == "F001"
        witness = diag.witness
        assert witness.kind == "read/write"
        assert (witness.first.line, witness.second.line) == (15, 17)
        assert witness.first.access == "write"
        assert witness.second.access == "read"
        # End presched DO does not synchronize: same phase both sides
        assert witness.first.phase == witness.second.phase

    def test_helper_race_is_interprocedural_with_one_sided_lockset(self):
        (diag,) = [d for d in _check("helper_race") if d.is_error]
        witness = diag.witness
        assert witness.first.routine == "BUMP"
        assert witness.second.routine == "HELPRC"
        assert witness.first.locks == ("ALCK",)
        assert witness.second.locks == ()
        assert witness.first.chain == ("HELPRC", "BUMP")

    def test_twin_writers_write_write_across_routines(self):
        (diag,) = [d for d in _check("twin_writers") if d.is_error]
        witness = diag.witness
        assert witness.kind == "write/write"
        assert {witness.first.routine, witness.second.routine} \
            == {"ALPHA", "BETA"}
        # the two logical-IF guards are different, so MHP holds
        assert witness.first.guard != witness.second.guard


class TestSeedFalsePositivesSuppressed:
    """Acceptance: at least two accesses the seed flagged that the MHP
    engine proves safe."""

    def test_locked_helper_inherits_the_callers_critical(self):
        assert [d for d in _check("locked_helper") if d.is_error] == []

    def test_owner_compute_guard_and_ident_subscript(self):
        assert [d for d in _check("owner_compute") if d.is_error] == []


class TestPrivTempFacts:
    def test_race_is_reported_and_fact_says_privatizable(self):
        diagnostics = _check("priv_temp")
        assert any(d.code == "F001" for d in diagnostics)
        facts = _facts("priv_temp")
        assert facts["privatizable"] == ["TEMP"]
        assert "TEMP" in facts["racy_variables"]

    def test_racy_doall_is_not_race_free(self):
        facts = _facts("priv_temp")
        (doall,) = facts["doalls"]
        assert doall["race_free"] is False

    def test_clean_programs_doalls_are_race_free(self):
        facts = _facts("missing_barrier")
        (doall,) = facts["doalls"]
        # the race pairs the DOALL write with a read OUTSIDE the loop,
        # so the loop itself is (correctly) implicated, not race-free
        assert doall["race_free"] is False
        clean = _facts("owner_compute")
        assert clean["races"] == []
        assert validate_facts({"version": 1, "generator": "t",
                               "files": [clean]}) == []


class TestWholeCorpusSweep:
    """Every adversarial program parses, analyzes, and yields a
    schema-valid facts entry (the golden-corpus sweep)."""

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_facts_entry_validates(self, name):
        entry = _facts(name)
        doc = {"version": 1, "generator": "test", "files": [entry]}
        assert validate_facts(doc) == []

    @pytest.mark.parametrize("name", PROGRAMS)
    def test_every_race_diagnostic_has_two_sided_witness(self, name):
        for diag in _check(name):
            if diag.code == "F001":
                witness = diag.witness
                assert witness is not None
                for site in (witness.first, witness.second):
                    assert site.line > 0
                    assert site.phase >= 0
                    assert site.locks is not None
