"""The analyzer against the repo's own corpus.

Two properties matter in practice: every known-good program must come
back with zero error-severity findings (no false positives), and the
deliberately broken example must light up with the documented codes at
the documented lines (no false negatives).
"""

import pathlib
import re

import pytest

from repro._util.text import strip_margin
from repro.analysis import check_file, check_source, count_errors
from repro.core.programs import SAMPLES, render

REPO = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"
INTEGRATION = REPO / "tests" / "integration"


def _integration_sources():
    """Every triple-quoted Force program embedded in the integration
    tests (identified by its `ident ME` header line)."""
    sources = []
    for path in sorted(INTEGRATION.glob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in re.finditer(r'"""(.*?)"""', text, re.DOTALL):
            block = match.group(1)
            if re.search(r"^\s*Force\w*\s.*\bident\b", block,
                         re.MULTILINE):
                sources.append((path.name, strip_margin(block)))
    return sources


class TestKnownGoodCorpusIsClean:
    @pytest.mark.parametrize("name", sorted(SAMPLES))
    def test_core_samples_have_no_errors(self, name):
        diagnostics = check_source(render(name))
        errors = [d for d in diagnostics if d.is_error]
        assert errors == [], f"{name}: {errors}"

    def test_integration_corpus_has_no_errors(self):
        sources = _integration_sources()
        assert len(sources) >= 10   # the extraction regex still works
        for origin, source in sources:
            diagnostics = check_source(source, filename=origin)
            errors = [d for d in diagnostics if d.is_error]
            assert errors == [], f"{origin}: {errors}"

    def test_clean_examples(self):
        clean = sorted(p for p in EXAMPLES.glob("*.frc")
                       if p.name != "racy_stencil.frc")
        assert clean   # jacobi.frc, sum_critical.frc at minimum
        for path in clean:
            diagnostics = check_file(str(path))
            assert count_errors(diagnostics) == 0, (path.name, diagnostics)


class TestRacyStencilGolden:
    """examples/racy_stencil.frc is the documentation's running
    example: every (code, line) pair below is cited in LANGUAGE.md."""

    EXPECTED = {
        ("F009", 12),   # Private ITER written in a barrier body
        ("F001", 14),   # SWEEPS assigned in replicated code
        ("F001", 16),   # UNEW(I) write vs UNEW(2) read in the DOALL
        ("F001", 17),   # U(2) not owned by the DOALL index I (self
                        # race, plus the pair against U(I-1)/U(I+1))
        ("F003", 18),   # End presched DO label 20 vs opener label 10
        ("F011", 19),   # column-one `Critical RED` is a comment
        ("F001", 20),   # NSIZE update unprotected (see F011 above),
                        # plus the pair against the bound read at 15
        ("F002", 21),   # the End critical is now a stray closer
        ("F004", 23),   # Barrier nested inside Critical GREEN
        ("F007", 27),   # Consume TOKEN: no Produce anywhere
        ("F008", 28),   # Produce into NSIZE, which is Shared
        ("F006", 29),   # Void of SWEEPS, which is Shared
    }

    @pytest.fixture(scope="class")
    def diagnostics(self):
        return check_file(str(EXAMPLES / "racy_stencil.frc"))

    def test_exact_findings(self, diagnostics):
        assert {(d.code, d.line) for d in diagnostics} == self.EXPECTED

    def test_issue_floor_at_least_four_distinct_codes(self, diagnostics):
        assert len({d.code for d in diagnostics}) >= 4

    def test_severity_split(self, diagnostics):
        assert count_errors(diagnostics) == 11
        assert len(diagnostics) - count_errors(diagnostics) == 3

    def test_pair_races_carry_two_sided_witnesses(self, diagnostics):
        pairs = [d for d in diagnostics
                 if d.code == "F001" and d.witness is not None
                 and d.witness.kind != "self"]
        assert {(p.witness.first.line, p.witness.second.line)
                for p in pairs} == {(16, 17), (17, 16), (20, 15)}
        for p in pairs:
            assert p.witness.first.access == "write"
            assert p.witness.first.phase == p.witness.second.phase == 2

    def test_every_diagnostic_has_a_suggestion(self, diagnostics):
        assert all(d.suggestion for d in diagnostics)

    def test_file_is_attached(self, diagnostics):
        assert all(d.file.endswith("racy_stencil.frc")
                   for d in diagnostics)
