"""Golden tests: one minimal offending program per diagnostic code.

Each test pins the code, the severity, and the line number the
diagnostic anchors to — the same triples docs/LANGUAGE.md catalogues.
"""

from repro._util.text import strip_margin
from repro.analysis import Severity, check_source


def diags(src):
    return check_source(strip_margin(src))


def codes(src):
    return [d.code for d in diags(src)]


def only(src, code):
    found = [d for d in diags(src) if d.code == code]
    assert len(found) == 1, f"expected one {code}, got {diags(src)}"
    return found[0]


class TestF001Races:
    def test_shared_write_in_replicated_code(self):
        d = only("""
            Force P of NP ident ME
            Shared INTEGER S
            End declarations
                  S = 1
            Join
                  END
        """, "F001")
        assert d.severity is Severity.ERROR
        assert d.line == 4
        assert "replicated" in d.message

    def test_doall_write_not_owned_by_index(self):
        d = only("""
            Force P of NP ident ME
            Shared REAL A(10)
            Private INTEGER I
            End declarations
            Presched DO 10 I = 1, 10
                  A(3) = 0.0
            10 End presched DO
            Join
                  END
        """, "F001")
        assert d.line == 6

    def test_doall_write_owned_by_index_is_clean(self):
        assert codes("""
            Force P of NP ident ME
            Shared REAL A(10)
            Private INTEGER I
            End declarations
            Presched DO 10 I = 1, 10
                  A(I) = 0.0
            10 End presched DO
            Join
                  END
        """) == []

    def test_critical_and_barrier_bodies_are_clean(self):
        assert codes("""
            Force P of NP ident ME
            Shared INTEGER S
            End declarations
            Barrier
                  S = 0
            End barrier
              Critical LCK
                  S = S + 1
              End critical
            Join
                  END
        """) == []

    def test_me_guard_suppresses_the_race(self):
        assert codes("""
            Force P of NP ident ME
            Shared INTEGER S
            End declarations
                  IF (ME .EQ. 1) S = 1
            Join
                  END
        """) == []


class TestF002Structure:
    def test_unclosed_construct(self):
        d = only("""
            Force P of NP ident ME
            End declarations
            Barrier
            Join
                  END
        """, "F002")
        assert d.severity is Severity.ERROR
        assert d.line == 3

    def test_stray_closer(self):
        d = only("""
            Force P of NP ident ME
            End declarations
            End barrier
            Join
                  END
        """, "F002")
        assert d.line == 3

    def test_no_program_unit(self):
        d = only("      I = 1\n      END\n", "F002")
        assert "no Force program unit" in d.message


class TestF003Labels:
    def test_doall_label_mismatch(self):
        d = only("""
            Force P of NP ident ME
            Private INTEGER I
            End declarations
            Presched DO 10 I = 1, 4
                  CONTINUE
            20 End presched DO
            Join
                  END
        """, "F003")
        assert d.severity is Severity.ERROR
        assert d.line == 6
        assert "10" in d.message and "20" in d.message

    def test_matching_labels_are_clean(self):
        assert codes("""
            Force P of NP ident ME
            Private INTEGER I
            End declarations
            Presched DO 10 I = 1, 4
                  CONTINUE
            10 End presched DO
            Join
                  END
        """) == []


class TestF004BarrierNesting:
    def test_barrier_inside_critical(self):
        d = only("""
            Force P of NP ident ME
            End declarations
              Critical LCK
            Barrier
            End barrier
              End critical
            Join
                  END
        """, "F004")
        assert d.severity is Severity.ERROR
        assert d.line == 4

    def test_barrier_inside_doall(self):
        d = only("""
            Force P of NP ident ME
            Private INTEGER I
            End declarations
            Presched DO 10 I = 1, 4
            Barrier
            End barrier
            10 End presched DO
            Join
                  END
        """, "F004")
        assert d.line == 5


class TestF005Locks:
    def test_same_lock_self_nest_is_an_error(self):
        d = only("""
            Force P of NP ident ME
            End declarations
              Critical LCK
              Critical LCK
              End critical
              End critical
            Join
                  END
        """, "F005")
        assert d.severity is Severity.ERROR
        assert d.line == 4

    def test_abba_order_is_a_warning(self):
        found = [d for d in diags("""
            Force P of NP ident ME
            End declarations
              Critical A
              Critical B
              End critical
              End critical
              Critical B
              Critical A
              End critical
              End critical
            Join
                  END
        """) if d.code == "F005"]
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert "A" in found[0].message and "B" in found[0].message

    def test_consistent_order_is_clean(self):
        assert codes("""
            Force P of NP ident ME
            End declarations
              Critical A
              Critical B
              End critical
              End critical
              Critical A
              Critical B
              End critical
              End critical
            Join
                  END
        """) == []


class TestF006F007F008Async:
    def test_consume_of_non_async(self):
        d = only("""
            Force P of NP ident ME
            Shared INTEGER S
            Private INTEGER X
            End declarations
              Consume S into X
            Join
                  END
        """, "F006")
        assert d.severity is Severity.ERROR
        assert d.line == 5

    def test_void_of_non_async(self):
        d = only("""
            Force P of NP ident ME
            Shared INTEGER S
            End declarations
              Void S
            Join
                  END
        """, "F006")
        assert "Void" in d.message

    def test_consume_never_produced_is_a_warning(self):
        d = only("""
            Force P of NP ident ME
            Async INTEGER V
            Private INTEGER X
            End declarations
              Consume V into X
            Join
                  END
        """, "F007")
        assert d.severity is Severity.WARNING

    def test_produce_in_another_routine_counts(self):
        assert codes("""
            Force P of NP ident ME
            Async INTEGER V
            Private INTEGER X
            End declarations
              Consume V into X
            Forcecall FILL(1)
            Join
                  END
            Forcesub FILL(N) of NP ident ME
            Async INTEGER V
            End declarations
            Produce V = 1
                  RETURN
                  END
        """) == []

    def test_produce_into_non_async(self):
        d = only("""
            Force P of NP ident ME
            Shared INTEGER S
            End declarations
            Produce S = 1
            Join
                  END
        """, "F008")
        assert d.severity is Severity.ERROR
        assert d.line == 4


class TestF009F010Scope:
    def test_private_write_in_barrier_body(self):
        d = only("""
            Force P of NP ident ME
            Private INTEGER K
            End declarations
            Barrier
                  K = 0
            End barrier
            Join
                  END
        """, "F009")
        assert d.severity is Severity.WARNING
        assert d.line == 5

    def test_private_loop_index_in_barrier_is_clean(self):
        # DO headers bind the index; they are not assignments.
        assert codes("""
            Force P of NP ident ME
            Shared INTEGER S(4)
            Private INTEGER K
            End declarations
            Barrier
                  DO 10 K = 1, 4
                  S(K) = K
            10    CONTINUE
            End barrier
            Join
                  END
        """) == []

    def test_conflicting_redeclaration(self):
        d = only("""
            Force P of NP ident ME
            Shared INTEGER S
            Private INTEGER S
            End declarations
            Join
                  END
        """, "F010")
        assert d.severity is Severity.ERROR
        assert d.line == 3


class TestF011SilentKeywords:
    def test_column_one_critical_is_flagged(self):
        src = strip_margin("""
            Force P of NP ident ME
            Shared INTEGER S
            End declarations
        """) + "Critical LCK\n      S = 1\n" + strip_margin("""
              End critical
            Join
                  END
        """)
        found = [d for d in check_source(src) if d.code == "F011"]
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert found[0].line == 4
        assert "comment" in found[0].message

    def test_real_comments_are_not_flagged(self):
        assert codes("""
            C This is a genuine comment about the Critical section.
            Force P of NP ident ME
            End declarations
            Join
                  END
        """) == []


class TestF012Taskq:
    def test_askfor_and_putwork_on_undeclared_queue(self):
        found = [d for d in diags("""
            Force P of NP ident ME
            Shared INTEGER Q
            Private INTEGER W
            End declarations
            Askfor 10 W from Q
            Putwork Q = W - 1
            10 End askfor
            Join
                  END
        """) if d.code == "F012"]
        assert [d.line for d in found] == [5, 6]
        assert all(d.severity is Severity.ERROR for d in found)

    def test_declared_taskq_is_clean(self):
        assert codes("""
            Force P of NP ident ME
            Taskq Q(40)
            Private INTEGER W
            End declarations
            Askfor 10 W from Q
            Putwork Q = W - 1
            10 End askfor
            Join
                  END
        """) == []
