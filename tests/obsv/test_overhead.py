"""The overhead guard: observability must be near-free when off.

Wall-clock ratios on a shared CI host are noisy, so the guard uses
the bench suite's paired-rounds protocol (`repro.bench._paired_overhead`):
each round times bare and instrumented back-to-back and the *minimum*
ratio across rounds is asserted — noise only inflates a round's
ratio, so the minimum converges onto the true overhead from above.
The statement-level jacobi pipeline run is single-threaded and
stable; a real regression (a hot-path hook that costs percent-scale
time) raises every round's ratio and trips the bound.
"""

import time

from repro.bench import _example, _paired_overhead
from repro.machines import get_machine
from repro.obsv.metrics import registry_from_sim, validate_metrics
from repro.pipeline.compile import force_translate
from repro.pipeline.run import force_run

ROUNDS = 5
MAX_RATIO = 1.02


def _timed_run(translation, **kwargs):
    def timed() -> float:
        start = time.perf_counter()
        force_run(translation, 4, **kwargs)
        return time.perf_counter() - start
    return timed


class TestOverheadGuard:
    def setup_method(self):
        machine = get_machine("sequent-balance")
        self.translation = force_translate(_example("jacobi.frc"),
                                           machine)
        _timed_run(self.translation)()      # warm caches

    def test_trace_overhead_under_two_percent(self):
        bare = _timed_run(self.translation)
        traced = _timed_run(self.translation, trace=True)
        ratios = _paired_overhead(bare, traced, ROUNDS)
        assert ratios["min_ratio"] < MAX_RATIO, ratios

    def test_metrics_overhead_under_two_percent(self):
        bare = _timed_run(self.translation)

        def with_metrics() -> float:
            start = time.perf_counter()
            result = force_run(self.translation, 4)
            registry = registry_from_sim("sequent-balance", 4,
                                         result.stats_dict())
            assert validate_metrics(registry.as_dict()) == []
            return time.perf_counter() - start

        ratios = _paired_overhead(bare, with_metrics, ROUNDS)
        assert ratios["min_ratio"] < MAX_RATIO, ratios
