"""``force profile`` views: report, timeline, folded stacks."""

from repro.obsv.analyze import analyze_trace
from repro.obsv.profile import (
    folded_stacks,
    render_profile,
    utilization_timeline,
)
from repro.trace.events import TraceEvent


def _contended_events():
    """p-1 holds L for most of the run; p-2 waits for it."""
    return [
        TraceEvent(ts=0, proc="p-1", kind="critical", name="L",
                   op="acquire"),
        TraceEvent(ts=1, proc="p-2", kind="critical", name="L",
                   op="wait"),
        TraceEvent(ts=80, proc="p-1", kind="critical", name="L",
                   op="release"),
        TraceEvent(ts=80, proc="p-2", kind="critical", name="L",
                   op="grant"),
        TraceEvent(ts=100, proc="p-2", kind="critical", name="L",
                   op="release"),
    ]


class TestTimeline:
    def test_wait_heavy_columns_render_dots(self):
        analysis = analyze_trace(_contended_events())
        rows = utilization_timeline(analysis, cols=10)
        assert set(rows) == {"p-1", "p-2"}
        assert len(rows["p-2"]) == 10
        # p-2 spends 1..80 waiting: its row is mostly dots
        assert rows["p-2"].count(".") >= 6
        # p-1 is busy holding, then its lane ends: hashes then blanks
        assert rows["p-1"][0] == "#"
        assert rows["p-1"].rstrip(" ").count(".") == 0


class TestFoldedStacks:
    def test_format_contract(self):
        analysis = analyze_trace(_contended_events())
        folded = folded_stacks(analysis)
        assert folded.endswith("\n")
        lines = folded.splitlines()
        assert lines == sorted(lines)
        assert "p-2;wait;critical;L 79" in lines
        assert "p-1;hold;critical;L 80" in lines
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            assert int(weight) > 0        # flamegraph.pl requirement
            assert frames

    def test_native_weights_are_microseconds(self):
        events = [
            TraceEvent(ts=0.0, proc="force-1", kind="critical",
                       name="L", op="hold", phase="X", dur=0.002),
        ]
        folded = folded_stacks(analyze_trace(events))
        assert "force-1;hold;critical;L 2000" in folded


class TestRenderProfile:
    def test_report_sections(self):
        analysis = analyze_trace(_contended_events())
        report = render_profile(analysis)
        assert "=== force profile ===" in report
        assert "contention ranking" in report
        assert "critical:L" in report
        assert "utilization timeline" in report
        assert "critical path" in report
        assert "WARNING" not in report

    def test_dropped_events_warning(self):
        analysis = analyze_trace(_contended_events(),
                                 meta={"dropped_events": 7})
        report = render_profile(analysis)
        assert "WARNING: 7 event(s) were dropped" in report
        assert "--trace-buffer" in report

    def test_empty_trace_renders(self):
        report = render_profile(analyze_trace([]))
        assert "no construct activity" in report
