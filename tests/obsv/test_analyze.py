"""The trace analysis engine: spans, attribution, critical path."""

import pytest

from repro._util.text import strip_margin
from repro.machines import SEQUENT_BALANCE
from repro.obsv.analyze import analyze_trace, normalize_spans
from repro.pipeline.run import force_compile_and_run
from repro.runtime.force import Force
from repro.trace.events import TraceEvent


def _sim_lock_dance():
    """Two lanes contend for L: p-1 holds 0..10, p-2 waits 2..10."""
    return [
        TraceEvent(ts=0, proc="p-1", kind="critical", name="L",
                   op="acquire"),
        TraceEvent(ts=2, proc="p-2", kind="critical", name="L",
                   op="wait"),
        TraceEvent(ts=10, proc="p-1", kind="critical", name="L",
                   op="release"),
        TraceEvent(ts=10, proc="p-2", kind="critical", name="L",
                   op="grant"),
        TraceEvent(ts=15, proc="p-2", kind="critical", name="L",
                   op="release"),
    ]


class TestNormalizeSpans:
    def test_sim_instants_pair_into_spans(self):
        spans, meta = normalize_spans(_sim_lock_dance())
        assert meta.clock == "cycles"
        kinds = {(s.lane, s.op): (s.t0, s.t1) for s in spans}
        assert kinds[("p-1", "hold")] == (0.0, 10.0)
        assert kinds[("p-2", "wait")] == (2.0, 10.0)
        assert kinds[("p-2", "hold")] == (10.0, 15.0)
        assert meta.makespan == 15.0

    def test_native_spans_pass_through(self):
        events = [
            TraceEvent(ts=0.1, proc="force-1", kind="critical",
                       name="L", op="hold", phase="X", dur=0.5),
            TraceEvent(ts=0.2, proc="force-2", kind="barrier",
                       name="", op="wait", phase="X", dur=0.3),
        ]
        spans, meta = normalize_spans(events)
        assert meta.clock == "seconds"
        assert {(s.lane, s.op) for s in spans} == \
            {("force-1", "hold"), ("force-2", "wait")}
        # span end extends the lane bound past the start instant
        assert meta.lane_bounds["force-1"][1] == pytest.approx(0.6)

    def test_dangling_open_closes_at_lane_end(self):
        events = [
            TraceEvent(ts=0, proc="p-1", kind="sched",
                       name="('join', 1)", op="block"),
            TraceEvent(ts=9, proc="p-1", kind="sched", name="",
                       op="halt"),
        ]
        spans, _ = normalize_spans(events)
        assert spans[0].op == "wait"
        assert (spans[0].t0, spans[0].t1) == (0.0, 9.0)


class TestAttribution:
    def test_lane_wait_hold_compute_sum_to_active(self):
        analysis = analyze_trace(_sim_lock_dance())
        row = analysis.lanes["p-2"]
        assert row["wait"] == 8.0
        assert row["hold"] == 5.0
        assert row["compute"] == 0.0
        assert row["active"] == 13.0

    def test_contention_ranking_orders_by_wait(self):
        events = _sim_lock_dance() + [
            TraceEvent(ts=0, proc="p-3", kind="critical", name="M",
                       op="acquire"),
            TraceEvent(ts=1, proc="p-3", kind="critical", name="M",
                   op="release"),
        ]
        analysis = analyze_trace(events)
        assert analysis.constructs[0]["name"] == "L"
        assert analysis.constructs[0]["wait_total"] == 8.0

    def test_hold_histograms_cover_critical_names(self):
        analysis = analyze_trace(_sim_lock_dance())
        assert "L" in analysis.hold_histograms
        assert analysis.hold_histograms["L"].count == 2


class TestBarrierEpisodes:
    def test_native_episode_wait_spread(self):
        force = Force(4, trace=True)

        def program(force, me):
            if me == 1:
                total = 0
                for i in range(20_000):
                    total += i
            force.barrier()

        force.run(program)
        analysis = analyze_trace(force.trace_events())
        assert len(analysis.barrier_episodes) == 1
        row = analysis.barrier_episodes[0]
        assert row["waiters"] == 4
        # lane 1 arrives last: the spread is visible imbalance
        assert row["spread"] >= 0.0
        assert row["wait_max"] >= row["wait_min"]


class TestChunkStats:
    def test_native_chunks_per_lane(self):
        force = Force(2, trace=True)

        def program(force, me):
            for _i in force.selfsched_range("L1", 1, 10):
                pass
            force.barrier()

        force.run(program)
        analysis = analyze_trace(force.trace_events())
        row = analysis.chunks["L1"]
        assert row["indices"] == 10
        assert sum(row["per_lane"].values()) == 10


_CONTENDED = strip_margin("""
    Force CONTEND of NP ident ME
    Private INTEGER K, J, W
    Shared INTEGER SUM
    End declarations
    Barrier
          SUM = 0
    End barrier
    Selfsched DO 100 K = 1, 24
          Critical LCK
          W = 0
          DO 5 J = 1, 1600
            W = W + J
    5     CONTINUE
          SUM = SUM + W
          End critical
    100 End Selfsched DO
    Join
          END
""")


class TestCriticalPath:
    def test_contended_critical_dominates_makespan(self):
        """The acceptance pin: a deliberately contended critical
        section owns the critical path.

        24 indices each hold LCK for ~10k cycles; the holds serialize,
        so over half the makespan is one lane computing inside LCK
        while everyone else queues.  The backward walk must recover
        that — jumping driver → last summer at the join, then
        holder-to-holder along the lock queue.
        """
        result = force_compile_and_run(_CONTENDED, SEQUENT_BALANCE, 4,
                                       trace=True)
        analysis = analyze_trace(result.trace_events())
        path = analysis.critical_path
        assert path["shares"].get("critical", 0.0) >= 0.5
        assert path["by_name"]["critical:LCK"] >= 0.5
        assert path["coverage"] >= 0.9

    def test_segments_are_contiguous_oldest_first(self):
        result = force_compile_and_run(_CONTENDED, SEQUENT_BALANCE, 4,
                                       trace=True)
        analysis = analyze_trace(result.trace_events())
        segments = analysis.critical_path["segments"]
        assert segments
        assert segments[0][1] == analysis.t_start
        for before, after in zip(segments, segments[1:]):
            # each segment starts no earlier than the previous ends
            # (small tolerance: sim wake latency between lanes)
            assert after[1] >= before[2] - 2.0

    def test_uncontended_path_is_mostly_compute(self):
        source = strip_margin("""
            Force FREE of NP ident ME
            Private INTEGER K, J, W
            End declarations
            Presched DO 100 K = 1, 24
                  W = 0
                  DO 5 J = 1, 400
                    W = W + J
            5     CONTINUE
            100 End presched DO
            Join
                  END
        """)
        result = force_compile_and_run(source, SEQUENT_BALANCE, 4,
                                       trace=True)
        analysis = analyze_trace(result.trace_events())
        shares = analysis.critical_path["shares"]
        assert shares.get("critical", 0.0) < 0.1
        assert shares.get("compute", 0.0) >= 0.5

    def test_as_dict_serializes_segments(self):
        analysis = analyze_trace(_sim_lock_dance())
        doc = analysis.as_dict()
        assert doc["critical_path"]["segments"]
        segment = doc["critical_path"]["segments"][0]
        assert set(segment) == {"lane", "t0", "t1", "category", "name"}
