"""``force tune``: prediction units, schema, and E11 agreement."""

import pytest

from repro._util.text import strip_margin
from repro.machines import SEQUENT_BALANCE
from repro.obsv.tune import (
    DEFAULT_CANDIDATES,
    predict_makespan,
    tune_from_events,
    validate_recommendation,
)
from repro.pipeline.run import force_compile_and_run
from repro.trace.events import TraceEvent


class TestPredictMakespan:
    def test_cyclic_is_max_stride_sum(self):
        costs = [3.0, 1.0, 3.0, 1.0]
        # lanes get [3,3] and [1,1]
        assert predict_makespan(costs, 2, "cyclic") == 6.0

    def test_blocked_is_max_block_sum(self):
        costs = [3.0, 3.0, 1.0, 1.0]
        assert predict_makespan(costs, 2, "blocked") == 6.0

    def test_static_policies_discount_dispatch_overhead(self):
        costs = [10.0, 10.0]
        assert predict_makespan(costs, 2, "cyclic", ell=4.0) == 6.0

    def test_self_pays_lock_rounds(self):
        costs = [1.0] * 4
        with_lock = predict_makespan(costs, 2, "self", ell=1.0)
        without = predict_makespan(costs, 2, "self", ell=0.0)
        assert with_lock > without

    def test_chunked_fewer_dispatches_than_self(self):
        costs = [1.0] * 16
        self_t = predict_makespan(costs, 2, "self", ell=2.0)
        chunk_t = predict_makespan(costs, 2, "chunked", chunk=4,
                                   ell=2.0)
        assert chunk_t < self_t

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            predict_makespan([1.0], 2, "fifo")

    def test_empty_costs(self):
        assert predict_makespan([], 4, "self") == 0.0


class TestValidateRecommendation:
    def test_rejects_non_object(self):
        assert validate_recommendation([]) != []

    def test_rejects_bad_policy(self):
        doc = {"schema": 1, "generated_by": "force tune",
               "observations": {"makespan": 1.0, "busy_fraction": 0.5,
                                "labels": {}},
               "recommendations": {"sched": {
                   "policy": "fifo", "predicted_makespans": {}}}}
        assert any("policy" in e for e in validate_recommendation(doc))

    def test_chunked_needs_chunk(self):
        doc = {"schema": 1, "generated_by": "force tune",
               "observations": {"makespan": 1.0, "busy_fraction": 0.5,
                                "labels": {}},
               "recommendations": {"sched": {
                   "policy": "chunked", "chunk": None,
                   "predicted_makespans": {}}}}
        assert any("chunk" in e for e in validate_recommendation(doc))


class TestTuneDocument:
    def test_trace_without_loops_still_validates(self):
        events = [
            TraceEvent(ts=0, proc="p-1", kind="critical", name="L",
                       op="acquire"),
            TraceEvent(ts=5, proc="p-1", kind="critical", name="L",
                       op="release"),
        ]
        doc = tune_from_events(events, nproc=2, cpu_count=4,
                               source="t.jsonl")
        assert validate_recommendation(doc) == []
        assert doc["recommendations"]["sched"] is None
        assert doc["recommendations"]["spin_budget"]["mode"] in \
            ("spin", "block")
        assert doc["source"] == {"trace": "t.jsonl"}


# ----------------------------------------------------------------------
# the E11 agreement pin: the recommender must pick the config the
# measured ablation sweep (benchmarks/test_e11_scheduling_ablation.py)
# ranks best, from one selfscheduled observation run per load.
# ----------------------------------------------------------------------
NPROC = 4
N_ITER = 64

_TEMPLATE = """
    Force ABLA of NP ident ME
    Private INTEGER I, J, W
    Shared INTEGER SINK
    End declarations
    Barrier
          SINK = 0
    End barrier
    Selfsched DO 100 I = 1, {n_iter}
          {weight_code}
          DO 5 J = 1, W
            SINK = SINK
    5     CONTINUE
    100 End Selfsched DO
    Join
          END
"""

_LOADS = {
    "uniform": "W = 100",
    "triangular": f"W = 3 * ({N_ITER} - I)",
    "resonant": (f"IF (MOD(I, {NPROC}) .EQ. 1) THEN\n"
                 "            W = 800\n"
                 "          ELSE\n"
                 "            W = 4\n"
                 "          END IF"),
}

#: measured-best configs from the E11 sweep at NPROC=4, N_ITER=64
#: (cyclic wins balanced loads; stride resonance collapses cyclic,
#: blocked wins)
_MEASURED_BEST = {
    "uniform": ("cyclic", None),
    "triangular": ("cyclic", None),
    "resonant": ("blocked", None),
}

_CANDIDATES = (("cyclic", None), ("blocked", None), ("self", None),
               ("chunked", 4), ("guided", None))


class TestE11Agreement:
    @pytest.mark.parametrize("load", sorted(_LOADS))
    def test_recommender_matches_measured_sweep(self, load):
        source = strip_margin(_TEMPLATE).format(
            n_iter=N_ITER, weight_code=_LOADS[load])
        result = force_compile_and_run(source, SEQUENT_BALANCE, NPROC,
                                       trace=True)
        doc = tune_from_events(result.trace_events(), nproc=NPROC,
                               candidates=_CANDIDATES)
        assert validate_recommendation(doc) == []
        sched = doc["recommendations"]["sched"]
        assert sched is not None
        assert (sched["policy"], sched["chunk"]) == \
            _MEASURED_BEST[load], \
            f"{load}: predictions {sched['predicted_makespans']}"

    def test_default_candidates_cover_all_policies(self):
        assert {policy for policy, _ in DEFAULT_CANDIDATES} == \
            {"cyclic", "blocked", "self", "chunked", "guided"}
