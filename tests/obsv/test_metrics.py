"""The metrics registry: primitives, export schema, runtime wiring."""

import json
import pickle

import pytest

from repro._util.errors import ForceError
from repro.obsv.metrics import (
    CYCLES_BUCKETS,
    Counter,
    ForceMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_sim,
    validate_metrics,
)
from repro.runtime.force import Force


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_max_mode_merge(self):
        a, b = Gauge(mode="max"), Gauge(mode="max")
        a.set(3)
        b.set(7)
        a.merge(b)
        assert a.value == 7


class TestHistogram:
    def test_buckets_are_cumulative(self):
        hist = Histogram(buckets=(1.0, 10.0), reservoir=16)
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        data = hist.as_dict()
        assert data["buckets"]["1"] == 1
        assert data["buckets"]["10"] == 2
        assert data["buckets"]["+Inf"] == 3
        assert data["count"] == 3
        assert data["min"] == 0.5
        assert data["max"] == 50.0

    def test_reservoir_stays_bounded(self):
        hist = Histogram(reservoir=32)
        for i in range(10_000):
            hist.observe(float(i))
        assert len(hist.reservoir) <= 32
        assert hist.count == 10_000
        # decimation is deterministic: same input, same reservoir
        other = Histogram(reservoir=32)
        for i in range(10_000):
            other.observe(float(i))
        assert other.reservoir == hist.reservoir

    def test_quantiles_track_distribution(self):
        hist = Histogram(reservoir=512)
        for i in range(1, 101):
            hist.observe(float(i))
        assert 40 <= hist.quantile(0.5) <= 60
        assert hist.quantile(0.99) >= 90

    def test_merge_adds_counts(self):
        a, b = Histogram(), Histogram()
        a.observe(1e-5)
        b.observe(1e-2)
        a.merge(b)
        assert a.count == 2
        assert a.max == 1e-2


class TestRegistry:
    def test_labels_key_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("acq_total", help="x", labels={"name": "A"}).inc()
        registry.counter("acq_total", help="x",
                         labels={"name": "B"}).inc(2)
        doc = registry.as_dict()
        values = {tuple(m["labels"].items()): m["value"]
                  for m in doc["metrics"]}
        assert values[(("name", "A"),)] == 1
        assert values[(("name", "B"),)] == 2

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", help="x")
        with pytest.raises(ValueError):
            registry.gauge("thing", help="x")

    def test_export_validates(self):
        registry = MetricsRegistry()
        registry.counter("a_total", help="a").inc()
        registry.gauge("b", help="b").set(4)
        registry.histogram("c_seconds", help="c").observe(0.01)
        assert validate_metrics(registry.as_dict()) == []

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a_total", help="a").inc(3)
        registry.histogram("c_seconds", help="c").observe(0.02)
        doc = json.loads(json.dumps(registry.as_dict()))
        loaded = MetricsRegistry()
        loaded.load_dict(doc)
        assert loaded.as_dict() == registry.as_dict()

    def test_sorted_json_still_validates(self):
        # `force run --metrics x.json` writes with sort_keys=True,
        # which orders bucket bounds lexicographically ("+Inf" first,
        # "1e-05" after "10"); the validator must judge cumulativeness
        # in *numeric* bound order, not key order.
        registry = MetricsRegistry()
        hist = registry.histogram("c_seconds", help="c")
        for value in (5e-6, 3e-4, 0.002, 0.002, 0.7):
            hist.observe(value)
        doc = json.loads(json.dumps(registry.as_dict(), sort_keys=True))
        assert validate_metrics(doc) == []

    def test_merge_via_pickle(self):
        """The process backend's ship-and-merge path."""
        worker = MetricsRegistry()
        worker.counter("a_total", help="a").inc(2)
        clone = pickle.loads(pickle.dumps(worker))
        parent = MetricsRegistry()
        parent.counter("a_total", help="a").inc(1)
        parent.merge(clone)
        entry = parent.as_dict()["metrics"][0]
        assert entry["value"] == 3


class TestPrometheusExposition:
    def test_text_format_contract(self):
        registry = MetricsRegistry()
        registry.counter("critical_acquisitions_total",
                         help="Acquisitions",
                         labels={"name": "LCK"}).inc(5)
        hist = registry.histogram("critical_hold_seconds",
                                  help="Hold time")
        hist.observe(0.5e-3)
        hist.observe(2e-3)
        text = registry.to_prometheus()
        assert "# HELP force_critical_acquisitions_total " \
            "Acquisitions" in text
        assert "# TYPE force_critical_acquisitions_total counter" \
            in text
        assert 'force_critical_acquisitions_total{name="LCK"} 5' in text
        assert "# TYPE force_critical_hold_seconds histogram" in text
        assert 'force_critical_hold_seconds_bucket{le="0.001"} 1' in text
        assert 'force_critical_hold_seconds_bucket{le="+Inf"} 2' in text
        assert "force_critical_hold_seconds_count 2" in text

    def test_help_and_type_emitted_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("x_total", help="x", labels={"name": "A"}).inc()
        registry.counter("x_total", help="x", labels={"name": "B"}).inc()
        text = registry.to_prometheus()
        assert text.count("# TYPE force_x_total counter") == 1


def _program(force, me):
    with force.critical("acc"):
        counter = force.shared_counter("sum")
        counter.value += me
    force.barrier()
    for _i in force.selfsched_range("L10", 1, 20):
        pass
    force.barrier()


class TestForceWiring:
    def test_disabled_force_has_no_registry(self):
        force = Force(2)
        assert force.metrics_enabled is False
        with pytest.raises(ForceError):
            force.metrics_registry()

    def test_thread_backend_records_constructs(self):
        force = Force(4, metrics=True)
        force.run(_program)
        doc = force.metrics_registry(wall_s=0.5).as_dict()
        assert validate_metrics(doc) == []
        by_name = {}
        for metric in doc["metrics"]:
            by_name.setdefault(metric["name"], []).append(metric)
        acq = by_name["force_critical_acquisitions_total"][0]
        assert acq["labels"] == {"name": "acc"}
        assert acq["value"] == 4
        indices = by_name["force_selfsched_indices_total"][0]
        assert indices["value"] == 20
        assert by_name["force_barrier_episodes_total"][0]["value"] == 2
        assert by_name["force_processes"][0]["value"] == 4
        assert by_name["force_run_wall_seconds"][0]["value"] == 0.5

    def test_process_backend_merges_workers(self):
        force = Force(4, backend="process", metrics=True)
        force.run(_program)
        doc = force.metrics_registry().as_dict()
        assert validate_metrics(doc) == []
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["force_critical_acquisitions_total"]["value"] == 4
        assert by_name["force_selfsched_indices_total"]["value"] == 20


class TestSimIngestion:
    def test_stats_become_metrics(self):
        stats = {"sim": {"machine": "sequent-balance", "processes": 4,
                         "makespan": 1000, "utilization": 0.8,
                         "lock_acquisitions": 10,
                         "contended_acquisitions": 3,
                         "spin_cycles": 55, "context_switches": 7}}
        registry = registry_from_sim("sequent-balance", 4, stats)
        doc = registry.as_dict()
        assert validate_metrics(doc) == []
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["force_sim_makespan_cycles"]["value"] == 1000
        assert by_name["force_sim_lock_acquisitions_total"]["value"] == 10

    def test_cycle_buckets_used_for_events(self):
        from repro.trace.events import TraceEvent
        stats = {"sim": {"machine": "m", "processes": 2, "makespan": 10,
                         "utilization": 1.0, "lock_acquisitions": 0,
                         "contended_acquisitions": 0, "spin_cycles": 0,
                         "context_switches": 0}}
        events = [
            TraceEvent(ts=0, proc="p-1", kind="critical", name="L",
                       op="acquire"),
            TraceEvent(ts=5, proc="p-1", kind="critical", name="L",
                       op="release"),
        ]
        registry = registry_from_sim("m", 2, stats, events=events)
        doc = registry.as_dict()
        holds = [m for m in doc["metrics"]
                 if m["name"] == "force_critical_hold_cycles"]
        assert holds
        assert list(map(float, holds[0]["buckets"]))[:3] == \
            list(CYCLES_BUCKETS[:3])


class TestFacade:
    def test_critical_contention_paths(self):
        facade = ForceMetrics()
        facade.critical("L", 0.0, False, 0.001)
        facade.critical("L", 0.002, True, 0.001)
        doc = facade.registry.as_dict()
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["force_critical_acquisitions_total"]["value"] == 2
        assert by_name["force_critical_contended_total"]["value"] == 1
        assert by_name["force_critical_wait_seconds"]["count"] == 1
        assert by_name["force_critical_hold_seconds"]["count"] == 2
