"""Cross-process trace clocks: one epoch, monotonic merged spans.

Regression suite for the fork-worker clock-skew bug: each worker used
to stamp events against its *own* collector epoch (taken at worker
start), so merged traces interleaved lanes measured from different
zero points.  The fix anchors every worker's collector to an epoch the
parent stamps immediately before forking.
"""

from time import monotonic, sleep

from repro.obsv.analyze import normalize_spans
from repro.runtime import Force
from repro.trace.collector import TraceCollector


class TestCollectorEpoch:
    def test_explicit_epoch_anchors_timestamps(self):
        anchor = monotonic() - 1.0
        collector = TraceCollector(epoch=anchor)
        collector.record("sched", op="tick")
        # one second already elapsed relative to the anchor
        assert collector.events()[0].ts >= 1.0

    def test_default_epoch_is_now(self):
        collector = TraceCollector()
        collector.record("sched", op="tick")
        assert 0.0 <= collector.events()[0].ts < 1.0


def _two_phase_program(force, me):
    with force.critical("phase1"):
        sleep(0.002 * me)       # stagger lanes inside the phase
    force.barrier()
    with force.critical("phase2"):
        pass
    force.barrier()


class TestProcessBackendClock:
    def test_merged_spans_share_one_epoch(self):
        force = Force(3, backend="process", trace=True)
        force.run(_two_phase_program)
        events = force.trace_events()
        assert events

        # no negative timestamps: every lane is after the parent anchor
        assert all(event.ts >= 0.0 for event in events)

        # causality across lanes: the barrier orders phase1 before
        # phase2, so under a shared epoch every phase1 hold ends
        # before any phase2 hold starts — on every lane pair
        spans, _ = normalize_spans(events)
        phase1 = [s for s in spans
                  if s.name == "phase1" and s.op == "hold"]
        phase2 = [s for s in spans
                  if s.name == "phase2" and s.op == "hold"]
        assert len(phase1) == 3
        assert len(phase2) == 3
        assert max(s.t1 for s in phase1) <= min(s.t0 for s in phase2)

    def test_span_durations_non_negative(self):
        force = Force(3, backend="process", trace=True)
        force.run(_two_phase_program)
        spans, meta = normalize_spans(force.trace_events())
        assert spans
        assert all(span.dur >= 0.0 for span in spans)
        # lanes all start within the run window, not at fork-local zero
        assert meta.t_start >= 0.0
