"""Property-based tests (hypothesis) on core data structures."""

import re

from hypothesis import given, settings, strategies as st

from repro.fortran.values import FArray, FType, coerce_assign, format_value
from repro.m4 import M4Processor
from repro.m4.evalexpr import eval_expression
from repro.machines import MACHINES, MemoryLayout
from repro.machines.memory import VariableSpec
from repro.runtime import AsyncVariable
from repro.sedstage import SedProgram
from repro.sim import Cost, Scheduler


# ----------------------------------------------------------------------
# m4 engine
# ----------------------------------------------------------------------
# Uppercase-only text cannot collide with any (lowercase) macro or
# builtin name, so it must pass through the scanner verbatim.
plain_text = st.text(
    alphabet="ABCDEFGXYZ0123456789 .,;:+-*/=<>[]#@!%^&_|~?\n\t",
    max_size=120,
)


class TestM4Properties:
    @given(plain_text)
    @settings(max_examples=120)
    def test_text_without_macros_passes_through(self, text):
        m4 = M4Processor()
        assert m4.process(text) == text

    @given(plain_text)
    @settings(max_examples=120)
    def test_quoting_strips_exactly_one_level(self, text):
        m4 = M4Processor()
        assert m4.process("`" + text + "'") == text

    @given(st.text(alphabet="abcdefgh", min_size=1, max_size=10),
           plain_text)
    @settings(max_examples=100)
    def test_define_then_expand(self, name, body):
        # Body alphabet is disjoint from the name alphabet, so the
        # expansion cannot re-trigger itself.
        m4 = M4Processor()
        m4.define(name, body)
        assert m4.process(name) == body

    @given(st.integers(min_value=-10**9, max_value=10**9),
           st.integers(min_value=-10**9, max_value=10**9))
    @settings(max_examples=120)
    def test_eval_addition_matches_python(self, a, b):
        assert eval_expression(f"{a} + {b}") == a + b

    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=120)
    def test_eval_division_truncates_toward_zero(self, a, b):
        expected = int(a / b)
        assert eval_expression(f"{a} / {b}") == expected

    @given(st.integers(min_value=0, max_value=30))
    def test_incr_decr_roundtrip(self, n):
        m4 = M4Processor()
        assert m4.process(f"decr(incr({n}))") == str(n)


# ----------------------------------------------------------------------
# Fortran values
# ----------------------------------------------------------------------
bounds_strategy = st.lists(
    st.tuples(st.integers(-5, 5), st.integers(0, 6)).map(
        lambda pair: (pair[0], pair[0] + pair[1])),
    min_size=1, max_size=3)


class TestFArrayProperties:
    @given(bounds_strategy)
    @settings(max_examples=100)
    def test_allocate_size_matches_bounds(self, bounds):
        arr = FArray.allocate(FType.INTEGER, bounds)
        expected = 1
        for lo, hi in bounds:
            expected *= hi - lo + 1
        assert arr.size == expected

    @given(bounds_strategy, st.integers(-100, 100))
    @settings(max_examples=100)
    def test_set_get_roundtrip_at_lower_corner(self, bounds, value):
        arr = FArray.allocate(FType.INTEGER, bounds)
        corner = tuple(lo for lo, _ in bounds)
        arr.set(corner, value)
        assert arr.get(corner) == value

    @given(bounds_strategy)
    @settings(max_examples=60)
    def test_reinterpret_flat_aliases_storage(self, bounds):
        arr = FArray.allocate(FType.REAL, bounds)
        flat = arr.reinterpret([(1, arr.size)])
        flat.set((1,), 3.5)
        corner = tuple(lo for lo, _ in bounds)
        assert arr.get(corner) == 3.5

    @given(st.integers(-10**6, 10**6))
    def test_coerce_integer_identity(self, n):
        assert coerce_assign(FType.INTEGER, n) == n

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     width=32))
    def test_coerce_real_to_integer_truncates(self, x):
        assert coerce_assign(FType.INTEGER, float(x)) == int(x)

    @given(st.integers(-10**9, 10**9))
    def test_format_integer_parses_back(self, n):
        assert int(format_value(n)) == n


# ----------------------------------------------------------------------
# memory layout invariants on every machine
# ----------------------------------------------------------------------
specs_strategy = st.lists(
    st.tuples(st.sampled_from(["INTEGER", "REAL", "LOGICAL",
                               "DOUBLE PRECISION"]),
              st.integers(1, 500)),
    min_size=1, max_size=8)


class TestLayoutProperties:
    @given(specs_strategy, specs_strategy)
    @settings(max_examples=60)
    def test_invariants_hold_on_all_machines(self, shared_raw, private_raw):
        shared = [VariableSpec(f"S{i}", t, n)
                  for i, (t, n) in enumerate(shared_raw)]
        private = [VariableSpec(f"P{i}", t, n)
                   for i, (t, n) in enumerate(private_raw)]
        for machine in MACHINES.values():
            plan = MemoryLayout(machine).plan(shared, private)
            plan.check()   # raises on violation

    @given(specs_strategy)
    @settings(max_examples=40)
    def test_no_two_variables_overlap(self, raw):
        shared = [VariableSpec(f"S{i}", t, n)
                  for i, (t, n) in enumerate(raw)]
        machine = MACHINES["encore-multimax"]
        plan = MemoryLayout(machine).plan(shared, [])
        placements = sorted(plan.shared, key=lambda p: p.start)
        for a, b in zip(placements, placements[1:]):
            assert a.end <= b.start


# ----------------------------------------------------------------------
# scheduler determinism
# ----------------------------------------------------------------------
class TestSchedulerProperties:
    @given(st.lists(st.lists(st.integers(1, 50), min_size=1, max_size=6),
                    min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_makespan_is_max_of_process_sums(self, workloads):
        machine = MACHINES["sequent-balance"]
        sched = Scheduler(machine)

        def worker(costs):
            for c in costs:
                yield Cost(c)

        for costs in workloads:
            sched.spawn(worker(list(costs)))
        stats = sched.run()
        assert stats.makespan == max(sum(w) for w in workloads)

    @given(st.lists(st.integers(1, 30), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_total_busy_equals_all_costs(self, costs):
        machine = MACHINES["hep"]
        sched = Scheduler(machine)

        def worker(c):
            yield Cost(c)

        for c in costs:
            sched.spawn(worker(c))
        stats = sched.run()
        assert stats.total_busy == sum(costs)


# ----------------------------------------------------------------------
# sed engine
# ----------------------------------------------------------------------
class TestSedProperties:
    @given(st.text(alphabet=st.characters(codec="ascii",
                                          exclude_characters="\n\x00"),
                   max_size=60))
    @settings(max_examples=100)
    def test_nonmatching_script_preserves_lines(self, line):
        program = SedProgram("s/\\x00/NUL/")
        assert program.run(line + "\n") == line + "\n"

    @given(st.lists(st.text(alphabet="abcxyz ", max_size=20), max_size=8))
    @settings(max_examples=80)
    def test_delete_then_count(self, lines):
        text = "".join(line + "\n" for line in lines)
        program = SedProgram("/x/d")
        result = program.run(text)
        kept = [line for line in lines if "x" not in line]
        assert result == "".join(line + "\n" for line in kept)


# ----------------------------------------------------------------------
# async variable state machine
# ----------------------------------------------------------------------
class TestAsyncVarProperties:
    @given(st.lists(st.sampled_from(["produce", "consume", "void",
                                     "isfull"]), max_size=30))
    @settings(max_examples=100)
    def test_state_machine_matches_model(self, ops):
        var = AsyncVariable()
        model_full = False
        counter = 0
        for op in ops:
            if op == "produce":
                if model_full:
                    continue      # would block; skip in the model
                counter += 1
                var.produce(counter)
                model_full = True
            elif op == "consume":
                if not model_full:
                    continue
                assert var.consume() == counter
                model_full = False
            elif op == "void":
                var.void()
                model_full = False
            else:
                assert var.isfull == model_full
        assert var.isfull == model_full
