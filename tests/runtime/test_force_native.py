"""Tests for the native thread-based Force runtime."""

import threading

import pytest

from repro.runtime import Force, ForceProgramError
from repro._util.errors import ForceError


class TestBasics:
    def test_every_process_runs(self):
        seen = []
        lock = threading.Lock()

        def program(force, me):
            with lock:
                seen.append(me)

        Force(nproc=4, timeout=10).run(program)
        assert sorted(seen) == [1, 2, 3, 4]

    def test_single_process_force(self):
        result = []

        def program(force, me):
            result.append(me)

        Force(nproc=1, timeout=10).run(program)
        assert result == [1]

    def test_invalid_nproc(self):
        with pytest.raises(ForceError):
            Force(nproc=0)

    def test_exception_propagates_with_process_id(self):
        def program(force, me):
            if me == 3:
                raise ValueError("boom")

        with pytest.raises(ForceProgramError) as info:
            Force(nproc=4, timeout=10).run(program)
        assert info.value.me == 3
        assert isinstance(info.value.original, ValueError)

    def test_extra_args_passed(self):
        got = []
        lock = threading.Lock()

        def program(force, me, base):
            with lock:
                got.append(base + me)

        Force(nproc=2, timeout=10).run(program, 100)
        assert sorted(got) == [101, 102]


class TestBarrier:
    def test_barrier_synchronizes(self):
        force = Force(nproc=4, timeout=10)
        phase_one = []
        phase_two = []
        lock = threading.Lock()

        def program(force, me):
            with lock:
                phase_one.append(me)
            force.barrier()
            with lock:
                # Everyone finished phase one before anyone is here.
                phase_two.append(len(phase_one))

        force.run(program)
        assert all(count == 4 for count in phase_two)

    def test_barrier_section_runs_once(self):
        force = Force(nproc=4, timeout=10)
        sections = []

        def program(force, me):
            force.barrier_section(me, lambda: sections.append(me))

        force.run(program)
        assert len(sections) == 1

    def test_barrier_reusable_in_loop(self):
        force = Force(nproc=3, timeout=20)
        counter = []
        lock = threading.Lock()

        def program(force, me):
            for _round in range(5):
                force.barrier()
                with lock:
                    counter.append(_round)

        force.run(program)
        assert len(counter) == 15


class TestCritical:
    def test_mutual_exclusion(self):
        force = Force(nproc=8, timeout=20)
        cell = force.shared_counter("total")

        def program(force, me):
            for _ in range(500):
                with force.critical("sum"):
                    cell.value += 1

        force.run(program)
        assert cell.value == 8 * 500

    def test_named_criticals_are_independent(self):
        force = Force(nproc=2, timeout=10)
        order = []

        def program(force, me):
            name = "a" if me == 1 else "b"
            with force.critical(name):
                order.append(name)

        force.run(program)
        assert sorted(order) == ["a", "b"]


class TestWorkDistribution:
    def test_presched_partitions_exactly(self):
        force = Force(nproc=3, timeout=10)
        seen = []
        lock = threading.Lock()

        def program(force, me):
            for i in force.presched_range(me, 1, 20):
                with lock:
                    seen.append(i)

        force.run(program)
        assert sorted(seen) == list(range(1, 21))

    def test_presched_with_step(self):
        force = Force(nproc=2, timeout=10)
        seen = []
        lock = threading.Lock()

        def program(force, me):
            for i in force.presched_range(me, 10, 1, -3):
                with lock:
                    seen.append(i)

        force.run(program)
        assert sorted(seen) == [1, 4, 7, 10]

    def test_selfsched_partitions_exactly(self):
        force = Force(nproc=4, timeout=10)
        seen = []
        lock = threading.Lock()

        def program(force, me):
            for i in force.selfsched_range("loop", 1, 50):
                with lock:
                    seen.append(i)

        force.run(program)
        assert sorted(seen) == list(range(1, 51))

    def test_selfsched_reusable_across_iterations(self):
        force = Force(nproc=3, timeout=30)
        seen = []
        lock = threading.Lock()

        def program(force, me):
            for _sweep in range(4):
                for i in force.selfsched_range("inner", 1, 10):
                    with lock:
                        seen.append(i)

        force.run(program)
        assert len(seen) == 40
        assert sorted(set(seen)) == list(range(1, 11))

    def test_presched_pairs(self):
        force = Force(nproc=3, timeout=10)
        seen = []
        lock = threading.Lock()

        def program(force, me):
            for i, j in force.presched_pairs(me, range(3), range(4)):
                with lock:
                    seen.append((i, j))

        force.run(program)
        assert sorted(seen) == [(i, j) for i in range(3) for j in range(4)]

    def test_pcase_each_section_once(self):
        force = Force(nproc=3, timeout=10)
        ran = []
        lock = threading.Lock()

        def section(k):
            def body():
                with lock:
                    ran.append(k)
            return body

        def program(force, me):
            force.pcase(me, section(0), section(1), section(2), section(3))

        force.run(program)
        assert sorted(ran) == [0, 1, 2, 3]

    def test_pcase_conditional_section(self):
        force = Force(nproc=2, timeout=10)
        ran = []

        def program(force, me):
            force.pcase(me,
                        (lambda: False, lambda: ran.append("no")),
                        (lambda: True, lambda: ran.append("yes")))

        force.run(program)
        assert ran == ["yes"]


class TestSharedObjects:
    def test_shared_array(self):
        force = Force(nproc=4, timeout=10)

        def program(force, me):
            data = force.shared_array("grid", 40)
            for i in force.presched_range(me, 0, 39):
                data[i] = i * 2.0

        force.run(program)
        grid = force.shared_array("grid", 40)
        assert grid[10] == 20.0
        assert grid.sum() == sum(2 * i for i in range(40))

    def test_shared_counter_identity(self):
        force = Force(nproc=2, timeout=10)
        ids = []
        lock = threading.Lock()

        def program(force, me):
            counter = force.shared_counter("c")
            with lock:
                ids.append(id(counter))

        force.run(program)
        assert ids[0] == ids[1]
