"""Cancel-token poisoning through the log-depth barrier algorithms.

The central-counter and sense-reversing barriers funnel every arrival
through one condition variable, so poisoning them is structurally
easy.  Dissemination and tournament barriers instead park processes on
*per-process, per-round* flags — a death mid-round strands a partner
waiting on a signal that will never come.  These tests pin the faults
to specific processes and rounds and assert the poison (or the
construct deadline) still wins, at power-of-two and ragged widths.
"""

import time

import pytest

from repro.faults.plan import FaultPlan
from repro.runtime import (
    Force,
    ForceDeadlockError,
    ForceProgramError,
    ForceWorkerDied,
)

PROMPT = 2.5
LOG_BARRIERS = ("dissemination", "tournament")
STRUCTURED = (ForceProgramError, ForceDeadlockError, ForceWorkerDied)


def run_and_time(force, program, *exc_types):
    started = time.monotonic()
    with pytest.raises(exc_types or STRUCTURED) as info:
        force.run(program)
    return info.value, time.monotonic() - started


class TestRaiseBeforeEntry:
    @pytest.mark.parametrize("algorithm", LOG_BARRIERS)
    @pytest.mark.parametrize("nproc", [4, 5, 7, 8])
    def test_late_peer_failure_poisons_parked_rounds(self, algorithm,
                                                     nproc):
        force = Force(nproc=nproc, timeout=60,
                      barrier_algorithm=algorithm)

        def program(force, me):
            if me == nproc:
                time.sleep(0.05)   # peers park in their signal rounds
                raise ValueError("boom")
            force.barrier()

        error, elapsed = run_and_time(force, program,
                                      ForceProgramError)
        assert elapsed < PROMPT
        assert error.me == nproc
        assert isinstance(error.original, ValueError)


class TestDeathMidSequence:
    """An abrupt death (no cleanup, no poison raised by the dying
    frame) with peers already parked on the dead process's flags."""

    @pytest.mark.parametrize("algorithm", LOG_BARRIERS)
    @pytest.mark.parametrize("nproc", [4, 5])
    def test_partner_dies_between_episodes(self, algorithm, nproc):
        # Process 2 survives the first barrier, then dies entering the
        # second: its partners park on round signals it will never
        # send, with the parity/sense state already flipped by
        # episode 1.
        force = Force(nproc=nproc, timeout=60, construct_timeout=0.5,
                      barrier_algorithm=algorithm,
                      inject=FaultPlan.from_specs(
                          ["die@barrier.entry:proc=2,n=2"]))

        def program(force, me):
            force.barrier()
            force.barrier()

        error, elapsed = run_and_time(force, program)
        assert elapsed < PROMPT
        if isinstance(error, ForceDeadlockError):
            assert "barrier" in (error.construct or "")

    @pytest.mark.parametrize("algorithm", LOG_BARRIERS)
    def test_partner_dies_at_entry_on_a_ragged_width(self, algorithm):
        # nproc=5: the tournament pairing tree and dissemination
        # distance table are both irregular; a death at entry must
        # still surface as a structured error, never a hang.
        force = Force(nproc=5, timeout=60, construct_timeout=0.5,
                      barrier_algorithm=algorithm,
                      inject=FaultPlan.from_specs(
                          ["die@barrier.entry:proc=5"]))

        def program(force, me):
            force.barrier()

        _error, elapsed = run_and_time(force, program)
        assert elapsed < PROMPT

    @pytest.mark.parametrize("algorithm", LOG_BARRIERS)
    def test_releaser_dies_after_the_episode(self, algorithm):
        # barrier.episode fires only in the process that completed
        # the episode, after the wait returned: its peers can finish
        # the program, but the force must not report success.
        force = Force(nproc=4, timeout=60, construct_timeout=0.5,
                      barrier_algorithm=algorithm,
                      inject=FaultPlan.from_specs(
                          ["die@barrier.episode"]))

        def program(force, me):
            force.barrier()

        error, elapsed = run_and_time(force, program,
                                      ForceWorkerDied,
                                      ForceDeadlockError)
        assert elapsed < PROMPT
        if isinstance(error, ForceWorkerDied):
            assert "died" in str(error)


class TestRecoveryAfterPoison:
    @pytest.mark.parametrize("algorithm", LOG_BARRIERS)
    def test_force_is_reusable_after_a_poisoned_barrier(self,
                                                        algorithm):
        force = Force(nproc=4, timeout=60, construct_timeout=0.5,
                      barrier_algorithm=algorithm,
                      inject=FaultPlan.from_specs(
                          ["raise@barrier.entry:proc=1"]))

        def program(force, me):
            force.barrier()

        with pytest.raises(ForceProgramError):
            force.run(program)

        # A fresh force with the same algorithm and no faults works:
        # nothing about the poisoned episode leaked into class state.
        clean = Force(nproc=4, timeout=60,
                      barrier_algorithm=algorithm)
        counter_box = []

        def clean_program(force, me):
            total = force.shared_counter("total")
            force.barrier()
            with force.critical("sum"):
                total.value += me
            force.barrier()
            if me == 1:
                counter_box.append(total.value)

        clean.run(clean_program)
        assert counter_box == [sum(range(1, 5))]
