"""Scheduling policies for the selfscheduled DOALL.

``chunked`` and ``guided`` dispatch must hand out *exactly* the same
index set as the paper's one-at-a-time protocol — each index once,
none skipped, none duplicated — at every force width, and must compose
with the fault-injection and cancellation machinery exactly like the
original loop (a ``die`` mid-chunk strands the loop protocol, which
surviving peers detect as a dead worker).
"""

import time

import pytest

from repro._util.errors import ForceError
from repro.faults.plan import FaultPlan
from repro.runtime import Force, ForceProgramError, ForceWorkerDied

JOIN_TIMEOUT = 20.0


def collect_indices(nproc, first, last, step=1, **kwargs):
    """Run a selfsched loop; return (sorted indices, per-label stats)."""
    force = Force(nproc=nproc, timeout=JOIN_TIMEOUT, stats=True)
    seen = []

    def program(force, me):
        mine = [i for i in
                force.selfsched_range("L", first, last, step, **kwargs)]
        with force.critical("collect"):
            seen.extend(mine)

    force.run(program)
    empty = {"chunks": 0, "indices": 0, "max_chunk": 0}
    return sorted(seen), force.stats["selfsched"].get("L", empty)


class TestSameResultSet:
    @pytest.mark.parametrize("nproc", [1, 2, 4, 8])
    @pytest.mark.parametrize("kwargs", [
        {},
        {"chunk": 4},
        {"chunk": 16},
        {"chunk": 7},                    # does not divide the range
        {"schedule": "guided"},
    ], ids=["self", "chunk4", "chunk16", "chunk7", "guided"])
    def test_every_index_exactly_once(self, nproc, kwargs):
        indices, _stats = collect_indices(nproc, 1, 100, **kwargs)
        assert indices == list(range(1, 101))

    @pytest.mark.parametrize("nproc", [1, 2, 4])
    def test_negative_step_chunked(self, nproc):
        indices, _stats = collect_indices(nproc, 50, 1, -3, chunk=4)
        assert indices == sorted(range(50, 0, -3))

    @pytest.mark.parametrize("nproc", [1, 2, 4])
    def test_empty_range_chunked(self, nproc):
        indices, stats = collect_indices(nproc, 5, 4, 1, chunk=8)
        assert indices == []
        assert stats["indices"] == 0

    def test_chunk_larger_than_range(self):
        indices, stats = collect_indices(4, 1, 10, chunk=64)
        assert indices == list(range(1, 11))
        assert stats == {"chunks": 1, "indices": 10, "max_chunk": 10}


class TestDispatchAccounting:
    def test_chunks_equal_lock_rounds(self):
        # One chunk == one lock acquisition; chunked dispatch is
        # deterministic: ceil(iters / chunk) rounds regardless of
        # interleaving or force width.
        for nproc in (1, 2, 4, 8):
            _indices, stats = collect_indices(nproc, 1, 100, chunk=16)
            assert stats["chunks"] == 7          # ceil(100 / 16)
            assert stats["indices"] == 100
            assert stats["max_chunk"] == 16

    def test_self_policy_one_index_per_round(self):
        _indices, stats = collect_indices(4, 1, 40)
        assert stats == {"chunks": 40, "indices": 40, "max_chunk": 1}

    def test_guided_shrinks_and_covers(self):
        _indices, stats = collect_indices(4, 1, 100,
                                          schedule="guided")
        assert stats["indices"] == 100
        assert stats["chunks"] < 100             # bigger than one each
        assert stats["max_chunk"] >= 100 // 4 // 2

    def test_trace_records_chunk_size(self):
        force = Force(nproc=2, timeout=JOIN_TIMEOUT, trace=True)

        def program(force, me):
            for _i in force.selfsched_range("L", 1, 32, chunk=8):
                pass

        force.run(program)
        chunks = [e for e in force.trace_events()
                  if e.kind == "selfsched" and e.op == "chunk"]
        assert len(chunks) == 4
        assert all(e.args["size"] == 8 for e in chunks)
        assert sorted(e.args["index"] for e in chunks) == [1, 9, 17, 25]


class TestPolicyValidation:
    def test_unknown_schedule_rejected(self):
        force = Force(nproc=1, timeout=JOIN_TIMEOUT)

        def program(force, me):
            for _i in force.selfsched_range("L", 1, 10,
                                            schedule="dynamic"):
                pass

        with pytest.raises(ForceProgramError) as info:
            force.run(program)
        assert isinstance(info.value.original, ForceError)

    def test_zero_chunk_rejected(self):
        force = Force(nproc=1, timeout=JOIN_TIMEOUT)

        def program(force, me):
            for _i in force.selfsched_range("L", 1, 10, chunk=0):
                pass

        with pytest.raises(ForceProgramError):
            force.run(program)

    def test_self_with_chunk_contradiction_rejected(self):
        force = Force(nproc=1, timeout=JOIN_TIMEOUT)

        def program(force, me):
            for _i in force.selfsched_range("L", 1, 10, chunk=4,
                                            schedule="self"):
                pass

        with pytest.raises(ForceProgramError):
            force.run(program)

    def test_conflicting_policies_on_one_label_rejected(self):
        force = Force(nproc=2, timeout=JOIN_TIMEOUT)

        def program(force, me):
            kwargs = {"chunk": 16} if me == 1 else {}
            for _i in force.selfsched_range("L", 1, 100, **kwargs):
                pass

        with pytest.raises(ForceProgramError) as info:
            force.run(program)
        assert "conflicting policy" in str(info.value.original)


class TestFaultComposition:
    def test_die_mid_chunk_is_detected_by_peers(self):
        # The dead worker never completes the exit protocol; survivors
        # must get a structured dead-worker verdict, not a hang.
        force = Force(4, timeout=JOIN_TIMEOUT, construct_timeout=5.0,
                      inject=FaultPlan.from_specs(
                          ["die@selfsched.chunk/L"]))

        def program(force, me):
            for _i in force.selfsched_range("L", 1, 100, chunk=8):
                pass

        start = time.monotonic()
        with pytest.raises((ForceWorkerDied, ForceProgramError)):
            force.run(program)
        assert time.monotonic() - start < 10.0
        assert len(force.injected_faults()) == 1

    def test_raise_mid_chunk_cancels_peers(self):
        force = Force(4, timeout=JOIN_TIMEOUT,
                      inject=FaultPlan.from_specs(
                          ["raise@selfsched.chunk/L"]))

        def program(force, me):
            for _i in force.selfsched_range("L", 1, 100, chunk=8):
                pass

        with pytest.raises(ForceProgramError):
            force.run(program)
        assert len(force.injected_faults()) == 1

    def test_peer_failure_cancels_blocked_chunked_loop(self):
        # A process that dies before entering the loop poisons the
        # chunked entry protocol the same way it does the original.
        force = Force(nproc=3, timeout=JOIN_TIMEOUT)

        def program(force, me):
            if me == 3:
                time.sleep(0.05)
                raise RuntimeError("never joined the loop")
            for _i in force.selfsched_range("L", 1, 10, chunk=4):
                pass

        start = time.monotonic()
        with pytest.raises(ForceProgramError):
            force.run(program)
        assert time.monotonic() - start < 10.0

    def test_chunked_loop_reusable_after_clean_runs(self):
        force = Force(nproc=2, timeout=JOIN_TIMEOUT, stats=True)

        def program(force, me):
            for _round in range(3):
                for _i in force.selfsched_range("L", 1, 20, chunk=8):
                    pass

        force.run(program)
        stats = force.stats["selfsched"]["L"]
        assert stats["indices"] == 60
        assert stats["chunks"] == 9              # 3 rounds x ceil(20/8)
