"""Differential suite: the process backend against the thread backend.

The process backend's contract is "the thread backend's API over real
OS processes": for a corpus of Force programs the two backends must
produce identical observable results — program output, final shared
state, stats shape, error messages — and the process backend must
never leak a ``/dev/shm`` segment, whether the run exits normally,
dies from an injected fault, or is cancelled by a failing worker.

Programs here are **module-level functions** (the process backend
requires picklable programs) and report results through a scratch
file passed as an argument, which works identically on both vehicles.
"""

import glob
import pickle
import threading

import numpy as np
import pytest

from repro._util.errors import (
    ForceDeadlockError,
    ForceError,
    ForceWorkerDied,
)
from repro.faults.plan import FaultPlan
from repro.runtime import Force, ForceProgramError, ProcessForce

BACKENDS = ("thread", "process")
JOIN_TIMEOUT = 30.0


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/force-arena-*"))


def _run(backend, program, *args, nproc=3, **kwargs):
    kwargs.setdefault("timeout", JOIN_TIMEOUT)
    kwargs.setdefault("construct_timeout", 15.0)
    force = Force(nproc, backend=backend, **kwargs)
    force.run(program, *args)
    return force


# ----------------------------------------------------------------------
# corpus programs (module level: must pickle for the process backend)
# ----------------------------------------------------------------------

def critical_counter_program(force, me, path):
    counter = force.shared_counter("total")
    for _ in range(25):
        with force.critical("bump"):
            counter.value += me
    force.barrier()
    if me == 1:
        with open(path, "w") as sink:
            sink.write(f"total={int(counter.value)}\n")
    force.barrier()


def barrier_stage_program(force, me, path):
    stages = force.shared_array("stages", (4,), np.int64)
    for stage in range(4):
        with force.critical("stage"):
            stages[stage] += me * (stage + 1)
        force.barrier()
    force.barrier_section(
        me, lambda: open(path, "w").write(
            "stages=" + ",".join(str(int(v)) for v in stages) + "\n"))


def selfsched_program(force, me, path):
    squares = force.shared_array("squares", (40,), np.int64)
    for index in force.selfsched_range("sq", 0, 39, chunk=3,
                                       schedule="chunked"):
        squares[index] = index * index
    force.barrier_section(
        me, lambda: open(path, "w").write(
            f"sum={int(squares.sum())}\n"))


def askfor_tree_program(force, me, path):
    count = force.shared_counter("visited")
    pool = force.askfor("tree")
    if me == 1:
        pool.put(1)       # seed after creation: first-creator-wins
    force.barrier()
    for node in pool:
        with force.critical("visit"):
            count.value += 1
        child = int(2 * node)
        if child <= 15:
            pool.put(child)
            pool.put(child + 1)
    force.barrier_section(
        me, lambda: open(path, "w").write(
            f"visited={int(count.value)}\n"))


def async_pipeline_program(force, me, path):
    chan = force.async_var("chan")
    done = force.shared_counter("done")
    if me == 1:
        for value in range(1, 10):
            chan.produce(float(value))
        for _ in range(force.nproc - 1):
            chan.produce(-1.0)     # one stop sentinel per consumer
    else:
        while True:
            value = chan.consume()
            if value < 0:
                break
            with force.critical("sum"):
                done.value += value
    force.barrier_section(
        me, lambda: open(path, "w").write(
            f"done={int(done.value)}\n"))


def failing_program(force, me):
    force.barrier()
    if me == 2:
        raise ValueError("differential boom")
    force.barrier()


def lopsided_barrier_program(force, me):
    if me == 1:
        return          # never arrives: peers strand on the barrier
    force.barrier()


def consume_never_program(force, me):
    force.async_var("never").consume()   # stays empty: true deadlock


CORPUS = [
    (critical_counter_program, "total=150\n"),           # 25*(1+2+3)
    (barrier_stage_program, "stages=6,12,18,24\n"),
    (selfsched_program, f"sum={sum(i * i for i in range(40))}\n"),
    (askfor_tree_program, "visited=15\n"),
    (async_pipeline_program, "done=45\n"),
]


# ----------------------------------------------------------------------
# the differential proper
# ----------------------------------------------------------------------

class TestDifferential:
    @pytest.mark.parametrize(
        "program,expected", CORPUS,
        ids=[entry[0].__name__ for entry in CORPUS])
    def test_same_result_on_both_backends(self, program, expected,
                                          tmp_path):
        results = {}
        for backend in BACKENDS:
            path = tmp_path / f"{backend}.txt"
            _run(backend, program, str(path))
            results[backend] = path.read_text()
        assert results["thread"] == results["process"] == expected

    def test_error_messages_identical(self):
        messages = {}
        for backend in BACKENDS:
            with pytest.raises(ForceProgramError) as info:
                _run(backend, failing_program)
            assert info.value.me == 2
            messages[backend] = str(info.value)
        assert messages["thread"] == messages["process"]

    def test_deadlock_reports_same_construct(self):
        fields = {}
        for backend in BACKENDS:
            with pytest.raises(ForceDeadlockError) as info:
                _run(backend, consume_never_program,
                     construct_timeout=1.0)
            fields[backend] = (info.value.construct, info.value.timeout)
        assert fields["thread"] == fields["process"]

    def test_exited_peer_detected_promptly(self):
        # Where the thread backend can only ride out the construct
        # deadline (a returned thread gives no liveness signal), the
        # process backend sees the exited pid and poisons at once.
        with pytest.raises(ForceWorkerDied) as info:
            _run("process", lopsided_barrier_program)
        assert info.value.me == 1
        assert "barrier" in info.value.construct

    def test_stats_shape_identical(self, tmp_path):
        shapes = {}
        for backend in BACKENDS:
            force = _run(backend, askfor_tree_program,
                         str(tmp_path / f"{backend}.txt"), stats=True)
            stats = force.stats
            shapes[backend] = {
                "top": sorted(stats),
                "barriers": sorted(stats["barriers"]),
                "criticals": {name: sorted(entry)
                              for name, entry in
                              stats["criticals"].items()},
                "askfor": {name: sorted(entry)
                           for name, entry in
                           stats["askfor"].items()},
            }
        assert shapes["thread"] == shapes["process"]

    def test_askfor_totals_match(self, tmp_path):
        totals = {}
        for backend in BACKENDS:
            force = _run(backend, askfor_tree_program,
                         str(tmp_path / f"{backend}.txt"), stats=True)
            entry = force.stats["askfor"]["tree"]
            totals[backend] = (entry["total_put"], entry["total_got"])
        assert totals["thread"] == totals["process"] == (15, 15)

    def test_trace_covers_every_worker(self, tmp_path):
        force = _run("process", barrier_stage_program,
                     str(tmp_path / "out.txt"), trace=True)
        events = force.trace_events()
        lanes = {event.proc for event in events if event.proc}
        assert {f"force-{me}" for me in (1, 2, 3)} <= lanes


# ----------------------------------------------------------------------
# shared-memory lifecycle: no segment may survive any exit path
# ----------------------------------------------------------------------

class TestShmLifecycle:
    def test_unlinked_after_normal_exit(self, tmp_path):
        before = _shm_segments()
        _run("process", critical_counter_program,
             str(tmp_path / "out.txt"))
        assert _shm_segments() == before

    def test_unlinked_after_die_fault(self, tmp_path):
        before = _shm_segments()
        with pytest.raises(ForceWorkerDied):
            _run("process", barrier_stage_program,
                 str(tmp_path / "out.txt"),
                 inject=FaultPlan.from_specs(
                     ["die@barrier.entry:proc=2"]))
        assert _shm_segments() == before

    def test_unlinked_after_cancellation(self):
        before = _shm_segments()
        with pytest.raises(ForceProgramError):
            _run("process", failing_program)
        assert _shm_segments() == before

    def test_unlinked_after_deadlock_timeout(self):
        before = _shm_segments()
        with pytest.raises(ForceDeadlockError):
            _run("process", consume_never_program,
                 construct_timeout=1.0)
        assert _shm_segments() == before

    def test_unlinked_after_exited_peer(self):
        before = _shm_segments()
        with pytest.raises(ForceWorkerDied):
            _run("process", lopsided_barrier_program)
        assert _shm_segments() == before


# ----------------------------------------------------------------------
# picklable runtime state (the groundwork distributed execution needs)
# ----------------------------------------------------------------------

class TestPicklableState:
    def test_unpicklable_program_rejected_up_front(self):
        force = Force(2, backend="process", timeout=JOIN_TIMEOUT)
        before = _shm_segments()
        with pytest.raises(ForceError, match="picklable"):
            force.run(lambda force, me: None)
        assert _shm_segments() == before   # rejected before creation

    def test_unpicklable_argument_rejected_up_front(self):
        force = Force(2, backend="process", timeout=JOIN_TIMEOUT)
        with pytest.raises(ForceError, match="picklable"):
            force.run(critical_counter_program, threading.Lock())

    @pytest.mark.parametrize("program", [entry[0] for entry in CORPUS],
                             ids=[e[0].__name__ for e in CORPUS])
    def test_corpus_programs_round_trip(self, program):
        clone = pickle.loads(pickle.dumps(program))
        assert clone is program    # module-level: pickled by reference

    def test_common_descriptors_round_trip(self):
        # COMMON layouts travel to worker processes by pickle: the
        # specs and the machine's shared-region plan must survive.
        from repro.machines import ENCORE_MULTIMAX, MemoryLayout
        from repro.machines.memory import VariableSpec

        shared = [VariableSpec("NSHARE", "INTEGER"),
                  VariableSpec("A", "REAL", 1000)]
        private = [VariableSpec("TMP", "DOUBLE PRECISION", 10)]
        for spec in shared + private:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            assert clone.size == spec.size
        plan = MemoryLayout(ENCORE_MULTIMAX).plan(shared, private)
        clone = pickle.loads(pickle.dumps(plan))
        clone.check()
        assert clone.shared_start == plan.shared_start
        assert clone.shared_end == plan.shared_end
        assert clone.placement("A").start == plan.placement("A").start

    def test_fault_plan_round_trips(self):
        plan = FaultPlan.from_specs(
            ["die@barrier.entry:proc=2", "raise@critical.hold/sum"])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.as_dict() == plan.as_dict()

    def test_stats_and_trace_round_trip(self, tmp_path):
        force = _run("thread", askfor_tree_program,
                     str(tmp_path / "out.txt"), stats=True, trace=True)
        stats_clone = pickle.loads(pickle.dumps(force._stats))
        assert stats_clone.as_dict() == force._stats.as_dict()
        # and the published dict survives a from_dict/as_dict cycle
        from repro.runtime.stats import ForceStats
        assert ForceStats.from_dict(force.stats).as_dict() == \
            force.stats
        events = force.trace_events()
        clones = pickle.loads(pickle.dumps(events))
        assert [e.as_dict() for e in clones] == \
            [e.as_dict() for e in events]

    def test_structured_errors_round_trip(self):
        for error in (
                ForceWorkerDied(2, "askfor 'work'", detail="died"),
                ForceDeadlockError("stuck", construct="barrier",
                                   timeout=1.5),
                ForceProgramError(3, ValueError("boom"))):
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert str(clone) == str(error)
        clone = pickle.loads(pickle.dumps(
            ForceDeadlockError("stuck", construct="barrier",
                               timeout=1.5)))
        assert clone.construct == "barrier"
        assert clone.timeout == 1.5


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------

class TestBackendSelection:
    def test_force_constructor_dispatches(self):
        assert isinstance(Force(2, backend="process"), ProcessForce)
        assert not isinstance(Force(2, backend="thread"), ProcessForce)
        assert Force(2, backend="process").backend == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ForceError, match="backend"):
            Force(2, backend="mpi")

    def test_process_force_rejects_other_backend(self):
        with pytest.raises(ForceError):
            ProcessForce(2, backend="thread")


# ----------------------------------------------------------------------
# the hot-path lock-churn fix (satellite regression test)
# ----------------------------------------------------------------------

class TestCriticalLockChurn:
    def test_repeated_entries_reuse_one_lock(self, monkeypatch):
        """Re-entering a named critical must not allocate fresh locks.

        The regression being pinned: ``setdefault(name,
        threading.Lock())`` evaluates its default eagerly, so every
        pass through an already-registered section allocated (and
        discarded) a Lock while holding the registry lock.
        """
        force = Force(1, backend="thread", timeout=JOIN_TIMEOUT)
        real_lock = threading.Lock
        allocated = []

        def counting_lock():
            lock = real_lock()
            allocated.append(lock)
            return lock

        def program(force, me):
            monkeypatch.setattr(threading, "Lock", counting_lock)
            try:
                for _ in range(50):
                    with force.critical("hot"):
                        pass
            finally:
                monkeypatch.setattr(threading, "Lock", real_lock)

        force.run(program)
        assert len(allocated) == 1     # one allocation, 50 entries

    def test_lock_identity_stable_across_entries(self):
        force = Force(2, backend="thread", timeout=JOIN_TIMEOUT)
        seen = []
        guard = threading.Lock()

        def program(force, me):
            for _ in range(10):
                with force.critical("ident"):
                    pass
                with guard:
                    seen.append(force._criticals["ident"])

        force.run(program)
        assert len(set(map(id, seen))) == 1
