"""The overhead guard: checkpointing must be near-free when off.

Same paired-rounds protocol as the observability guard
(``tests/obsv/test_overhead.py``): each round times a bare run and an
instrumented run back-to-back, and the *minimum* ratio across rounds
is asserted — host noise only inflates a round's ratio, so the minimum
converges onto the true overhead from above.

The instrumented run arms a checkpoint policy at an interval the run
never reaches.  That is a strict upper bound on the checkpoint-off
cost (a ``None`` policy skips even the per-episode counting the armed
hook does), so bounding it below 2% bounds the off cost too.  The
cost of actually *writing* snapshots is deliberately not bounded
here — it is measured honestly by ``bench_checkpoint_overhead``.
"""

import time

from repro.bench import _paired_overhead, _wall_jacobi
from repro.runtime import Force
from repro.runtime.checkpoint import CheckpointPolicy

ROUNDS = 5
MAX_RATIO = 1.02
N, SWEEPS = 96, 8


def _timed_run(checkpoint=None):
    def timed() -> float:
        force = Force(2, timeout=120, checkpoint=checkpoint)
        start = time.perf_counter()
        force.run(_wall_jacobi, N, SWEEPS)
        return time.perf_counter() - start
    return timed


class TestCheckpointOverheadGuard:
    def test_armed_idle_hook_under_two_percent(self, tmp_path):
        bare = _timed_run()
        bare()                          # warm caches
        idle = _timed_run(CheckpointPolicy(10 ** 9, str(tmp_path)))
        ratios = _paired_overhead(bare, idle, ROUNDS)
        assert ratios["min_ratio"] < MAX_RATIO, ratios
        assert list(tmp_path.iterdir()) == []   # truly never fired
