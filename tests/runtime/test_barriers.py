"""Barrier algorithm tests ([AJ87] implementations)."""

import threading

import pytest

from repro.runtime import BARRIER_ALGORITHMS, make_barrier
from repro._util.errors import ForceError

ALGORITHMS = list(BARRIER_ALGORITHMS)


def run_threads(nproc, body):
    """Run body(me) on nproc threads, re-raising the first failure."""
    failures = []

    def wrap(me):
        try:
            body(me)
        except BaseException as exc:   # noqa: BLE001
            failures.append(exc)

    threads = [threading.Thread(target=wrap, args=(me,), daemon=True)
               for me in range(1, nproc + 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
        assert not t.is_alive(), "barrier deadlocked"
    if failures:
        raise failures[0]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("nproc", [1, 2, 3, 4, 7, 8])
class TestAllAlgorithms:
    def test_no_process_passes_early(self, algorithm, nproc):
        barrier = make_barrier(algorithm, nproc)
        arrived = []
        after = []
        lock = threading.Lock()

        def body(me):
            with lock:
                arrived.append(me)
            barrier.wait(me)
            with lock:
                after.append(len(arrived))

        run_threads(nproc, body)
        assert all(count == nproc for count in after)

    def test_reusable_across_episodes(self, algorithm, nproc):
        barrier = make_barrier(algorithm, nproc)
        progress = [0] * (nproc + 1)
        lock = threading.Lock()

        def body(me):
            for episode in range(6):
                barrier.wait(me)
                with lock:
                    progress[me] = episode + 1
                    # Nobody may be more than one episode ahead.
                    active = [p for p in progress[1:] if True]
                    assert max(active) - min(active) <= 1

        run_threads(nproc, body)
        assert all(p == 6 for p in progress[1:])

    def test_section_runs_exactly_once(self, algorithm, nproc):
        barrier = make_barrier(algorithm, nproc)
        sections = []
        lock = threading.Lock()

        def section():
            with lock:
                sections.append(1)

        def body(me):
            barrier.run_section(me, section)

        run_threads(nproc, body)
        assert len(sections) == 1

    def test_section_completes_before_release(self, algorithm, nproc):
        barrier = make_barrier(algorithm, nproc)
        state = {"section_done": False}
        violations = []

        def section():
            state["section_done"] = True

        def body(me):
            barrier.run_section(me, section)
            if not state["section_done"]:
                violations.append(me)

        run_threads(nproc, body)
        assert not violations


class TestEdgeCases:
    def test_unknown_algorithm(self):
        with pytest.raises(ForceError):
            make_barrier("quantum", 4)

    def test_zero_processes_rejected(self):
        with pytest.raises(ForceError):
            make_barrier("central-counter", 0)

    def test_wait_returns_true_exactly_once(self):
        barrier = make_barrier("central-counter", 5)
        winners = []
        lock = threading.Lock()

        def body(me):
            if barrier.wait(me):
                with lock:
                    winners.append(me)

        run_threads(5, body)
        assert len(winners) == 1
