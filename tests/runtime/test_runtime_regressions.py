"""Regression tests for native-runtime bugs fixed alongside the
cancellation layer: implicit barrier ids, selfsched early exit, and
Askfor holder/drain bookkeeping."""

import threading

import pytest

from repro.runtime import (
    BARRIER_ALGORITHMS,
    AskforMonitor,
    Force,
    make_barrier,
)
from repro._util.errors import ForceError


class TestImplicitBarrierMe:
    """``force.barrier()`` with no argument must derive the caller's
    process id — passing 0 aliased the last process's flag slots in the
    structured algorithms and deadlocked or released early."""

    @pytest.mark.parametrize("algorithm", list(BARRIER_ALGORITHMS))
    def test_noarg_barrier_synchronizes(self, algorithm):
        force = Force(nproc=4, timeout=20, barrier_algorithm=algorithm)
        phase_one = []
        after = []
        lock = threading.Lock()

        def program(force, me):
            for _round in range(3):
                with lock:
                    phase_one.append(me)
                force.barrier()          # no explicit me
                with lock:
                    after.append(len(phase_one))
                force.barrier()

        force.run(program)
        assert all(count % 4 == 0 for count in after)

    @pytest.mark.parametrize("algorithm", ["dissemination", "tournament"])
    def test_structured_barriers_reject_invalid_me(self, algorithm):
        barrier = make_barrier(algorithm, 4)
        with pytest.raises(ForceError):
            barrier.wait(0)
        with pytest.raises(ForceError):
            barrier.wait(5)

    def test_barrier_outside_force_requires_me(self):
        force = Force(nproc=2, timeout=10)
        with pytest.raises(ForceError):
            force.barrier()

    def test_single_process_barrier_outside_run(self):
        Force(nproc=1, timeout=10).barrier()


class TestSelfschedEarlyExit:
    def test_break_then_reuse_same_label(self):
        force = Force(nproc=3, timeout=20)
        second_sweep = []
        lock = threading.Lock()

        def program(force, me):
            for _i in force.selfsched_range("L", 1, 30):
                if me == 1:
                    break                 # early exit mid-loop
            for i in force.selfsched_range("L", 1, 10):
                with lock:
                    second_sweep.append(i)

        force.run(program)
        assert sorted(second_sweep) == list(range(1, 11))

    def test_every_process_breaks(self):
        force = Force(nproc=4, timeout=20)
        sweeps = []
        lock = threading.Lock()

        def program(force, me):
            for _sweep in range(3):
                for _i in force.selfsched_range("L", 1, 100):
                    break
                with lock:
                    sweeps.append(me)

        force.run(program)
        assert len(sweeps) == 12

    def test_single_process_break_and_reuse(self):
        force = Force(nproc=1, timeout=10)
        seen = []

        def program(force, me):
            for _i in force.selfsched_range("L", 1, 5):
                break
            for i in force.selfsched_range("L", 1, 3):
                seen.append(i)

        force.run(program)
        assert seen == [1, 2, 3]


class TestAskforBookkeeping:
    def test_holder_threads_initialised(self):
        # Holders are tracked by thread *object* (ident -> Thread) so
        # dead holders can be detected by liveness.
        monitor = AskforMonitor([1, 2])
        assert monitor._holder_threads == {}

    def test_terminated_pool_drains_remaining_items(self):
        monitor = AskforMonitor()
        assert monitor.get() == (False, None)       # terminates
        # Simulate an item that landed just before termination was
        # observed: the drain contract hands it out rather than
        # dropping it.
        monitor._items.append("straggler")
        got, item = monitor.get()
        assert got and item == "straggler"
        assert monitor.get() == (False, None)

    def test_put_after_termination_raises_not_drops(self):
        monitor = AskforMonitor()
        monitor.get()
        before = monitor.total_put
        with pytest.raises(ForceError):
            monitor.put("lost")
        assert monitor.total_put == before

    def test_counts_balance_at_termination(self):
        monitor = AskforMonitor([5])
        lock = threading.Lock()
        done = []

        def worker():
            for weight in monitor:
                if weight > 1:
                    monitor.put(weight - 1)
                    monitor.put(weight - 1)
                with lock:
                    done.append(weight)

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20)
            assert not t.is_alive()
        assert monitor.total_put == monitor.total_got == len(done)

    def test_max_depth_tracks_high_water_mark(self):
        monitor = AskforMonitor([1])
        assert monitor.max_depth == 1
        monitor.put(2)
        monitor.put(3)
        assert monitor.max_depth == 3
        monitor.get()
        monitor.put(4)                # depth back to 3, not a new high
        assert monitor.max_depth == 3
