"""Failure propagation: one process raises, blocked peers wake fast.

Every scenario runs with a generous force timeout (60s) and asserts
the failure surfaces in about a second — i.e. the poison flag, not the
join timeout, did the work — and that the error names the process that
actually failed.
"""

import threading
import time

import pytest

from repro.runtime import (
    BARRIER_ALGORITHMS,
    CancelToken,
    Force,
    ForceCancelled,
    ForceProgramError,
)
from repro._util.errors import ForceError

#: generous bound for "well under the 60s timeout"; the runtime's
#: cancellation poll interval is 20ms so normal propagation is ~ms.
PROMPT = 2.0


def assert_fails_fast(force, program, failing_me):
    started = time.monotonic()
    with pytest.raises(ForceProgramError) as info:
        force.run(program)
    elapsed = time.monotonic() - started
    assert elapsed < PROMPT, f"propagation took {elapsed:.2f}s"
    assert info.value.me == failing_me
    assert f"process {failing_me}" in str(info.value)
    return info.value


class TestBarrierPoisoning:
    @pytest.mark.parametrize("algorithm", list(BARRIER_ALGORITHMS))
    def test_peer_raises_while_others_at_barrier(self, algorithm):
        force = Force(nproc=4, timeout=60, barrier_algorithm=algorithm)

        def program(force, me):
            if me == 1:
                time.sleep(0.05)   # let the peers block first
                raise ValueError("boom")
            force.barrier()

        error = assert_fails_fast(force, program, 1)
        assert isinstance(error.original, ValueError)

    @pytest.mark.parametrize("algorithm", list(BARRIER_ALGORITHMS))
    def test_peer_raises_inside_barrier_section(self, algorithm):
        force = Force(nproc=3, timeout=60, barrier_algorithm=algorithm)

        def program(force, me):
            if me == 2:
                raise RuntimeError("early death")
            force.barrier_section(me, lambda: None)

        assert_fails_fast(force, program, 2)


class TestAsyncVarPoisoning:
    def test_consume_wait_wakes(self):
        force = Force(nproc=3, timeout=60)

        def program(force, me):
            channel = force.async_var("channel")
            if me == 1:
                time.sleep(0.05)
                raise KeyError("producer died")
            channel.consume()   # nothing is ever produced

        assert_fails_fast(force, program, 1)

    def test_produce_wait_wakes(self):
        force = Force(nproc=2, timeout=60)

        def program(force, me):
            channel = force.async_var("channel")
            if me == 1:
                channel.produce(1)
                channel.produce(2)   # stays full: consumer is dead
            else:
                raise RuntimeError("consumer died")

        assert_fails_fast(force, program, 2)


class TestAskforPoisoning:
    def test_get_wait_wakes(self):
        force = Force(nproc=3, timeout=60)
        holding = threading.Event()

        def program(force, me):
            if me == 1:
                pool = force.askfor("jobs", [1])
                pool.get()   # hold the only item forever
                holding.set()
                time.sleep(0.05)
                raise ValueError("holder died")
            holding.wait(5)
            # Peers block: pool empty but a holder exists.
            force.askfor("jobs").get()

        assert_fails_fast(force, program, 1)


class TestSelfschedPoisoning:
    def test_entry_exit_wait_wakes(self):
        # The failing process never enters the loop, so peers can
        # never complete the entry phase and block in the protocol.
        force = Force(nproc=3, timeout=60)

        def program(force, me):
            if me == 3:
                time.sleep(0.05)
                raise RuntimeError("never joined the loop")
            for _ in force.selfsched_range("L", 1, 10):
                pass

        assert_fails_fast(force, program, 3)


class TestCriticalPoisoning:
    def test_waiter_on_held_lock_wakes(self):
        force = Force(nproc=2, timeout=60)
        entered = threading.Event()

        def program(force, me):
            if me == 1:
                with force.critical("hot"):
                    entered.set()
                    raise ValueError("died holding the lock")
            else:
                entered.wait(5)
                with force.critical("hot"):
                    pass

        assert_fails_fast(force, program, 1)


class TestRunSemantics:
    def test_first_failure_wins_and_cancelled_peers_are_silent(self):
        force = Force(nproc=4, timeout=60)

        def program(force, me):
            if me == 2:
                raise ValueError("the real error")
            force.barrier()

        with pytest.raises(ForceProgramError) as info:
            force.run(program)
        assert info.value.me == 2
        assert isinstance(info.value.original, ValueError)

    def test_join_uses_a_single_deadline(self):
        # Four uncancellable sleepers with a 0.3s timeout must report
        # in ~0.3s, not 4 x 0.3s, and the error names the survivors.
        force = Force(nproc=4, timeout=0.3)

        def program(force, me):
            time.sleep(10)

        started = time.monotonic()
        with pytest.raises(ForceError) as info:
            force.run(program)
        elapsed = time.monotonic() - started
        assert elapsed < 1.0, f"join took {elapsed:.2f}s (per-thread?)"
        message = str(info.value)
        assert "still alive" in message
        assert "force-1" in message and "force-4" in message

    def test_force_is_reusable_after_a_failure(self):
        force = Force(nproc=3, timeout=60)

        def failing(force, me):
            if me == 1:
                raise ValueError("round one")
            force.barrier()

        def healthy(force, me):
            counter = force.shared_counter("ok")
            with force.critical():
                counter.value += 1
            force.barrier()

        with pytest.raises(ForceProgramError):
            force.run(failing)
        force.run(healthy)
        assert force.shared_counter("ok").value == 3


class TestCancelToken:
    def test_first_cancel_wins(self):
        token = CancelToken()
        first, second = ValueError("a"), ValueError("b")
        token.cancel(first)
        token.cancel(second)
        assert token.error is first
        with pytest.raises(ForceCancelled):
            token.check()

    def test_cancel_wakes_registered_condition(self):
        token = CancelToken()
        condition = threading.Condition()
        token.register(condition)
        woke = []

        def waiter():
            with condition:
                try:
                    token.wait_for(condition, lambda: False)
                except ForceCancelled:
                    woke.append(True)

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        token.cancel(ValueError("x"))
        thread.join(5)
        assert woke == [True]

    def test_wait_for_times_out_without_cancel(self):
        token = CancelToken()
        condition = threading.Condition()
        token.register(condition)
        with condition:
            assert not token.wait_for(condition, lambda: False,
                                      timeout=0.05)

    def test_wait_event_raises_on_cancel(self):
        token = CancelToken()
        event = threading.Event()
        token.cancel(ValueError("x"))
        with pytest.raises(ForceCancelled):
            token.wait_event(event)


class TestRevalidateBackoff:
    """Long parks back off: slices double up to a bounded cap.

    The regression this pins: an idle waiter used to wake a fixed 20
    times a second forever.  Slices must start at the configured
    ``revalidate_interval``, double per consecutive slice of one park
    (``REVALIDATE_GROWTH``) and stop growing at
    ``REVALIDATE_CAP_FACTOR`` times the interval — bounded wakeup rate,
    bounded detection latency, both asserted exactly.
    """

    class _Recording(threading.Condition):
        def __init__(self):
            super().__init__()
            self.slices = []

        def wait(self, timeout=None):
            self.slices.append(timeout)
            return False

    def _park(self, token, rounds):
        condition = self._Recording()
        token.register(condition)
        seen = []

        def predicate():
            seen.append(1)
            return len(seen) > rounds

        with condition:
            assert token.wait_for(condition, predicate)
        return condition.slices

    def test_slices_double_then_cap(self):
        from repro.runtime.cancel import (
            REVALIDATE_CAP_FACTOR,
            REVALIDATE_GROWTH,
        )
        assert REVALIDATE_GROWTH == 2.0
        assert REVALIDATE_CAP_FACTOR == 8.0
        slices = self._park(CancelToken(revalidate_interval=0.01), 7)
        assert slices == pytest.approx(
            [0.01, 0.02, 0.04, 0.08, 0.08, 0.08, 0.08])

    def test_each_park_restarts_the_backoff(self):
        token = CancelToken(revalidate_interval=0.01)
        first = self._park(token, 5)
        second = self._park(token, 5)
        assert first == second          # no state leaks across parks
        assert second[0] == pytest.approx(0.01)

    def test_explicit_timeouts_clamp_the_slice(self):
        token = CancelToken(revalidate_interval=0.05)
        condition = self._Recording()
        token.register(condition)
        with condition:
            assert not token.wait_for(condition, lambda: False,
                                      timeout=0.02)
        assert all(s <= 0.02 + 1e-9 for s in condition.slices if s)

    def test_interval_must_be_positive(self):
        with pytest.raises(ForceError):
            CancelToken(revalidate_interval=0.0)
        with pytest.raises(ForceError):
            Force(2, revalidate_interval=-1.0)

    def test_force_plumbs_the_knob_to_its_token(self):
        force = Force(2, revalidate_interval=0.125)
        assert force.revalidate_interval == 0.125
