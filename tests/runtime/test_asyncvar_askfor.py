"""Async variables, Askfor monitor and Resolve tests."""

import threading

import pytest

from repro.runtime import (
    AskforMonitor,
    AsyncArray,
    AsyncVariable,
    Force,
    Resolve,
)
from repro._util.errors import ForceError


class TestAsyncVariable:
    def test_initially_empty(self):
        assert not AsyncVariable().isfull

    def test_produce_then_consume(self):
        var = AsyncVariable()
        var.produce(42)
        assert var.isfull
        assert var.consume() == 42
        assert not var.isfull

    def test_copy_leaves_full(self):
        var = AsyncVariable()
        var.produce("x")
        assert var.copy() == "x"
        assert var.isfull

    def test_void_forces_empty(self):
        var = AsyncVariable()
        var.produce(1)
        var.void()
        assert not var.isfull

    def test_produce_blocks_until_consumed(self):
        var = AsyncVariable()
        var.produce(1)
        order = []

        def producer():
            var.produce(2)        # must wait for the consume below
            order.append("produced")

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert var.consume() == 1
        thread.join(10)
        assert order == ["produced"]
        assert var.consume() == 2

    def test_consume_blocks_until_produced(self):
        var = AsyncVariable()
        got = []

        def consumer():
            got.append(var.consume())

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        var.produce(99)
        thread.join(10)
        assert got == [99]

    def test_timeouts(self):
        var = AsyncVariable()
        with pytest.raises(ForceError):
            var.consume(timeout=0.05)
        var.produce(1)
        with pytest.raises(ForceError):
            var.produce(2, timeout=0.05)

    def test_pipeline_order_preserved(self):
        var = AsyncVariable()
        received = []

        def consumer():
            for _ in range(20):
                received.append(var.consume())

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        for i in range(20):
            var.produce(i)
        thread.join(10)
        assert received == list(range(20))


class TestAsyncArray:
    def test_per_element_state(self):
        arr = AsyncArray(4)
        arr.produce(2, "two")
        assert arr[2].isfull
        assert not arr[0].isfull
        assert arr.consume(2) == "two"

    def test_void_all(self):
        arr = AsyncArray(3)
        arr.produce(0, 1)
        arr.produce(1, 2)
        arr.void_all()
        assert not any(arr[i].isfull for i in range(3))

    def test_bad_size(self):
        with pytest.raises(ForceError):
            AsyncArray(0)


class TestAskfor:
    def test_static_items_all_processed(self):
        monitor = AskforMonitor(list(range(10)))
        seen = []
        lock = threading.Lock()

        def worker():
            for item in monitor:
                with lock:
                    seen.append(item)

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert sorted(seen) == list(range(10))

    def test_dynamic_tree_terminates(self):
        # Unit of weight w spawns two of w-1: 2^d - 1 nodes total.
        depth = 6
        monitor = AskforMonitor([depth])
        count = [0]
        lock = threading.Lock()

        def worker():
            for weight in monitor:
                if weight > 1:
                    monitor.put(weight - 1)
                    monitor.put(weight - 1)
                with lock:
                    count[0] += 1

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20)
            assert not t.is_alive(), "askfor failed to terminate"
        assert count[0] == 2 ** depth - 1

    def test_empty_pool_terminates_immediately(self):
        monitor = AskforMonitor()
        got, item = monitor.get()
        assert not got and item is None

    def test_put_after_done_rejected(self):
        monitor = AskforMonitor()
        monitor.get()
        with pytest.raises(ForceError):
            monitor.put(1)

    def test_counters(self):
        monitor = AskforMonitor([1, 2])
        assert monitor.total_put == 2
        monitor.get()
        assert monitor.total_got == 1

    def test_integration_with_force(self):
        force = Force(nproc=4, timeout=20)
        total = force.shared_counter("sum")

        def program(force, me):
            pool = force.askfor("work", [4])
            for weight in pool:
                if weight > 1:
                    pool.put(weight - 1)
                    pool.put(weight - 1)
                with force.critical():
                    total.value += 1

        force.run(program)
        assert total.value == 2 ** 4 - 1


class TestResolve:
    def test_partition_sizes(self):
        resolve = Resolve(8, {"io": 1, "compute": 3})
        assert resolve.size_of("io") + resolve.size_of("compute") == 8
        assert resolve.size_of("compute") == 6

    def test_every_component_nonempty(self):
        resolve = Resolve(3, {"a": 10, "b": 1, "c": 1})
        assert all(resolve.size_of(n) >= 1 for n in ("a", "b", "c"))

    def test_assignment_covers_all_processes(self):
        resolve = Resolve(7, {"x": 2, "y": 3})
        names = [resolve.component_of(me)[0] for me in range(1, 8)]
        assert names.count("x") + names.count("y") == 7

    def test_ranks_within_component(self):
        resolve = Resolve(6, {"x": 1, "y": 1})
        for name in ("x", "y"):
            ranks = [resolve.component_of(me)[1] for me in range(1, 7)
                     if resolve.component_of(me)[0] == name]
            assert sorted(ranks) == list(range(1, len(ranks) + 1))

    def test_too_few_processes(self):
        with pytest.raises(ForceError):
            Resolve(1, {"a": 1, "b": 1})

    def test_bad_weights(self):
        with pytest.raises(ForceError):
            Resolve(4, {"a": 0})
        with pytest.raises(ForceError):
            Resolve(4, {})

    def test_components_run_independently(self):
        force = Force(nproc=6, timeout=20)
        log = []
        lock = threading.Lock()

        def program(force, me):
            resolve = force.resolve("split", {"left": 1, "right": 1})
            name, rank = resolve.component_of(me)
            with lock:
                log.append((name, rank))
            resolve.component_barrier(me)
            resolve.unify(me)

        force.run(program)
        assert len(log) == 6
        assert {name for name, _ in log} == {"left", "right"}
