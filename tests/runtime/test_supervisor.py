"""Supervised execution: classification, backoff, resume, elasticity.

Unit tests drive :class:`SupervisedRun` through a scripted
``force_factory`` (each attempt's "force" succeeds or raises on cue),
so retry counts, backoff schedules, degrade decisions and facts-gated
refusals are asserted exactly and instantly.  The closing integration
test then runs a real thread-backend force under an injected death and
watches it recover.
"""

import pytest

from repro._util.errors import (
    ForceDeadlockError,
    ForceError,
    ForceWorkerDied,
)
from repro.faults.corpus import CORPUS
from repro.faults.injector import InjectionRecord
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obsv.metrics import ForceMetrics
from repro.runtime.checkpoint import (
    CheckpointPolicy,
    build_checkpoint,
    counter_entry,
    write_checkpoint,
)
from repro.runtime.supervisor import (
    RetryPolicy,
    SupervisedRun,
    classify_failure,
    nproc_portable,
    prune_fired,
)

#: a zero-delay policy so unit tests never sleep for real
FAST = dict(base_delay=0.0, max_delay=0.0)


class FakeForce:
    """One scripted attempt: run() raises `outcome` or succeeds."""

    def __init__(self, outcome, fired=()):
        self.outcome = outcome
        self._fired = list(fired)

    def run(self, program, *args):
        if self.outcome is not None:
            raise self.outcome

    def injected_faults(self):
        return list(self._fired)


class Script:
    """force_factory replaying a list of attempt outcomes."""

    def __init__(self, outcomes, fired=None):
        self.outcomes = list(outcomes)
        self.fired = list(fired or [[] for _ in outcomes])
        self.calls = []     # (nproc, restore, inject) per attempt

    def __call__(self, nproc, restore, inject):
        self.calls.append((nproc, restore, inject))
        return FakeForce(self.outcomes.pop(0), self.fired.pop(0))


def _supervise(script, *, nproc=4, retry=None, **kwargs):
    return SupervisedRun(lambda force, me: None, nproc=nproc,
                         retry=retry or RetryPolicy(**FAST),
                         force_factory=script, sleep=lambda s: None,
                         **kwargs)


died = ForceWorkerDied(2, "critical")
deadlocked = ForceDeadlockError("parked on barrier")


class TestClassification:
    def test_liveness_verdicts_are_transient(self):
        assert classify_failure(died) == "transient"
        assert classify_failure(deadlocked) == "transient"

    def test_everything_else_is_permanent(self):
        assert classify_failure(ValueError("bug")) == "permanent"
        assert classify_failure(ForceError("config")) == "permanent"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ForceError):
            RetryPolicy(retries=-1)
        with pytest.raises(ForceError):
            RetryPolicy(degrade_after=0)
        with pytest.raises(ForceError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)

    def test_delay_is_capped_doubling_with_bounded_jitter(self):
        import random
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4)
        rng = random.Random(0)
        for retry in range(1, 8):
            cap = min(0.4, 0.1 * 2 ** (retry - 1))
            delay = policy.delay(retry, rng)
            assert cap * 0.5 <= delay < cap

    def test_seeded_jitter_replays(self):
        def schedule():
            script = Script([died, died, died])
            run = _supervise(script, retry=RetryPolicy(
                retries=2, base_delay=0.01, seed=9))
            with pytest.raises(ForceWorkerDied):
                run.run()
            return [a.backoff for a in run.last_result.attempts]

        assert schedule() == schedule()


class TestRetryLoop:
    def test_clean_first_attempt(self):
        script = Script([None])
        result = _supervise(script).run()
        assert result.ok and result.retries == 0
        assert result.final_nproc == 4
        assert [a.outcome for a in result.attempts] == ["ok"]

    def test_transient_then_success(self):
        slept = []
        script = Script([died, None])
        run = SupervisedRun(lambda force, me: None, nproc=4,
                            retry=RetryPolicy(retries=3, base_delay=0.05),
                            force_factory=script, sleep=slept.append)
        result = run.run()
        assert result.ok and result.retries == 1
        assert [a.outcome for a in result.attempts] \
            == ["transient", "ok"]
        assert slept == [result.attempts[0].backoff]
        assert slept[0] > 0

    def test_retries_exhausted_reraises_the_last_failure(self):
        script = Script([died, deadlocked])
        with pytest.raises(ForceDeadlockError):
            _supervise(script, retry=RetryPolicy(retries=1,
                                                 **FAST)).run()
        assert len(script.calls) == 2

    def test_permanent_failures_reraise_immediately(self):
        script = Script([ValueError("program bug"), None])
        run = _supervise(script)
        with pytest.raises(ValueError):
            run.run()
        assert len(script.calls) == 1       # no retry burned
        assert run.last_result.attempts[0].outcome == "permanent"

    def test_fired_records_accumulate_across_attempts(self):
        hit = InjectionRecord(kind="die", site="critical.acquire",
                              name="sum", proc=2, occurrence=3)
        script = Script([died, None], fired=[[hit], []])
        run = _supervise(script)
        result = run.run()
        assert result.ok
        assert run.fired == [hit]


class TestElasticRestart:
    def test_degrade_schedule_sheds_one_worker_per_retry(self):
        script = Script([died, died, died, died])
        run = _supervise(script, nproc=4, min_nproc=2,
                         retry=RetryPolicy(retries=3, degrade_after=2,
                                           **FAST))
        with pytest.raises(ForceWorkerDied):
            run.run()
        assert [c[0] for c in script.calls] == [4, 4, 3, 2]
        assert run.last_result.degraded_restarts == 2
        assert run.last_result.final_nproc == 2

    def test_min_nproc_is_the_floor(self):
        script = Script([died] * 5)
        run = _supervise(script, nproc=4, min_nproc=3,
                         retry=RetryPolicy(retries=4, degrade_after=1,
                                           **FAST))
        with pytest.raises(ForceWorkerDied):
            run.run()
        assert [c[0] for c in script.calls] == [4, 3, 3, 3, 3]

    def test_facts_with_a_racy_doall_refuse_elasticity(self):
        facts = {"files": [{"doalls": [
            {"routine": "JAC", "label": "100", "race_free": False}]}]}
        script = Script([died, died, died])
        run = _supervise(script, nproc=4, min_nproc=2, facts=facts,
                         retry=RetryPolicy(retries=2, degrade_after=1,
                                           **FAST))
        assert not run.portable
        assert "JAC:100" in run.refusal_reason
        with pytest.raises(ForceWorkerDied):
            run.run()
        # retries happen, but always at full width
        assert [c[0] for c in script.calls] == [4, 4, 4]
        assert run.last_result.degraded_restarts == 0

    def test_race_free_facts_permit_elasticity(self):
        facts = {"files": [{"doalls": [
            {"routine": "JAC", "label": "100", "race_free": True}]}]}
        portable, why = nproc_portable(facts)
        assert portable and why == ""
        assert nproc_portable(None) == (True, "")

    def test_width_validation(self):
        with pytest.raises(ForceError):
            _supervise(Script([None]), nproc=0)
        with pytest.raises(ForceError):
            _supervise(Script([None]), nproc=2, min_nproc=3)


class TestResume:
    def _snapshot(self, directory, epoch=1):
        return write_checkpoint(str(directory), build_checkpoint(
            epoch=epoch, nproc=4, backend="thread",
            constructs=[counter_entry("total", 7)]))

    def test_retries_restore_the_newest_valid_snapshot(self, tmp_path):
        path = self._snapshot(tmp_path)
        script = Script([died, None])
        metrics = ForceMetrics()
        run = _supervise(script,
                         checkpoint=CheckpointPolicy(1, str(tmp_path)),
                         metrics=metrics)
        result = run.run()
        assert [c[1] for c in script.calls] == [None, path]
        assert result.recoveries == 1
        reg = metrics.registry
        assert reg.counter("retries_total").value == 1
        assert reg.counter("recoveries_total").value == 1
        assert reg.counter("degraded_restarts_total").value == 0

    def test_resume_true_restores_on_the_first_attempt(self, tmp_path):
        path = self._snapshot(tmp_path)
        script = Script([None])
        result = _supervise(
            script, resume=True,
            checkpoint=CheckpointPolicy(1, str(tmp_path))).run()
        assert script.calls[0][1] == path
        assert result.recoveries == 1

    def test_empty_checkpoint_dir_means_fresh_restart(self, tmp_path):
        script = Script([died, None])
        result = _supervise(
            script,
            checkpoint=CheckpointPolicy(1, str(tmp_path))).run()
        assert [c[1] for c in script.calls] == [None, None]
        assert result.recoveries == 0


class TestPruneFired:
    def _plan(self, *specs):
        return FaultPlan(seed=5, faults=tuple(specs))

    def test_a_fired_spec_is_consumed_once(self):
        spec = FaultSpec(kind="die", site="critical.acquire",
                         occurrence=2)
        other = FaultSpec(kind="raise", site="barrier.entry")
        hit = InjectionRecord(kind="die", site="critical.acquire",
                              name="sum", proc=3, occurrence=2)
        pruned = prune_fired(self._plan(spec, other), [hit])
        assert list(pruned.faults) == [other]
        assert pruned.seed == 5

    def test_unmatched_records_leave_the_plan_alone(self):
        spec = FaultSpec(kind="die", site="critical.acquire")
        miss = InjectionRecord(kind="die", site="barrier.entry",
                               name="", proc=1, occurrence=1)
        assert list(prune_fired(self._plan(spec), [miss]).faults) \
            == [spec]

    def test_duplicate_specs_consume_one_per_record(self):
        spec = FaultSpec(kind="die", site="critical.acquire")
        hit = InjectionRecord(kind="die", site="critical.acquire",
                              name="sum", proc=1, occurrence=1)
        pruned = prune_fired(self._plan(spec, spec), [hit])
        assert list(pruned.faults) == [spec]


class TestRealRecovery:
    def test_injected_death_recovers_on_the_thread_backend(
            self, tmp_path):
        entry = CORPUS["sum_critical"]
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(kind="die", site="critical.acquire",
                      occurrence=4),))
        run = SupervisedRun(
            entry.program, nproc=4, backend="thread",
            checkpoint=CheckpointPolicy(1, str(tmp_path)),
            retry=RetryPolicy(retries=2, **FAST), inject=plan,
            timeout=30.0, construct_timeout=10.0)
        result = run.run()
        assert result.ok and result.retries == 1
        assert [r.kind for r in run.fired] == ["die"]
        entry.check(result.force)
