"""Barrier-epoch checkpointing: documents, files, elastic restore.

The contract under test (see :mod:`repro.runtime.checkpoint`):
snapshots are versioned and integrity-hashed; corrupt files are
skipped, never fatal; and because a snapshot is taken at the barrier's
consistent cut — where no write is in flight and no process is named —
it re-materializes under an *arbitrary* worker count and the resumed
run finishes bit-identical to an uninterrupted one.

The corpus programs of :mod:`repro.faults.corpus` double as the
recovery corpus here: they follow the recoverable-program contract
(progress in shared constructs, phases idempotent from their opening
cut), so restoring any snapshot and re-running from the top must
reproduce the exact fault-free final state.
"""

import json
import os

import pytest

from repro.faults.corpus import CORPUS
from repro.runtime import Force
from repro.runtime.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    array_entry,
    build_checkpoint,
    checkpoint_filename,
    counter_entry,
    decode_array,
    latest_checkpoint,
    load_checkpoint,
    state_digest,
    validate_checkpoint,
    write_checkpoint,
)

np = pytest.importorskip("numpy")

JOIN_TIMEOUT = 30.0


def _force(nproc, backend="thread", **kwargs):
    kwargs.setdefault("timeout", JOIN_TIMEOUT)
    kwargs.setdefault("construct_timeout", 10.0)
    return Force(nproc, backend=backend, **kwargs)


def _doc(constructs=None, epoch=1, nproc=4):
    return build_checkpoint(epoch=epoch, nproc=nproc, backend="thread",
                            constructs=constructs
                            or [counter_entry("total", 7)])


class TestDocument:
    def test_arrays_round_trip_bit_identical(self):
        array = np.array([0.1, -0.0, 1e-300, np.pi, -7.5])
        entry = array_entry("u", array)
        restored = decode_array(entry)
        assert restored.dtype == array.dtype
        assert restored.tobytes() == array.tobytes()   # bit-for-bit

    def test_valid_document_validates_clean(self):
        assert validate_checkpoint(_doc()) == []

    def test_tampered_payload_fails_the_hash(self):
        doc = _doc()
        doc["payload"]["constructs"][0]["value"] = 8
        problems = validate_checkpoint(doc)
        assert any("sha256" in p for p in problems)

    def test_schema_and_shape_problems_are_reported(self):
        doc = _doc()
        doc["schema"] = 99
        assert any("schema" in p for p in validate_checkpoint(doc))
        doc = _doc([counter_entry("x", 1), counter_entry("x", 2)])
        assert any("duplicates" in p for p in validate_checkpoint(doc))
        doc = _doc()
        doc["payload"]["constructs"][0]["kind"] = "mystery"
        assert any("unknown kind" in p for p in validate_checkpoint(doc))
        assert validate_checkpoint("not a dict") \
            == ["checkpoint is not an object"]

    def test_digest_covers_state_not_provenance(self):
        # Same constructs captured at a different epoch under a
        # different nproc: same digest (the differential comparator).
        one = _doc(epoch=3, nproc=2)
        two = _doc(epoch=9, nproc=5)
        assert state_digest(one) == state_digest(two)
        assert state_digest(one) != state_digest(
            _doc([counter_entry("total", 8)]))


class TestFiles:
    def test_write_then_load_round_trips(self, tmp_path):
        doc = _doc(epoch=7)
        path = write_checkpoint(str(tmp_path), doc)
        assert os.path.basename(path) == checkpoint_filename(7)
        assert load_checkpoint(path) == doc

    def test_load_rejects_corruption(self, tmp_path):
        path = write_checkpoint(str(tmp_path), _doc())
        text = open(path).read().replace('"value": 7', '"value": 9')
        open(path, "w").write(text)
        with pytest.raises(CheckpointError, match="sha256"):
            load_checkpoint(path)

    def test_latest_skips_a_corrupt_newest(self, tmp_path):
        older = write_checkpoint(str(tmp_path), _doc(epoch=1))
        newest = write_checkpoint(str(tmp_path), _doc(epoch=2))
        open(newest, "w").write("{torn")
        assert latest_checkpoint(str(tmp_path)) == older
        open(older, "w").write("also torn")
        assert latest_checkpoint(str(tmp_path)) is None

    def test_latest_of_a_missing_directory_is_none(self, tmp_path):
        assert latest_checkpoint(str(tmp_path / "nowhere")) is None


class TestNativeCheckpointing:
    def test_every_barrier_episode_writes_a_valid_snapshot(
            self, tmp_path):
        entry = CORPUS["sum_critical"]
        force = _force(3, checkpoint=CheckpointPolicy(1, str(tmp_path)))
        force.run(entry.program)
        entry.check(force)
        names = sorted(os.listdir(tmp_path))
        assert names, "no snapshots written"
        for name in names:
            doc = load_checkpoint(str(tmp_path / name))
            assert doc["nproc"] == 3

    def test_every_n_thins_the_snapshot_stream(self, tmp_path):
        entry = CORPUS["jacobi"]
        force = _force(3, checkpoint=CheckpointPolicy(3, str(tmp_path)))
        force.run(entry.program)
        epochs = [load_checkpoint(str(tmp_path / name))["epoch"]
                  for name in sorted(os.listdir(tmp_path))]
        assert epochs and all(epoch % 3 == 0 for epoch in epochs)

    def test_restore_resumes_to_the_fault_free_state(self, tmp_path):
        entry = CORPUS["jacobi"]
        reference = _force(4)
        reference.run(entry.program)
        oracle = state_digest(reference.capture_state())

        checkpointed = _force(4, checkpoint=CheckpointPolicy(
            1, str(tmp_path)))
        checkpointed.run(entry.program)
        snapshots = sorted(os.listdir(tmp_path))
        # resume from a mid-run cut, not the final one
        middle = str(tmp_path / snapshots[len(snapshots) // 2])
        resumed = _force(4, restore=middle)
        resumed.run(entry.program)
        entry.check(resumed)
        assert state_digest(resumed.capture_state()) == oracle

    @pytest.mark.parametrize("width", [1, 2, 5])
    def test_restore_is_nproc_independent(self, width, tmp_path):
        # A snapshot from a 4-wide run resumes under any width and
        # still lands on the fault-free answer, bit-for-bit.
        entry = CORPUS["sum_critical"]
        reference = _force(4)
        reference.run(entry.program)
        oracle = state_digest(reference.capture_state())

        checkpointed = _force(4, checkpoint=CheckpointPolicy(
            1, str(tmp_path)))
        checkpointed.run(entry.program)
        middle = str(tmp_path / sorted(os.listdir(tmp_path))[0])
        resumed = _force(width, restore=middle)
        resumed.run(entry.program)
        entry.check(resumed)
        assert state_digest(resumed.capture_state()) == oracle

    def test_restored_run_continues_the_epoch_count(self, tmp_path):
        entry = CORPUS["sum_critical"]
        first = _force(3, checkpoint=CheckpointPolicy(1, str(tmp_path)))
        first.run(entry.program)
        newest = latest_checkpoint(str(tmp_path))
        resumed = _force(3, restore=newest,
                         checkpoint=CheckpointPolicy(1, str(tmp_path)))
        resumed.run(entry.program)
        top = load_checkpoint(latest_checkpoint(str(tmp_path)))
        assert top["epoch"] >= load_checkpoint(newest)["epoch"]

    def test_restore_rejects_an_invalid_document(self):
        with pytest.raises(CheckpointError, match="invalid"):
            _force(2, restore={"schema": 0})

    def test_policy_validation(self):
        with pytest.raises(CheckpointError):
            CheckpointPolicy(0, "/tmp/x")
        with pytest.raises(CheckpointError):
            CheckpointPolicy(1, "")


class TestProcessCheckpointing:
    def test_process_backend_round_trips_bit_identical(self, tmp_path):
        entry = CORPUS["sum_critical"]
        first = _force(3, backend="process",
                       checkpoint=CheckpointPolicy(1, str(tmp_path)))
        first.run(entry.program)
        oracle = state_digest(first.capture_state())
        newest = latest_checkpoint(str(tmp_path))
        assert newest is not None

        resume_dir = tmp_path / "resumed"
        resumed = _force(2, backend="process", restore=newest,
                         checkpoint=CheckpointPolicy(1, str(resume_dir)))
        resumed.run(entry.program)
        assert state_digest(resumed.capture_state()) == oracle
        # post-run reads go through a restore view (the arena is gone)
        entry.check(Force(2, restore=resumed.capture_state()))
