"""ForceStats collection and the shared stats report format."""

import pytest

from repro.runtime import Force, ForceStats, render_stats
from repro._util.errors import ForceError


def jacobi_like(force, me):
    n = 32
    u = force.shared_array("u", n)
    unew = force.shared_array("unew", n)
    force.barrier_section(me, lambda: None)
    for _sweep in range(4):
        for i in force.presched_range(me, 1, n - 2):
            unew[i] = 0.5 * (u[i - 1] + u[i + 1])
        force.barrier()
        for i in force.presched_range(me, 1, n - 2):
            u[i] = unew[i]
        force.barrier()


class TestCollection:
    def test_disabled_by_default(self):
        force = Force(nproc=2, timeout=10)
        force.run(lambda force, me: force.barrier())
        assert force.stats is None
        with pytest.raises(ForceError):
            force.stats_report()

    def test_barrier_episodes_and_waits(self):
        force = Force(nproc=3, timeout=30, stats=True)
        force.run(jacobi_like)
        stats = force.stats
        barriers = stats["barriers"]
        # 1 barrier_section + 4 sweeps x 2 barriers = 9 episodes.
        assert barriers["episodes"] == 9
        assert barriers["wait"]["count"] == 9 * 3
        assert barriers["wait"]["max_s"] >= barriers["wait"]["min_s"]

    def test_critical_contention_per_name(self):
        force = Force(nproc=4, timeout=30, stats=True)

        def program(force, me):
            counter = force.shared_counter("c")
            for _ in range(200):
                with force.critical("hot"):
                    counter.value += 1
            with force.critical("cold"):
                pass

        force.run(program)
        criticals = force.stats["criticals"]
        assert criticals["hot"]["acquisitions"] == 4 * 200
        assert criticals["cold"]["acquisitions"] == 4
        assert set(criticals) == {"hot", "cold"}
        assert force.shared_counter("c").value == 800

    def test_selfsched_chunks_per_label(self):
        force = Force(nproc=3, timeout=30, stats=True)

        def program(force, me):
            for _i in force.selfsched_range("sweep", 1, 40):
                pass
            for _i in force.selfsched_range("tail", 1, 7):
                pass

        force.run(program)
        assert force.stats["selfsched"] == {
            "sweep": {"chunks": 40, "indices": 40, "max_chunk": 1},
            "tail": {"chunks": 7, "indices": 7, "max_chunk": 1},
        }

    def test_askfor_traffic(self):
        force = Force(nproc=3, timeout=30, stats=True)

        def program(force, me):
            pool = force.askfor("jobs", [4] if me == 1 else None)
            for weight in pool:
                if weight > 1:
                    pool.put(weight - 1)
                    pool.put(weight - 1)

        force.run(program)
        jobs = force.stats["askfor"]["jobs"]
        assert jobs["total_put"] == jobs["total_got"] == 2 ** 4 - 1
        assert jobs["max_depth"] >= 1

    def test_asyncvar_blocked_time(self):
        force = Force(nproc=2, timeout=30, stats=True)

        def program(force, me):
            channel = force.async_var("channel")
            if me == 1:
                import time
                time.sleep(0.05)
                channel.produce(1)
            else:
                channel.consume()

        force.run(program)
        channel = force.stats["asyncvar"]["channel"]
        assert channel["count"] >= 1
        assert channel["total_s"] >= 0.04

    def test_stats_reset_between_runs(self):
        force = Force(nproc=2, timeout=10, stats=True)
        force.run(lambda force, me: force.barrier())
        assert force.stats["barriers"]["episodes"] == 1
        force.run(lambda force, me: None)
        assert force.stats["barriers"]["episodes"] == 0


class TestRendering:
    def test_report_has_sections(self):
        force = Force(nproc=3, timeout=30, stats=True)

        def program(force, me):
            counter = force.shared_counter("c")
            for _i in force.selfsched_range("L", 1, 10):
                with force.critical("sum"):
                    counter.value += 1
            force.barrier()

        force.run(program)
        report = force.stats_report()
        assert "--- barriers ---" in report
        assert "--- critical sections ---" in report
        assert "--- selfscheduled loops ---" in report
        assert "10 chunks" in report
        assert "10 indices" in report

    def test_render_accepts_sim_section(self):
        report = render_stats({"sim": {
            "machine": "Test Machine", "processes": 4, "makespan": 100,
            "utilization": 0.5, "lock_acquisitions": 10,
            "contended_acquisitions": 2, "spin_cycles": 7,
            "context_switches": 3,
        }})
        assert "--- simulation ---" in report
        assert "makespan:            100 cycles" in report

    def test_render_skips_absent_sections(self):
        assert render_stats({}) == ""

    def test_force_stats_object_renders(self):
        stats = ForceStats(2)
        stats.record_barrier_wait(0.001)
        stats.record_barrier_episode()
        assert "episodes:            1" in stats.render()
