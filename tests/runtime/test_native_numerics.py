"""Native-runtime numerical kernels validated against numpy.

The same workloads the simulated pipeline runs (Jacobi, LU, dot
product) written against the Python Force API with real threads —
demonstrating that the programming model carries over and stays
correct under genuine concurrency.
"""

import numpy as np
import pytest

from repro.runtime import Force


class TestNativeJacobi:
    @pytest.mark.parametrize("nproc", [1, 2, 4])
    def test_matches_numpy(self, nproc):
        n, sweeps = 48, 25
        force = Force(nproc=nproc, timeout=60)

        def program(force, me):
            u = force.shared_array("u", n)
            unew = force.shared_array("unew", n)

            def init():
                u[0] = u[-1] = 100.0

            force.barrier_section(me, init)
            for _sweep in range(sweeps):
                for i in force.presched_range(me, 1, n - 2):
                    unew[i] = 0.5 * (u[i - 1] + u[i + 1])
                force.barrier()
                for i in force.presched_range(me, 1, n - 2):
                    u[i] = unew[i]
                force.barrier()

        force.run(program)

        expected = np.zeros(n)
        expected[0] = expected[-1] = 100.0
        for _ in range(sweeps):
            nxt = expected.copy()
            nxt[1:-1] = 0.5 * (expected[:-2] + expected[2:])
            expected = nxt
        np.testing.assert_allclose(force.shared_array("u", n), expected)


class TestNativeLU:
    @pytest.mark.parametrize("nproc", [1, 3, 4])
    def test_matches_numpy(self, nproc):
        n = 10
        force = Force(nproc=nproc, timeout=60)

        def make_matrix():
            a = np.empty((n, n))
            for i in range(n):
                for j in range(n):
                    a[i, j] = 1.0 / (i + j + 2) + (n if i == j else 0.0)
            return a

        def program(force, me):
            a = force.shared_array("a", (n, n))

            def init():
                a[...] = make_matrix()

            force.barrier_section(me, init)
            for k in range(n - 1):
                for i in force.presched_range(me, k + 1, n - 1):
                    a[i, k] /= a[k, k]
                    a[i, k + 1:] -= a[i, k] * a[k, k + 1:]
                force.barrier()

        force.run(program)

        expected = make_matrix()
        for k in range(n - 1):
            expected[k + 1:, k] /= expected[k, k]
            expected[k + 1:, k + 1:] -= np.outer(expected[k + 1:, k],
                                                 expected[k, k + 1:])
        np.testing.assert_allclose(force.shared_array("a", (n, n)),
                                   expected, rtol=1e-12)


class TestNativeDot:
    def test_selfsched_reduction(self):
        n = 300
        force = Force(nproc=4, timeout=60)

        def program(force, me):
            x = force.shared_array("x", n)
            y = force.shared_array("y", n)
            result = force.shared_counter("dot", 0.0)

            def init():
                x[:] = np.arange(1, n + 1)
                y[:] = 2.0

            force.barrier_section(me, init)
            partial = 0.0
            for i in force.selfsched_range("dotloop", 0, n - 1):
                partial += x[i] * y[i]
            with force.critical("reduce"):
                result.value += partial
            force.barrier()

        force.run(program)
        expected = float(np.arange(1, n + 1) @ (2.0 * np.ones(n)))
        assert force.shared_counter("dot").value == pytest.approx(expected)


class TestNativePipelineThroughput:
    def test_many_items_preserved_in_order(self):
        items = 200
        force = Force(nproc=2, timeout=60)
        received = []

        def program(force, me):
            channel = force.async_var("ch")
            if me == 1:
                for k in range(items):
                    channel.produce(k)
            else:
                for _ in range(items):
                    received.append(channel.consume())

        force.run(program)
        assert received == list(range(items))
