"""Scheduler unit tests with hand-written process generators."""

import pytest

from repro.machines import CRAY_2, FLEX_32, HEP, SEQUENT_BALANCE
from repro.sim import (
    AcquireLock,
    Block,
    Cost,
    HaltSim,
    ReleaseLock,
    Scheduler,
    SimulationError,
    Spawn,
    Wake,
)


def make_scheduler(machine=SEQUENT_BALANCE, **kw):
    return Scheduler(machine, **kw)


class TestBasics:
    def test_single_process_cost(self):
        sched = make_scheduler()

        def work():
            yield Cost(100)
            yield Cost(50)

        sched.spawn(work())
        stats = sched.run()
        assert stats.makespan == 150
        assert stats.processes == 1

    def test_parallel_processes_independent_clocks(self):
        sched = make_scheduler()

        def work(n):
            yield Cost(n)

        sched.spawn(work(100), name="a")
        sched.spawn(work(300), name="b")
        stats = sched.run()
        assert stats.makespan == 300
        assert stats.per_process_clock["a"] == 100
        assert stats.per_process_clock["b"] == 300

    def test_deterministic_order(self):
        log = []

        def worker(name, first, second):
            yield Cost(first)
            log.append((name, "mid"))
            yield Cost(second)
            log.append((name, "end"))

        sched = make_scheduler()
        sched.spawn(worker("a", 10, 100))
        sched.spawn(worker("b", 50, 10))
        sched.run()
        assert log == [("a", "mid"), ("b", "mid"), ("b", "end"),
                       ("a", "end")]

    def test_spawn_event(self):
        sched = make_scheduler()
        seen = []

        def child():
            yield Cost(5)
            seen.append("child")

        def parent():
            yield Cost(10)
            yield Spawn(child(), name="kid")
            yield Cost(1)

        sched.spawn(parent(), name="parent")
        stats = sched.run()
        assert seen == ["child"]
        assert stats.processes == 2
        # Child starts at parent's clock (10), runs 5 -> 15.
        assert stats.per_process_clock["kid"] == 15

    def test_halt_stops_everything(self):
        sched = make_scheduler()
        ran = []

        def stopper():
            yield Cost(1)
            yield HaltSim("bye")

        def long_runner():
            yield Cost(1000)
            ran.append("finished")
            yield Cost(1000)

        sched.spawn(stopper())
        sched.spawn(long_runner())
        stats = sched.run()
        assert stats.halted
        assert stats.halt_message == "bye"
        assert ran == []

    def test_max_events_guard(self):
        sched = make_scheduler(max_events=10)

        def forever():
            while True:
                yield Cost(1)

        sched.spawn(forever())
        with pytest.raises(SimulationError):
            sched.run()


class TestLocks:
    def test_uncontended_acquire_release(self):
        sched = make_scheduler()
        lock = sched.new_lock("L")

        def work():
            yield AcquireLock(lock)
            yield Cost(10)
            yield ReleaseLock(lock)

        sched.spawn(work())
        stats = sched.run()
        assert stats.lock_acquisitions == 1
        assert stats.contended_acquisitions == 0
        assert not lock.locked

    def test_mutual_exclusion(self):
        sched = make_scheduler()
        lock = sched.new_lock("L")
        inside = []

        def work(name):
            yield AcquireLock(lock)
            inside.append((name, "in"))
            yield Cost(100)
            inside.append((name, "out"))
            yield ReleaseLock(lock)

        sched.spawn(work("a"))
        sched.spawn(work("b"))
        sched.run()
        # No interleaving: each 'in' immediately followed by its 'out'.
        assert inside[0][0] == inside[1][0]
        assert inside[2][0] == inside[3][0]

    def test_any_process_may_unlock(self):
        # Binary semaphore semantics: initial-locked lock released by a
        # different process (the Force barrier depends on this).
        sched = make_scheduler()
        lock = sched.new_lock("GATE")
        lock.locked = True
        order = []

        def waiter():
            yield AcquireLock(lock)
            order.append("waiter ran")

        def opener():
            yield Cost(500)
            order.append("opening")
            yield ReleaseLock(lock)

        sched.spawn(waiter())
        sched.spawn(opener())
        sched.run()
        assert order == ["opening", "waiter ran"]

    def test_fifo_handoff(self):
        sched = make_scheduler()
        lock = sched.new_lock("L")
        order = []

        def work(name, delay):
            yield Cost(delay)
            yield AcquireLock(lock)
            order.append(name)
            yield Cost(1000)
            yield ReleaseLock(lock)

        sched.spawn(work("first", 1))
        sched.spawn(work("second", 2))
        sched.spawn(work("third", 3))
        sched.run()
        assert order == ["first", "second", "third"]

    def test_spin_lock_burns_cycles(self):
        sched = make_scheduler(SEQUENT_BALANCE)
        lock = sched.new_lock("L")

        def holder():
            yield AcquireLock(lock)
            yield Cost(1000)
            yield ReleaseLock(lock)

        def spinner():
            yield Cost(1)
            yield AcquireLock(lock)
            yield ReleaseLock(lock)

        sched.spawn(holder())
        sched.spawn(spinner())
        stats = sched.run()
        assert stats.spin_cycles > 900          # burned most of the wait

    def test_syscall_lock_context_switches(self):
        sched = make_scheduler(CRAY_2)
        lock = sched.new_lock("L")

        def holder():
            yield AcquireLock(lock)
            yield Cost(1000)
            yield ReleaseLock(lock)

        def sleeper():
            yield Cost(1)
            yield AcquireLock(lock)
            yield ReleaseLock(lock)

        sched.spawn(holder())
        sched.spawn(sleeper())
        stats = sched.run()
        assert stats.context_switches == 1
        assert stats.spin_cycles == 0

    def test_combined_lock_short_wait_spins(self):
        sched = make_scheduler(FLEX_32)
        lock = sched.new_lock("L")

        def holder():
            yield AcquireLock(lock)
            yield Cost(50)                      # < spin limit of 120
            yield ReleaseLock(lock)

        def waiter():
            yield Cost(1)
            yield AcquireLock(lock)
            yield ReleaseLock(lock)

        sched.spawn(holder())
        sched.spawn(waiter())
        stats = sched.run()
        assert stats.context_switches == 0
        assert stats.spin_cycles > 0

    def test_combined_lock_long_wait_syscalls(self):
        sched = make_scheduler(FLEX_32)
        lock = sched.new_lock("L")

        def holder():
            yield AcquireLock(lock)
            yield Cost(100_000)                 # >> spin limit
            yield ReleaseLock(lock)

        def waiter():
            yield Cost(1)
            yield AcquireLock(lock)
            yield ReleaseLock(lock)

        sched.spawn(holder())
        sched.spawn(waiter())
        stats = sched.run()
        assert stats.context_switches == 1
        assert stats.spin_cycles == FLEX_32.combined_spin_limit

    def test_hep_wait_is_cheap(self):
        sched = make_scheduler(HEP)
        lock = sched.new_lock("L")

        def holder():
            yield AcquireLock(lock)
            yield Cost(1000)
            yield ReleaseLock(lock)

        def waiter():
            yield Cost(1)
            yield AcquireLock(lock)
            yield ReleaseLock(lock)

        sched.spawn(holder())
        sched.spawn(waiter())
        stats = sched.run()
        assert stats.spin_cycles == 0
        assert stats.context_switches == 0

    def test_cray_lock_scarcity(self):
        sched = make_scheduler(CRAY_2)
        for _ in range(CRAY_2.lock_limit):
            sched.new_lock()
        with pytest.raises(SimulationError):
            sched.new_lock()

    def test_deadlock_detected(self):
        sched = make_scheduler()
        lock = sched.new_lock("L")
        lock.locked = True

        def stuck():
            yield AcquireLock(lock)

        sched.spawn(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            sched.run()


class TestBlockWake:
    def test_block_then_wake(self):
        sched = make_scheduler()
        order = []

        def sleeper():
            order.append("sleeping")
            yield Block("signal")
            order.append("awake")

        def waker():
            yield Cost(100)
            order.append("waking")
            yield Wake("signal")

        sched.spawn(sleeper())
        sched.spawn(waker())
        sched.run()
        assert order == ["sleeping", "waking", "awake"]

    def test_wake_all(self):
        sched = make_scheduler()
        awake = []

        def sleeper(i):
            yield Block("go")
            awake.append(i)

        def waker():
            yield Cost(10)
            yield Wake("go", all_waiters=True)

        for i in range(4):
            sched.spawn(sleeper(i))
        sched.spawn(waker())
        sched.run()
        assert sorted(awake) == [0, 1, 2, 3]

    def test_wake_one_only(self):
        sched = make_scheduler()
        awake = []

        def sleeper(i):
            yield Block("go")
            awake.append(i)
            yield Wake("go")     # chain to the next

        def waker():
            yield Cost(10)
            yield Wake("go")

        for i in range(3):
            sched.spawn(sleeper(i))
        sched.spawn(waker())
        sched.run()
        assert awake == [0, 1, 2]

    def test_wake_without_waiters_is_noop(self):
        sched = make_scheduler()

        def lonely():
            yield Wake("nobody")
            yield Cost(1)

        sched.spawn(lonely())
        stats = sched.run()
        assert stats.makespan >= 1

    def test_exit_callback_fires(self):
        sched = make_scheduler()
        done = []

        def child():
            yield Cost(5)

        def parent():
            yield Spawn(child(), name="kid",
                        on_exit=lambda p: done.append(p.name))
            yield Cost(1)

        sched.spawn(parent())
        sched.run()
        assert done == ["kid"]


class TestStats:
    def test_utilization_bounds(self):
        sched = make_scheduler()

        def work():
            yield Cost(100)

        sched.spawn(work())
        sched.spawn(work())
        stats = sched.run()
        assert 0.0 < stats.utilization <= 1.0

    def test_trace_collection(self):
        sched = make_scheduler(trace=True)
        lock = sched.new_lock("L")

        def work():
            yield AcquireLock(lock)
            yield ReleaseLock(lock)

        sched.spawn(work())
        sched.run()
        actions = [what for (_t, _n, what) in sched.trace]
        assert "acquired L" in actions
        assert "released L" in actions
