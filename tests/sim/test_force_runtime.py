"""Unit tests for the Force runtime library (sim side)."""

import pytest

from repro.fortran.interp import Cell, CellRef, ValueRef
from repro.fortran.values import FType
from repro.machines import CRAY_2, HEP, SEQUENT_BALANCE
from repro.sim import Scheduler, SimulationError
from repro.sim.force_runtime import (
    ForceCommonProvider,
    ForceRuntime,
    SharingRegistry,
    WorkQueue,
)
from repro.fortran.parser import parse_source


def make_runtime(machine=SEQUENT_BALANCE, nproc=2):
    program = parse_source("      PROGRAM FORCED\n      END\n")
    scheduler = Scheduler(machine)
    return ForceRuntime(scheduler, machine, nproc, program)


def drain_call(runtime, name, refs, frame=None):
    """Run a runtime subroutine generator outside the scheduler."""
    events = list(runtime.call(name, refs, frame or _FakeFrame()))
    return events


class _FakeFrame:
    process = None
    vars = {}


class TestSharingRegistry:
    def test_register_and_query(self):
        registry = SharingRegistry()
        registry.register("blk")
        assert registry.is_shared("BLK")
        assert registry.is_shared("blk")
        assert not registry.is_shared("OTHER")

    def test_log_deduplicates(self):
        registry = SharingRegistry()
        registry.register("A")
        registry.register("A")
        assert registry.registration_log == ["A"]


class TestLockNameValidation:
    def test_wrong_primitive_rejected(self):
        runtime = make_runtime(CRAY_2)
        cell = Cell(FType.LOGICAL)
        with pytest.raises(SimulationError, match="not available"):
            drain_call(runtime, "SPINLK", [CellRef(cell)])

    def test_right_primitive_accepted(self):
        runtime = make_runtime(CRAY_2)
        cell = Cell(FType.LOGICAL)
        events = drain_call(runtime, "SYSLCK", [CellRef(cell)])
        assert len(events) == 1

    def test_hep_ops_rejected_elsewhere(self):
        runtime = make_runtime(SEQUENT_BALANCE)
        cell = Cell(FType.INTEGER)
        with pytest.raises(SimulationError, match="full/empty"):
            drain_call(runtime, "HEPPRD", [CellRef(cell), ValueRef(1)])

    def test_fork_call_rejected_on_hep(self):
        runtime = make_runtime(HEP)
        with pytest.raises(SimulationError, match="subroutine call"):
            drain_call(runtime, "FRKALL", [ValueRef("MAIN")])

    def test_spawn_call_rejected_on_fork_machine(self):
        runtime = make_runtime(SEQUENT_BALANCE)
        with pytest.raises(SimulationError, match="fork process model"):
            drain_call(runtime, "HEPSPN", [ValueRef("MAIN")])


class TestAsyncRegistration:
    def test_frcain_marks_e_lock_initially_locked(self):
        runtime = make_runtime()
        v, e, f = (Cell(FType.INTEGER), Cell(FType.LOGICAL),
                   Cell(FType.LOGICAL))
        drain_call(runtime, "FRCAIN",
                   [CellRef(v), CellRef(e), CellRef(f)])
        e_lock = runtime._lock_for(CellRef(e))
        f_lock = runtime._lock_for(CellRef(f))
        assert e_lock.locked            # empty state
        assert not f_lock.locked

    def test_isfull_via_lock_states(self):
        runtime = make_runtime()
        v, e, f = (Cell(FType.INTEGER), Cell(FType.LOGICAL),
                   Cell(FType.LOGICAL))
        drain_call(runtime, "FRCAIN",
                   [CellRef(v), CellRef(e), CellRef(f)])
        assert runtime.call_function("FRCISF", [CellRef(v)],
                                     _FakeFrame()) is False
        # Simulate a produce: F locked, E unlocked.
        runtime._lock_for(CellRef(f)).locked = True
        runtime._lock_for(CellRef(e)).locked = False
        assert runtime.call_function("FRCISF", [CellRef(v)],
                                     _FakeFrame()) is True

    def test_isfull_unregistered_raises(self):
        runtime = make_runtime()
        with pytest.raises(SimulationError, match="Async"):
            runtime.call_function("FRCISF",
                                  [CellRef(Cell(FType.INTEGER))],
                                  _FakeFrame())

    def test_hep_isfull_uses_hardware_bit(self):
        runtime = make_runtime(HEP)
        cell = Cell(FType.INTEGER)
        assert runtime.call_function("FRCISF", [CellRef(cell)],
                                     _FakeFrame()) is False
        cell.full = True
        assert runtime.call_function("FRCISF", [CellRef(cell)],
                                     _FakeFrame()) is True


class TestCommonProvider:
    layout = [("X", FType.INTEGER, None), ("A", FType.REAL, [(1, 4)])]

    def test_shared_block_is_global(self):
        registry = SharingRegistry()
        registry.register("B")
        provider = ForceCommonProvider(SEQUENT_BALANCE, registry)
        one = provider.get_block("B", self.layout, _frame(1))
        two = provider.get_block("B", self.layout, _frame(2))
        assert one[0] is two[0]

    def test_private_block_per_process(self):
        provider = ForceCommonProvider(SEQUENT_BALANCE, SharingRegistry())
        one = provider.get_block("P", self.layout, _frame(1))
        two = provider.get_block("P", self.layout, _frame(2))
        assert one[0] is not two[0]

    def test_fork_copies_private_values(self):
        provider = ForceCommonProvider(SEQUENT_BALANCE, SharingRegistry())
        parent = provider.get_block("P", self.layout, _frame(1))
        parent[0].set(42)
        parent[1].set((2,), 1.5)
        provider.fork_copy(parent_pid=1, child_pid=2)
        child = provider.get_block("P", self.layout, _frame(2))
        assert child[0].get() == 42
        assert child[1].get((2,)) == 1.5
        child[0].set(7)
        assert parent[0].get() == 42    # copies, not aliases

    def test_alliant_shares_everything(self):
        from repro.machines import ALLIANT_FX8
        provider = ForceCommonProvider(ALLIANT_FX8, SharingRegistry())
        one = provider.get_block("P", self.layout, _frame(1))
        two = provider.get_block("P", self.layout, _frame(2))
        assert one[0] is two[0]


class TestWorkQueueModel:
    def test_queue_dataclass(self):
        q = WorkQueue(name="W", capacity=8)
        assert not q.done and not q.items


def _frame(pid):
    class F:
        pass

    frame = F()

    class P:
        pass

    process = P()
    process.pid = pid
    frame.process = process
    return frame
