"""Timeline/trace rendering tests."""

from repro.core import SEQUENT_BALANCE, force_compile_and_run, programs
from repro.machines import HEP
from repro.sim import Cost, Scheduler
from repro.sim.timeline import (
    TimelineOptions,
    lock_contention_report,
    render_timeline,
    render_utilization,
)


def traced_run():
    source = programs.render("sum_critical", n=10)
    return force_compile_and_run(source, SEQUENT_BALANCE, nproc=3,
                                 trace=True)


class TestRenderTimeline:
    def test_contains_lock_events_with_names(self):
        result = traced_run()
        text = render_timeline(result.trace,
                               TimelineOptions(max_events=100000))
        assert "BARWIN" in text
        assert "acquired" in text
        assert "released" in text

    def test_truncation(self):
        result = traced_run()
        text = render_timeline(result.trace, TimelineOptions(max_events=5))
        assert "more events" in text
        assert len([l for l in text.split("\n") if l.startswith("t=")]) == 5

    def test_filtering(self):
        result = traced_run()
        text = render_timeline(
            result.trace,
            TimelineOptions(only=("spawned",), max_events=1000))
        assert "spawned" in text
        assert "acquired" not in text

    def test_empty_trace(self):
        assert "no trace events" in render_timeline([])

    def test_max_events_zero_shows_only_the_marker(self):
        result = traced_run()
        text = render_timeline(result.trace, TimelineOptions(max_events=0))
        assert text == f"... {len(result.trace)} more events"

    def test_filter_with_no_matches_yields_no_lines(self):
        result = traced_run()
        text = render_timeline(
            result.trace,
            TimelineOptions(only=("no-such-event-text",)))
        assert "t=" not in text

    def test_filter_accepts_multiple_tags(self):
        result = traced_run()
        text = render_timeline(
            result.trace,
            TimelineOptions(only=("spawned", "acquired"),
                            max_events=100000))
        assert "spawned" in text
        assert "acquired" in text
        assert "released" not in text

    def test_no_truncation_marker_when_everything_fits(self):
        result = traced_run()
        text = render_timeline(result.trace,
                               TimelineOptions(max_events=10**6))
        assert "more events" not in text


class TestUnifiedModel:
    """The timeline is rendered through repro.trace, not privately."""

    def test_equals_the_shared_text_exporter(self):
        from repro.trace.adapter import events_from_sim_trace
        from repro.trace.export import to_text

        result = traced_run()
        assert render_timeline(result.trace) == to_text(
            events_from_sim_trace(result.trace), max_events=200)

    def test_lines_round_trip_byte_for_byte(self):
        # detail passthrough: every rendered body is the scheduler's
        # original text, unchanged by the adaptation
        result = traced_run()
        text = render_timeline(result.trace,
                               TimelineOptions(max_events=10**6))
        bodies = [line.split(" | ", 2)[2] for line in text.split("\n")]
        assert bodies == [what for _t, _who, what in result.trace]


class TestUtilization:
    def test_bars_per_process(self):
        result = traced_run()
        text = render_utilization(result.stats)
        assert "driver" in text
        assert "summer-1" in text
        assert "makespan" in text

    def test_empty_stats(self):
        sched = Scheduler(HEP)

        def nop():
            yield Cost(0)

        sched.spawn(nop())
        stats = sched.run()
        assert "empty run" in render_utilization(stats)


class TestContentionReport:
    def test_barrier_locks_contended(self):
        result = traced_run()
        report = lock_contention_report(result.trace)
        assert "BARWIN" in report or "BARWOT" in report or "LCK" in report
        assert "waits" in report

    def test_no_events(self):
        assert "no lock events" in lock_contention_report([])
