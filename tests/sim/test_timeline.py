"""Timeline/trace rendering tests."""

from repro.core import SEQUENT_BALANCE, force_compile_and_run, programs
from repro.machines import HEP
from repro.sim import Cost, Scheduler
from repro.sim.timeline import (
    TimelineOptions,
    lock_contention_report,
    render_timeline,
    render_utilization,
)


def traced_run():
    source = programs.render("sum_critical", n=10)
    return force_compile_and_run(source, SEQUENT_BALANCE, nproc=3,
                                 trace=True)


class TestRenderTimeline:
    def test_contains_lock_events_with_names(self):
        result = traced_run()
        text = render_timeline(result.trace,
                               TimelineOptions(max_events=100000))
        assert "BARWIN" in text
        assert "acquired" in text
        assert "released" in text

    def test_truncation(self):
        result = traced_run()
        text = render_timeline(result.trace, TimelineOptions(max_events=5))
        assert "more events" in text
        assert len([l for l in text.split("\n") if l.startswith("t=")]) == 5

    def test_filtering(self):
        result = traced_run()
        text = render_timeline(
            result.trace,
            TimelineOptions(only=("spawned",), max_events=1000))
        assert "spawned" in text
        assert "acquired" not in text

    def test_empty_trace(self):
        assert "no trace events" in render_timeline([])


class TestUtilization:
    def test_bars_per_process(self):
        result = traced_run()
        text = render_utilization(result.stats)
        assert "driver" in text
        assert "summer-1" in text
        assert "makespan" in text

    def test_empty_stats(self):
        sched = Scheduler(HEP)

        def nop():
            yield Cost(0)

        sched.spawn(nop())
        stats = sched.run()
        assert "empty run" in render_utilization(stats)


class TestContentionReport:
    def test_barrier_locks_contended(self):
        result = traced_run()
        report = lock_contention_report(result.trace)
        assert "BARWIN" in report or "BARWOT" in report or "LCK" in report
        assert "waits" in report

    def test_no_events(self):
        assert "no lock events" in lock_contention_report([])
