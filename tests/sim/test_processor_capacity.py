"""Finite processor capacity: time-sharing, saturation, and the
spin-waiter starvation hazard."""

import pytest

from repro.machines import CRAY_2, HEP, SEQUENT_BALANCE
from repro.sim import (
    AcquireLock,
    Block,
    Cost,
    ReleaseLock,
    Scheduler,
    SimulationError,
    Wake,
)


def spawn_workers(sched, count, cycles):
    def worker():
        yield Cost(cycles)

    for _ in range(count):
        sched.spawn(worker())


class TestCapacityBasics:
    def test_within_capacity_is_ideal(self):
        limited = Scheduler(SEQUENT_BALANCE, processors=4)
        spawn_workers(limited, 4, 1000)
        assert limited.run().makespan == 1000

    def test_oversubscription_serializes(self):
        sched = Scheduler(SEQUENT_BALANCE, processors=2)
        spawn_workers(sched, 6, 1000)
        # 6 compute-bound processes on 2 CPUs: 3 batches.
        assert sched.run().makespan == 3000

    def test_unlimited_mode_unchanged(self):
        sched = Scheduler(SEQUENT_BALANCE)
        spawn_workers(sched, 6, 1000)
        assert sched.run().makespan == 1000

    def test_single_processor_fully_serial(self):
        sched = Scheduler(SEQUENT_BALANCE, processors=1)
        spawn_workers(sched, 5, 100)
        assert sched.run().makespan == 500

    def test_passive_blocking_releases_cpu(self):
        # A blocked process must not hold its CPU: a sleeper plus a
        # worker fit on one processor.
        sched = Scheduler(CRAY_2, processors=1)
        order = []

        def sleeper():
            yield Block("gate")
            order.append("woke")

        def worker():
            yield Cost(500)
            order.append("done")
            yield Wake("gate")

        sched.spawn(sleeper())
        sched.spawn(worker())
        sched.run()
        assert order == ["done", "woke"]


class TestSpinOccupancy:
    def test_spin_waiter_holds_cpu(self):
        # 2 CPUs, spin machine: holder + spinner occupy both; a third
        # compute process must wait for the spinner's CPU.
        sched = Scheduler(SEQUENT_BALANCE, processors=2)
        lock = sched.new_lock("L")

        def holder():
            yield AcquireLock(lock)
            yield Cost(2000)
            yield ReleaseLock(lock)

        def spinner():
            yield Cost(1)
            yield AcquireLock(lock)
            yield ReleaseLock(lock)

        def bystander():
            yield Cost(100)

        sched.spawn(holder())
        sched.spawn(spinner())
        sched.spawn(bystander())
        stats = sched.run()
        # The bystander could not start until a CPU freed (~t=2000+).
        assert stats.per_process_clock["p3"] > 2000

    def test_syscall_waiter_frees_cpu(self):
        sched = Scheduler(CRAY_2, processors=2)
        lock = sched.new_lock("L")

        def holder():
            yield AcquireLock(lock)
            yield Cost(2000)
            yield ReleaseLock(lock)

        def sleeper():
            yield Cost(1)
            yield AcquireLock(lock)
            yield ReleaseLock(lock)

        def bystander():
            yield Cost(100)

        sched.spawn(holder())
        sched.spawn(sleeper())
        sched.spawn(bystander())
        stats = sched.run()
        # The parked waiter's CPU was available almost immediately.
        assert stats.per_process_clock["p3"] < 2000

    def test_spin_starvation_deadlocks(self):
        # All CPUs held by spinners; the process that must release the
        # lock can never run: a genuine oversubscription deadlock.
        sched = Scheduler(SEQUENT_BALANCE, processors=2)
        lock = sched.new_lock("L")
        lock.locked = True    # nobody will ever unlock it...

        def spinner():
            yield AcquireLock(lock)

        def would_unlock():
            yield Cost(10)
            yield ReleaseLock(lock)

        sched.spawn(spinner())
        sched.spawn(spinner())
        sched.spawn(would_unlock())   # starved of a CPU forever
        with pytest.raises(SimulationError, match="starved"):
            sched.run()

    def test_hep_many_processes_few_contexts(self):
        # HEP-style cheap waiting: oversubscription degrades smoothly.
        sched = Scheduler(HEP, processors=4)
        spawn_workers(sched, 16, 250)
        assert sched.run().makespan == 1000
