"""Unit tests for the m4-style macro engine."""

import pytest

from repro.m4 import M4Processor, MacroError


@pytest.fixture()
def m4():
    return M4Processor()


class TestPlainText:
    def test_passthrough(self, m4):
        assert m4.process("hello world\n") == "hello world\n"

    def test_empty(self, m4):
        assert m4.process("") == ""

    def test_non_macro_words(self, m4):
        assert m4.process("DO 10 I = 1, N") == "DO 10 I = 1, N"

    def test_undefined_word_with_parens(self, m4):
        assert m4.process("f(x)") == "f(x)"


class TestDefine:
    def test_simple_define(self, m4):
        assert m4.process("define(`a', `b')a") == "b"

    def test_define_via_api(self, m4):
        m4.define("pi", "3.14159")
        assert m4.process("x = pi") == "x = 3.14159"

    def test_no_expansion_inside_word(self, m4):
        m4.define("a", "b")
        assert m4.process("banana") == "banana"

    def test_redefine_replaces(self, m4):
        m4.define("a", "1")
        m4.define("a", "2")
        assert m4.process("a") == "2"

    def test_undefine(self, m4):
        m4.define("a", "1")
        m4.undefine("a")
        assert m4.process("a") == "a"

    def test_define_empty_body(self, m4):
        m4.define("nothing", "")
        # 'xnothing' is a single token: not expanded. Bare 'nothing' is.
        assert m4.process("xnothing nothing x") == "xnothing  x"

    def test_rescan_of_expansion(self, m4):
        m4.define("a", "b")
        m4.define("b", "c")
        assert m4.process("a") == "c"

    def test_invalid_name_rejected(self, m4):
        with pytest.raises(MacroError):
            m4.define("9bad", "x")
        with pytest.raises(MacroError):
            m4.define("has space", "x")

    def test_define_from_source_text(self, m4):
        out = m4.process("define(`greet', `hello $1')greet(world)")
        assert out == "hello world"


class TestPushdefPopdef:
    def test_pushdef_shadows(self, m4):
        m4.define("a", "1")
        m4.pushdef("a", "2")
        assert m4.process("a") == "2"
        m4.popdef("a")
        assert m4.process("a") == "1"

    def test_popdef_removes_last(self, m4):
        m4.pushdef("a", "1")
        m4.popdef("a")
        assert m4.process("a") == "a"

    def test_popdef_undefined_is_noop(self, m4):
        m4.popdef("never_defined")
        assert m4.process("ok") == "ok"

    def test_pushdef_from_source(self, m4):
        out = m4.process(
            "define(`x', `one')pushdef(`x', `two')x popdef(`x')x")
        assert out == "two one"


class TestArguments:
    def test_positional(self, m4):
        m4.define("pair", "($1, $2)")
        assert m4.process("pair(a, b)") == "(a, b)"

    def test_missing_args_empty(self, m4):
        m4.define("three", "[$1|$2|$3]")
        assert m4.process("three(x)") == "[x||]"

    def test_dollar_zero_is_name(self, m4):
        # $0 must be quoted in the body or the rescan recurses (as in m4).
        m4.define("whoami", "I am `$0'")
        assert m4.process("whoami") == "I am whoami"

    def test_arg_count(self, m4):
        m4.define("count", "$#")
        assert m4.process("count(a, b, c)") == "3"
        assert m4.process("count(a)") == "1"
        assert m4.process("count") == "0"

    def test_star_joins(self, m4):
        m4.define("all", "$*")
        assert m4.process("all(a, b, c)") == "a,b,c"

    def test_at_quotes(self, m4):
        m4.define("q", "$@")
        m4.define("id", "[$1][$2]")
        # $@ re-quotes each argument, protecting commas on rescan.
        assert m4.process("q(a, b)") == "a,b"

    def test_leading_whitespace_stripped(self, m4):
        m4.define("one", "<$1>")
        assert m4.process("one(   spaced )") == "<spaced >"

    def test_nested_parens_in_args(self, m4):
        m4.define("one", "<$1>")
        assert m4.process("one(f(a, b))") == "<f(a, b)>"

    def test_args_are_expanded(self, m4):
        m4.define("inner", "INNER")
        m4.define("outer", "[$1]")
        assert m4.process("outer(inner)") == "[INNER]"

    def test_single_quoted_arg_expands_on_rescan(self, m4):
        # As in m4: one quote level protects collection, but the
        # substituted body is rescanned, expanding the bare name.
        m4.define("inner", "INNER")
        m4.define("outer", "[$1]")
        assert m4.process("outer(`inner')") == "[INNER]"

    def test_double_quoted_arg_stays_literal(self, m4):
        m4.define("inner", "INNER")
        m4.define("outer", "[$1]")
        assert m4.process("outer(``inner'')") == "[inner]"

    def test_macro_without_parens_gets_no_args(self, m4):
        m4.define("m", "<$#>")
        assert m4.process("m (x)") == "<0> (x)"


class TestQuoting:
    def test_quotes_stripped(self, m4):
        assert m4.process("`hello'") == "hello"

    def test_quote_protects_macro(self, m4):
        m4.define("a", "b")
        assert m4.process("`a'") == "a"

    def test_nested_quotes_keep_one_level(self, m4):
        assert m4.process("``a''") == "`a'"

    def test_unbalanced_quote_raises(self, m4):
        with pytest.raises(MacroError):
            m4.process("`abc")

    def test_changequote(self, m4):
        m4.define("a", "b")
        out = m4.process("changequote([, ])[a] a")
        assert out == "a b"

    def test_changequote_back(self, m4):
        out = m4.process("changequote([, ])changequote(`, ')`x'")
        assert out == "x"


class TestIfelse:
    def test_equal(self, m4):
        assert m4.process("ifelse(a, a, yes, no)") == "yes"

    def test_unequal(self, m4):
        assert m4.process("ifelse(a, b, yes, no)") == "no"

    def test_no_default(self, m4):
        assert m4.process("ifelse(a, b, yes)") == ""

    def test_chained(self, m4):
        src = "ifelse(x, a, one, x, b, two, x, x, three, other)"
        assert m4.process(src) == "three"

    def test_chained_default(self, m4):
        src = "ifelse(x, a, one, x, b, two, fallback)"
        assert m4.process(src) == "fallback"

    def test_result_rescanned(self, m4):
        m4.define("hit", "HIT")
        assert m4.process("ifelse(1, 1, hit)") == "HIT"


class TestIfdef:
    def test_defined(self, m4):
        m4.define("flag", "")
        assert m4.process("ifdef(`flag', yes, no)") == "yes"

    def test_undefined(self, m4):
        assert m4.process("ifdef(`flag', yes, no)") == "no"

    def test_undefined_no_else(self, m4):
        assert m4.process("ifdef(`flag', yes)") == ""


class TestArithmetic:
    def test_incr_decr(self, m4):
        assert m4.process("incr(41)") == "42"
        assert m4.process("decr(43)") == "42"

    def test_eval_basic(self, m4):
        assert m4.process("eval(2 + 3 * 4)") == "14"

    def test_eval_parens(self, m4):
        assert m4.process("eval((2 + 3) * 4)") == "20"

    def test_eval_comparison(self, m4):
        assert m4.process("eval(3 > 2)") == "1"
        assert m4.process("eval(3 < 2)") == "0"

    def test_eval_logical(self, m4):
        assert m4.process("eval(1 && 0)") == "0"
        assert m4.process("eval(1 || 0)") == "1"
        assert m4.process("eval(!0)") == "1"

    def test_eval_division_truncates_toward_zero(self, m4):
        assert m4.process("eval(-7 / 2)") == "-3"
        assert m4.process("eval(7 / 2)") == "3"

    def test_eval_division_by_zero(self, m4):
        with pytest.raises(MacroError):
            m4.process("eval(1 / 0)")

    def test_eval_power(self, m4):
        assert m4.process("eval(2 ** 10)") == "1024"

    def test_eval_shifts_and_bits(self, m4):
        assert m4.process("eval(1 << 4)") == "16"
        assert m4.process("eval(6 & 3)") == "2"
        assert m4.process("eval(6 | 3)") == "7"
        assert m4.process("eval(6 ^ 3)") == "5"

    def test_eval_hex_and_octal(self, m4):
        assert m4.process("eval(0x10)") == "16"
        assert m4.process("eval(010)") == "8"

    def test_counter_idiom(self, m4):
        # The label-generation idiom used by the Force macro library.
        src = ("define(`cnt', 0)"
               "define(`bump', `define(`cnt', incr(cnt))cnt')"
               "bump bump bump")
        assert m4.process(src) == "1 2 3"


class TestStringBuiltins:
    def test_len(self, m4):
        assert m4.process("len(abcdef)") == "6"
        assert m4.process("len()") == "0"

    def test_index_found(self, m4):
        assert m4.process("index(`hello', `ll')") == "2"

    def test_index_missing(self, m4):
        assert m4.process("index(`hello', `z')") == "-1"

    def test_substr(self, m4):
        assert m4.process("substr(`hello', 1, 3)") == "ell"
        assert m4.process("substr(`hello', 2)") == "llo"

    def test_translit_upcase(self, m4):
        assert m4.process("translit(`force', a-z, A-Z)") == "FORCE"

    def test_translit_delete(self, m4):
        assert m4.process("translit(`a b c', ` ')") == "abc"


class TestDnl:
    def test_dnl_eats_line_tail(self, m4):
        assert m4.process("keep dnl gone\nnext") == "keep next"

    def test_dnl_at_eof(self, m4):
        assert m4.process("x dnl trailing") == "x "

    def test_define_dnl_idiom(self, m4):
        out = m4.process("define(`a', `b')dnl\na")
        assert out == "b"


class TestDiversions:
    def test_divert_discard(self, m4):
        out = m4.process("visible divert(-1) hidden divert(0) back")
        assert "hidden" not in out
        assert "visible" in out and "back" in out

    def test_divert_and_undivert(self, m4):
        out = m4.process("divert(1)stored divert(0)main undivert(1)")
        assert out.replace(" ", "") == "mainstored"

    def test_divnum(self, m4):
        assert m4.process("divnum") == "0"

    def test_bad_diversion(self, m4):
        with pytest.raises(MacroError):
            m4.process("divert(99)")

    def test_undiverted_text_not_rescanned(self, m4):
        m4.define("boom", "EXPANDED")
        out = m4.process("divert(1)boom divert(0)undivert(1)")
        # 'boom' was expanded when diverted, stored text comes back raw.
        assert "EXPANDED" in out


class TestDefn:
    def test_defn_returns_quoted_body(self, m4):
        m4.define("a", "body")
        assert m4.process("defn(`a')") == "body"

    def test_defn_rename_idiom(self, m4):
        out = m4.process(
            "define(`old', `VALUE')"
            "define(`new', defn(`old'))"
            "undefine(`old')new old")
        assert out == "VALUE old"

    def test_defn_undefined(self, m4):
        assert m4.process("defn(`missing')") == ""


class TestShiftInclude:
    def test_shift(self, m4):
        m4.define("rest", "shift($@)")
        assert m4.process("rest(a, b, c)") == "b,c"

    def test_include(self, m4):
        m4.add_include("defs", "define(`z', `26')")
        assert m4.process("include(`defs')z") == "26"

    def test_include_unknown(self, m4):
        with pytest.raises(MacroError):
            m4.process("include(`nope')")


class TestRobustness:
    def test_runaway_recursion_caught(self, m4):
        m4.define("loop", "loop loop")
        with pytest.raises(MacroError):
            m4.process("loop")

    def test_eof_in_args(self, m4):
        m4.define("f", "$1")
        with pytest.raises(MacroError):
            m4.process("f(unclosed")

    def test_load_definitions_ok(self, m4):
        m4.load_definitions("define(`a', `1')dnl\ndefine(`b', `2')dnl\n")
        assert m4.process("a b") == "1 2"

    def test_load_definitions_residue_raises(self, m4):
        with pytest.raises(MacroError):
            m4.load_definitions("define(`a', `1') stray text")

    def test_multiline_bodies(self, m4):
        m4.define("block", "line one\n      line two")
        out = m4.process("block")
        assert out == "line one\n      line two"

    def test_definitions_persist_across_process_calls(self, m4):
        m4.process("define(`a', `1')")
        assert m4.process("a") == "1"
