"""Tests for the Force statement translation rules."""

from repro.sedstage import translate_force_source


def one(line: str) -> str:
    """Translate a single source line."""
    return translate_force_source(line)


class TestProgramStructure:
    def test_force_main(self):
        assert one("Force PROG of NP ident ME") == \
            "force_main(`PROG',`NP',`ME')"

    def test_force_main_case_insensitive(self):
        assert one("FORCE PROG OF NP IDENT ME") == \
            "force_main(`PROG',`NP',`ME')"

    def test_forcesub_with_args(self):
        assert one("Forcesub SOLVE(A, N) of NP ident ME") == \
            "force_sub(`SOLVE',`A, N',`NP',`ME')"

    def test_forcesub_no_args(self):
        assert one("Forcesub STEP of NP ident ME") == \
            "force_sub(`STEP',`',`NP',`ME')"

    def test_externf(self):
        assert one("Externf SOLVE") == "externf(`SOLVE')"

    def test_forcecall(self):
        assert one("Forcecall SOLVE(A, 10)") == "forcecall(`SOLVE',`A, 10')"

    def test_end_declarations(self):
        assert one("End declarations") == "end_declarations()"

    def test_join(self):
        assert one("Join") == "join_force()"


class TestDeclarations:
    def test_shared_integer(self):
        assert one("Shared INTEGER K, N") == "shared_decl(`INTEGER',`K, N')"

    def test_shared_real_array(self):
        assert one("Shared REAL A(100, 100)") == \
            "shared_decl(`REAL',`A(100, 100)')"

    def test_shared_double_precision(self):
        assert one("Shared DOUBLE PRECISION X") == \
            "shared_decl(`DOUBLE PRECISION',`X')"

    def test_private(self):
        assert one("Private INTEGER I") == "private_decl(`INTEGER',`I')"

    def test_async(self):
        assert one("Async REAL V(10)") == "async_decl(`REAL',`V(10)')"

    def test_shared_common(self):
        assert one("Shared common /BLK/ A, B") == \
            "shared_common_decl(`BLK',`A, B')"

    def test_private_common(self):
        assert one("Private common /WSP/ T(10)") == \
            "private_common_decl(`WSP',`T(10)')"

    def test_async_common(self):
        assert one("Async common /Q/ V") == "async_common_decl(`Q',`V')"

    def test_taskq(self):
        assert one("Taskq WORK(64)") == "taskq_decl(`WORK',`64')"

    def test_plain_fortran_declaration_untouched(self):
        assert one("      INTEGER I, J") == "      INTEGER I, J"


class TestSynchronization:
    def test_barrier(self):
        assert one("Barrier") == "barrier_begin()"
        assert one("End barrier") == "barrier_end()"

    def test_critical(self):
        assert one("  Critical LCK") == "critical(`LCK')"
        assert one("End critical") == "end_critical()"

    def test_produce(self):
        assert one("Produce V = X + 1") == "produce(`V',`X + 1')"

    def test_produce_array_element(self):
        assert one("Produce Q(I) = W") == "produce(`Q(I)',`W')"

    def test_consume(self):
        assert one("  Consume V into X") == "consume(`V',`X')"

    def test_copy(self):
        assert one("  Copy V into X") == "copyasync(`V',`X')"

    def test_void(self):
        assert one("Void V") == "voidasync(`V')"

    def test_isfull_inline(self):
        assert one("      IF (Isfull(V)) GO TO 10") == \
            "      IF (FRCISF(V)) GO TO 10"


class TestWorkDistribution:
    def test_presched_do(self):
        assert one("Presched DO 10 I = 1, N") == \
            "presched_do(`10',`I',`1, N')"

    def test_presched_do_with_step(self):
        assert one("Presched DO 10 I = 1, N, 2") == \
            "presched_do(`10',`I',`1, N, 2')"

    def test_end_presched_do(self):
        assert one("10 End presched DO") == "end_presched_do(`10')"

    def test_end_presched_do_unlabeled(self):
        assert one("End presched DO") == "end_presched_do(`')"

    def test_selfsched_do_paper_example(self):
        # The exact loop from §4.2 of the paper.
        assert one("Selfsched DO 100 K = START, LAST, INCR") == \
            "selfsched_do(`100',`K',`START, LAST, INCR')"

    def test_end_selfsched_do_paper_example(self):
        assert one("100 End Selfsched DO") == "end_selfsched_do(`100')"

    def test_presched_do2(self):
        assert one("Presched DO2 20 I = 1, N; J = 1, M") == \
            "presched_do2(`20',`I',`1, N',`J',`1, M')"

    def test_selfsched_do2(self):
        assert one("Selfsched DO2 30 I = 1, N, 2; J = 0, M") == \
            "selfsched_do2(`30',`I',`1, N, 2',`J',`0, M')"

    def test_end_do2(self):
        assert one("20 End presched DO2") == "end_presched_do2(`20')"
        assert one("30 End selfsched DO2") == "end_selfsched_do2(`30')"

    def test_pcase_prescheduled(self):
        assert one("Pcase") == "pcase(`')"

    def test_pcase_selfscheduled(self):
        assert one("Pcase on WRK") == "pcase(`WRK')"

    def test_usect_csect(self):
        assert one("Usect") == "usect()"
        assert one("  Csect (N .GT. 0)") == "csect(`N .GT. 0')"

    def test_end_pcase(self):
        assert one("End pcase") == "end_pcase()"

    def test_askfor(self):
        assert one("Askfor 300 W from Q") == "askfor(`300',`W',`Q')"

    def test_putwork(self):
        assert one("Putwork Q = W + 1") == "putwork(`Q',`W + 1')"

    def test_end_askfor(self):
        assert one("300 End askfor") == "end_askfor(`300')"


class TestNegativePaths:
    """The traps: lines that look like Force statements but are not
    translated, and spellings that are translated despite looking odd."""

    def test_column_one_c_keywords_pass_through_as_comments(self):
        # Critical/Consume/Copy/Csect at column one start with `C`,
        # which makes the whole line a Fortran comment.  The sed stage
        # must leave them exactly alone (force check flags them: F011).
        for src in ("Critical LCK", "Consume V into X",
                    "Copy V into X", "Csect (N .GT. 0)"):
            assert one(src) == src

    def test_lowercase_column_one_comment_too(self):
        assert one("critical LCK") == "critical LCK"

    def test_mixed_case_keyword_translates_when_indented(self):
        assert one("  bArRiEr") == "barrier_begin()"
        assert one("  eNd BaRrIeR") == "barrier_end()"
        assert one("  cRiTiCaL LCK") == "critical(`LCK')"

    def test_end_presched_do_with_and_without_label(self):
        assert one("   20 End presched DO") == "end_presched_do(`20')"
        assert one("      End presched DO") == "end_presched_do(`')"

    def test_keyword_as_identifier_substring_untouched(self):
        src = "      BARRIERS = BARRIERS + 1"
        assert one(src) == src

    def test_exclamation_comment_untouched(self):
        src = "! Void the token here"
        assert one(src) == src


class TestPassthrough:
    def test_plain_fortran(self):
        src = "      A(I) = B(I) + C(I)"
        assert one(src) == src

    def test_comment_line_with_keyword(self):
        src = "C Barrier comes next"
        assert one(src) == src

    def test_star_comment(self):
        src = "* Critical region explanation"
        assert one(src) == src

    def test_do_loop_untouched(self):
        src = "      DO 10 I = 1, N"
        assert one(src) == src

    def test_multi_line_program(self):
        src = ("Force P of NP ident ME\n"
               "Shared INTEGER N\n"
               "End declarations\n"
               "Barrier\n"
               "      N = 0\n"
               "End barrier\n"
               "Join\n")
        out = translate_force_source(src)
        lines = out.split("\n")
        assert lines[0] == "force_main(`P',`NP',`ME')"
        assert lines[1] == "shared_decl(`INTEGER',`N')"
        assert lines[2] == "end_declarations()"
        assert lines[3] == "barrier_begin()"
        assert lines[4] == "      N = 0"
        assert lines[5] == "barrier_end()"
        assert lines[6] == "join_force()"
