"""Concurrency regression tests for the sed-stage compiler cache.

Historically `_program()` had a check-then-set race (two threads could
both observe `_COMPILED is None` and compile twice) and, worse, the
compiled `SedProgram` kept two-address range state on the command
objects themselves, so two concurrent `run()` calls corrupted each
other's `Barrier … End barrier`-style ranges.  Both are fixed: the
cache is built under a lock and range state is per-run.
"""

import threading

from repro._util.text import strip_margin
from repro.sedstage import compiled_force_program, translate_force_source
from repro.sedstage import force_rules

SOURCE = strip_margin("""
    Force THRD of NP ident ME
    Shared INTEGER TOTAL
    Private INTEGER K
    End declarations
    Barrier
          TOTAL = 0
    End barrier
    Selfsched DO 100 K = 1, 12
      Critical LCK
          TOTAL = TOTAL + K
      End critical
    100 End Selfsched DO
    Join
          END
""")


def test_two_threads_translate_identically():
    # Reset the cache so both threads race through first compilation.
    force_rules._COMPILED = None
    nthreads = 8
    start = threading.Barrier(nthreads)
    results = [None] * nthreads
    errors = []

    def work(slot):
        try:
            start.wait()
            for _ in range(20):
                results[slot] = translate_force_source(SOURCE)
        except Exception as exc:   # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,))
               for i in range(nthreads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    expected = translate_force_source(SOURCE)
    assert "force_main(`THRD',`NP',`ME')" in expected
    assert "selfsched_do(`100',`K',`1, 12')" in expected
    assert all(r == expected for r in results)


def test_compiled_program_is_a_singleton():
    force_rules._COMPILED = None
    programs = set()
    start = threading.Barrier(4)

    def work():
        start.wait()
        programs.add(id(compiled_force_program()))

    threads = [threading.Thread(target=work) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(programs) == 1


def test_one_compiled_program_is_reentrant():
    # Two threads share the SAME SedProgram object; interleaved runs
    # must not leak two-address range state between them.
    program = compiled_force_program()
    start = threading.Barrier(2)
    outputs = {}

    def work(name):
        start.wait()
        for _ in range(50):
            outputs[name] = program.run(SOURCE)

    threads = [threading.Thread(target=work, args=(n,)) for n in "ab"]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert outputs["a"] == outputs["b"] == program.run(SOURCE)
