"""Hold space and branching commands (h H g G x, : b t)."""

import pytest

from repro.sedstage import SedProgram, SedError


class TestHoldSpace:
    def test_h_then_g_copies(self):
        program = SedProgram("1h\n2g")
        assert program.run("first\nsecond\n") == "first\nfirst\n"

    def test_H_appends_to_hold(self):
        program = SedProgram("1h\n2H\n2g")
        out = program.run("a\nb\n")
        assert out == "a\na\nb\n"

    def test_G_appends_hold_to_pattern(self):
        program = SedProgram("1h\n2G")
        assert program.run("x\ny\n") == "x\ny\nx\n"

    def test_x_swaps(self):
        program = SedProgram("1h\n2x")
        # Line 2 swaps with hold (line 1): prints line 1 again.
        assert program.run("one\ntwo\n") == "one\none\n"

    def test_hold_initially_empty(self):
        assert SedProgram("g").run("gone\n") == "\n"

    def test_reverse_file_idiom(self):
        # The classic tac: 1!G; h; $!d
        program = SedProgram("1!G\nh\n$!d")
        assert program.run("1\n2\n3\n") == "3\n2\n1\n"


class TestBranching:
    def test_unconditional_branch_skips(self):
        program = SedProgram("b skip\ns/a/X/\n: skip")
        assert program.run("a\n") == "a\n"

    def test_branch_to_end_without_label(self):
        program = SedProgram("/stop/b\ns/x/Y/")
        assert program.run("x stop\nx go\n") == "x stop\nY go\n"

    def test_loop_with_t(self):
        # Collapse runs of 'a' one at a time via a t-loop.
        program = SedProgram(": again\ns/aa/a/\nt again")
        assert program.run("baaaab\n") == "bab\n"

    def test_t_branches_only_after_substitution(self):
        program = SedProgram("s/hit/HIT/\nt done\ns/$/ (no hit)/\n: done")
        assert program.run("hit me\nmiss me\n") == \
            "HIT me\nmiss me (no hit)\n"

    def test_t_resets_flag(self):
        # After t fires, a second t with no new substitution must not.
        program = SedProgram("s/a/b/\nt one\n: one\nt two\ns/$/!/\n: two")
        assert program.run("a\n") == "b!\n"

    def test_undefined_label(self):
        program = SedProgram("b nowhere")
        with pytest.raises(SedError, match="undefined label"):
            program.run("x\n")

    def test_infinite_loop_guard(self):
        program = SedProgram(": spin\nb spin")
        with pytest.raises(SedError, match="did not terminate"):
            program.run("x\n")

    def test_label_with_address_rejected(self):
        with pytest.raises(SedError):
            SedProgram("1: lbl")
