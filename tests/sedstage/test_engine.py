"""Unit tests for the sed-dialect engine."""

import pytest

from repro.sedstage import SedProgram, SedError


class TestSubstitute:
    def test_basic(self):
        assert SedProgram("s/cat/dog/").run("cat\n") == "dog\n"

    def test_first_only_without_g(self):
        assert SedProgram("s/a/X/").run("aaa\n") == "Xaa\n"

    def test_global(self):
        assert SedProgram("s/a/X/g").run("aaa\n") == "XXX\n"

    def test_case_insensitive_flag(self):
        assert SedProgram("s/cat/dog/I").run("CaT\n") == "dog\n"

    def test_groups(self):
        program = SedProgram(r"s/(\w+)=(\w+)/\2=\1/")
        assert program.run("a=b\n") == "b=a\n"

    def test_ampersand(self):
        assert SedProgram("s/cat/[&]/").run("a cat here\n") == "a [cat] here\n"

    def test_escaped_ampersand(self):
        assert SedProgram(r"s/cat/a\&b/").run("cat\n") == "a&b\n"

    def test_alternate_delimiter(self):
        assert SedProgram("s|/usr|/opt|").run("/usr/lib\n") == "/opt/lib\n"

    def test_escaped_delimiter(self):
        assert SedProgram(r"s/a\/b/X/").run("a/b\n") == "X\n"

    def test_multiple_rules_in_order(self):
        program = SedProgram("s/a/b/\ns/b/c/")
        assert program.run("a\n") == "c\n"

    def test_bad_regex_raises(self):
        with pytest.raises(SedError):
            SedProgram("s/(/x/")

    def test_unknown_flag_raises(self):
        with pytest.raises(SedError):
            SedProgram("s/a/b/Z")


class TestAddresses:
    def test_line_number(self):
        program = SedProgram("2s/x/Y/")
        assert program.run("x\nx\nx\n") == "x\nY\nx\n"

    def test_last_line(self):
        program = SedProgram("$s/x/Y/")
        assert program.run("x\nx\n") == "x\nY\n"

    def test_regex_address(self):
        program = SedProgram("/skip/d")
        assert program.run("keep\nskip me\nkeep\n") == "keep\nkeep\n"

    def test_negated_address(self):
        program = SedProgram("/keep/!d")
        assert program.run("keep 1\ndrop\nkeep 2\n") == "keep 1\nkeep 2\n"

    def test_range(self):
        program = SedProgram("/start/,/stop/d")
        text = "a\nstart\nmid\nstop\nb\n"
        assert program.run(text) == "a\nb\n"

    def test_numeric_range(self):
        program = SedProgram("2,3d")
        assert program.run("1\n2\n3\n4\n") == "1\n4\n"


class TestOtherCommands:
    def test_delete(self):
        assert SedProgram("/x/d").run("x\ny\n") == "y\n"

    def test_print_duplicates(self):
        assert SedProgram("p").run("a\n") == "a\na\n"

    def test_suppress_mode(self):
        program = SedProgram("/hit/p")
        assert program.run("miss\nhit\n", suppress=True) == "hit\n"

    def test_transliterate(self):
        assert SedProgram("y/abc/xyz/").run("cab\n") == "zxy\n"

    def test_transliterate_length_mismatch(self):
        with pytest.raises(SedError):
            SedProgram("y/ab/xyz/")

    def test_line_number_command(self):
        assert SedProgram("=").run("a\nb\n", suppress=True) == "1\n2\n"

    def test_insert(self):
        program = SedProgram(r"/b/i\ inserted")
        assert program.run("a\nb\n") == "a\ninserted\nb\n"

    def test_append(self):
        program = SedProgram(r"/a/a\ appended")
        assert program.run("a\nb\n") == "a\nappended\nb\n"

    def test_change(self):
        program = SedProgram(r"/old/c\ new")
        assert program.run("old\nkeep\n") == "new\nkeep\n"

    def test_quit(self):
        program = SedProgram("/stop/q")
        assert program.run("a\nstop\nnever\n") == "a\nstop\n"

    def test_comments_and_blanks_ignored(self):
        program = SedProgram("# comment\n\ns/a/b/\n")
        assert program.run("a\n") == "b\n"

    def test_unknown_command(self):
        with pytest.raises(SedError):
            SedProgram("Z")

    def test_empty_input(self):
        assert SedProgram("s/a/b/").run("") == ""
