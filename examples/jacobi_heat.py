#!/usr/bin/env python3
"""Jacobi relaxation: speedup vs process count on every machine.

This is the kind of numerical workload the Force grew up on ("a
parallel programming language ... which evolved in the course of
implementing numerical algorithms", §2).  A 1-D heat rod relaxes under
prescheduled DOALL sweeps separated by barriers; the experiment sweeps
the force size and reports simulated speedup — demonstrating that the
*program* is independent of the number of processes (§1).

Run:  python examples/jacobi_heat.py
"""

from repro.core import MACHINES, force_run, force_translate, programs


def main() -> None:
    source = programs.render("jacobi", n=384, iters=60)
    process_counts = (1, 2, 4, 8)

    print("Jacobi relaxation, 384-point rod, 60 sweeps")
    print(f"{'machine':18s}" +
          "".join(f"  P={p:<8d}" for p in process_counts) + "  speedup@8")
    reference_output = None
    for machine in MACHINES.values():
        translation = force_translate(source, machine)
        spans = []
        for nproc in process_counts:
            result = force_run(translation, nproc)
            if reference_output is None:
                reference_output = result.output
            assert result.output == reference_output, \
                "output must not depend on machine or process count"
            spans.append(result.makespan)
        speedup = spans[0] / spans[-1]
        cells = "".join(f"  {span:<9d}" for span in spans)
        print(f"{machine.name:18s}{cells}  {speedup:5.2f}x")
    print(f"\nProgram output (identical in all runs): {reference_output}")
    print("Shapes to notice: the HEP and Alliant (cheap process "
          "creation) speed up best;\nthe Cray-2's expensive fork and "
          "OS locks make fine-grained barriers costly —\nexactly the "
          "machine dependence the paper says the Force hides from the "
          "*program*.")


if __name__ == "__main__":
    main()
