#!/usr/bin/env python3
"""Close the loop: trace a run, tune it, re-run the recommendation.

The forensics demo in three acts:

1. run the Jacobi kernel the naive way — pure selfscheduling, one
   index per lock round — with tracing on;
2. feed the trace to the recommender (the library behind
   ``force tune``), which predicts the makespan of every candidate
   schedule from the measured per-index costs and lock overhead;
3. re-run with the recommended schedule and compare wall clocks.

Run:  python examples/tuned_jacobi.py [recommendation.json]
"""

import json
import sys
from time import perf_counter

import numpy as np

from repro.obsv.tune import tune_from_events, validate_recommendation
from repro.runtime import Force

NPROC, N, SWEEPS = 4, 192, 40


def jacobi(schedule: str | None, chunk: int | None):
    """One Jacobi program under the given selfsched policy."""

    def program(force, me):
        u = force.shared_array("u", N)
        unew = force.shared_array("unew", N)

        def init():
            u[0] = u[-1] = 100.0

        force.barrier_section(me, init)
        for _sweep in range(SWEEPS):
            if schedule == "blocked":
                # static blocked partition: no index lock at all
                sweep = force.presched_range(me, 1, N - 2)
            elif schedule == "cyclic":
                sweep = range(me, N - 2, force.nproc)
            else:
                sweep = force.selfsched_range(
                    "sweep", 1, N - 2, chunk=chunk or 1,
                    schedule=schedule)
            for i in sweep:
                unew[i] = 0.5 * (u[i - 1] + u[i + 1])
            force.barrier()
            for i in force.presched_range(me, 1, N - 2):
                u[i] = unew[i]
            force.barrier()

    return program


def timed_run(schedule, chunk, *, trace=False):
    force = Force(nproc=NPROC, trace=trace, timeout=60)
    started = perf_counter()
    force.run(jacobi(schedule, chunk))
    wall = perf_counter() - started
    return force, wall


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else \
        "tuned_jacobi_recommendation.json"

    # Act 1: the naive schedule, traced.
    force, wall_naive = timed_run("self", None, trace=True)
    print(f"naive run   (self-scheduled): {wall_naive:.3f}s wall, "
          f"{len(force.trace_events())} trace events")

    # Act 2: measurements -> policy.
    doc = tune_from_events(force.trace_events(),
                           source={"example": "tuned_jacobi"})
    problems = validate_recommendation(doc)
    assert problems == [], problems
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
    sched = doc["recommendations"]["sched"]
    print(f"recommendation -> {out_path}")
    if sched is None:
        print("no selfsched loop observed; nothing to retune")
        return 0
    print(f"  schedule: {sched['policy']}"
          + (f" (chunk {sched['chunk']})" if sched.get("chunk") else ""))
    print(f"  why: {sched['why']}")

    # Act 3: run what the recommender chose.
    _, wall_tuned = timed_run(sched["policy"], sched.get("chunk"))
    verdict = "faster" if wall_tuned < wall_naive else \
        "not faster on this host (tiny problem; predictions are " \
        "about lock traffic, wall noise dominates below ~10ms)"
    print(f"tuned run   ({sched['policy']}): {wall_tuned:.3f}s wall "
          f"-- {verdict}")

    # the recommendation is numbers, not vibes: show the predictions
    predicted = sched["predicted_makespans"]
    best = min(predicted, key=predicted.get)
    print("  predicted makespans: "
          + ", ".join(f"{name}={value:.4g}"
                      for name, value in sorted(predicted.items()))
          + f"  (best: {best})")
    assert np.isfinite(list(predicted.values())).all()
    return 0


if __name__ == "__main__":
    sys.exit(main())
