#!/usr/bin/env python3
"""Quickstart: compile and run one Force program on all six machines.

The program computes sum(1..100) with a selfscheduled DOALL and a
critical-section reduction — the portable shared-memory style of the
paper.  The same source runs unchanged everywhere; only the simulated
cost profile differs.

Run:  python examples/quickstart.py
"""

from repro.core import MACHINES, force_compile_and_run
from repro._util.text import strip_margin

SOURCE = strip_margin("""
    Force QUICK of NP ident ME
    Shared INTEGER TOTAL
    Private INTEGER K
    End declarations
    Barrier
          TOTAL = 0
    End barrier
    Selfsched DO 100 K = 1, 100
          Critical SUMLCK
          TOTAL = TOTAL + K
          End critical
    100 End Selfsched DO
    Barrier
          WRITE(*,*) "SUM(1..100) =", TOTAL
    End barrier
    Join
          END
""")


def main() -> None:
    nproc = 4
    print(f"Running the same Force program on {len(MACHINES)} machines "
          f"with {nproc} processes each:\n")
    print(f"{'machine':18s} {'output':22s} {'makespan':>10s} "
          f"{'locks':>7s} {'spin':>8s} {'ctx-sw':>7s}")
    for machine in MACHINES.values():
        result = force_compile_and_run(SOURCE, machine, nproc)
        stats = result.stats
        print(f"{machine.name:18s} {result.output[0]:22s} "
              f"{stats.makespan:>10d} {stats.lock_acquisitions:>7d} "
              f"{stats.spin_cycles:>8d} {stats.context_switches:>7d}")
    print("\nSame answer everywhere; machine-specific synchronization "
          "costs (spin vs syscall locks, process creation) shape the "
          "makespans.")


if __name__ == "__main__":
    main()
