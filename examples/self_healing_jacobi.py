#!/usr/bin/env python3
"""Kill a worker mid-relaxation and watch the run heal itself.

The demo in three acts:

1. run a fault-free Jacobi relaxation and record its final-state
   digest — the bit-exact answer;
2. re-run with an injected abrupt death (a worker dies holding the
   critical section, no cleanup) under a :class:`SupervisedRun` with
   barrier-epoch checkpointing: the attempt fails with a structured
   ``ForceWorkerDied``, the supervisor restores the newest snapshot
   and retries — one worker short, because ``degrade_after=1`` and
   ``min_nproc`` allow elastic restart;
3. compare digests: the recovered state must hash equal to the
   fault-free one, or recovery silently changed the answer.

The program follows the recoverable-program contract: its sweep
counter lives in a *shared* counter (not a local loop variable), so a
resumed attempt — possibly with a different worker count — picks up at
the sweep the restored cut recorded and recomputes the interrupted
sweep bit-for-bit.

Run:  python examples/self_healing_jacobi.py
"""

import tempfile

from repro.faults.plan import FaultPlan, FaultSpec
from repro.runtime import Force
from repro.runtime.checkpoint import CheckpointPolicy, state_digest
from repro.runtime.supervisor import RetryPolicy, SupervisedRun

NPROC, N, SWEEPS = 4, 64, 12


def jacobi(force, me):
    u = force.shared_array("u", N)
    unew = force.shared_array("unew", N)
    sweep = force.shared_counter("sweep")    # shared progress counter

    def init():
        u[0] = u[-1] = 100.0                 # idempotent boundaries

    force.barrier_section(me, init)
    while int(sweep.value) < SWEEPS:
        for i in force.presched_range(me, 1, N - 2):
            unew[i] = 0.5 * (u[i - 1] + u[i + 1])
        force.barrier()
        for i in force.presched_range(me, 1, N - 2):
            u[i] = unew[i]
        # close the sweep at the barrier's consistent cut
        force.barrier_section(me, lambda: setattr(
            sweep, "value", int(sweep.value) + 1))
        with force.critical("tick"):
            pass                             # a site worth dying at


def main() -> int:
    # Act 1: the fault-free answer.
    reference = Force(NPROC, timeout=60)
    reference.run(jacobi)
    oracle = state_digest(reference.capture_state())
    print(f"fault-free digest: {oracle[:16]}…")

    # Act 2: one worker dies abruptly at its 30th critical entry.
    plan = FaultPlan(seed=0, faults=(
        FaultSpec(kind="die", site="critical.acquire", name="tick",
                  occurrence=30),))
    with tempfile.TemporaryDirectory(prefix="force-ckpt-") as snaps:
        supervised = SupervisedRun(
            jacobi, nproc=NPROC, min_nproc=NPROC - 1,
            checkpoint=CheckpointPolicy(every_n_barriers=2, dir=snaps),
            retry=RetryPolicy(retries=2, degrade_after=1, seed=0),
            inject=plan, timeout=60, construct_timeout=10.0)
        result = supervised.run()

    for attempt in result.attempts:
        resumed = attempt.resumed_from or "fresh start"
        print(f"attempt {attempt.attempt}: nproc={attempt.nproc} "
              f"({resumed}) -> {attempt.outcome}")
    print(f"recovered after {result.retries} retry(s), "
          f"{result.recoveries} resume(s), "
          f"{result.degraded_restarts} degraded restart(s), "
          f"final nproc {result.final_nproc}")

    # Act 3: recovery must not change the answer.
    digest = state_digest(result.force.capture_state())
    print(f"recovered digest:  {digest[:16]}…")
    if digest != oracle:
        print("DIVERGED: recovery changed the answer")
        return 1
    print("bit-identical: the run healed without changing a bit")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
