#!/usr/bin/env python3
"""A traced native Jacobi run: Chrome trace file + construct summary.

Runs the paper's Jacobi kernel on the thread-based runtime with
``trace=True``, writes the collected events as a Chrome trace-event
JSON file (open it at https://ui.perfetto.dev or chrome://tracing —
one lane per Force process), and prints the per-construct summary the
``force trace`` subcommand would show.

Run:  python examples/traced_jacobi.py [trace.json]
"""

import sys

import numpy as np

from repro.runtime import Force
from repro.trace import (
    render_trace_summary,
    summarize_events,
    validate_chrome_trace,
    write_trace_file,
)
from repro.trace.export import to_chrome


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "traced_jacobi.json"
    nproc, n, sweeps = 4, 96, 30
    force = Force(nproc=nproc, trace=True, timeout=60,
                  watchdog_interval=5.0)

    def program(force, me):
        u = force.shared_array("u", n)
        unew = force.shared_array("unew", n)
        residual = force.shared_counter("residual", 0.0)

        def init():
            u[0] = u[-1] = 100.0

        force.barrier_section(me, init)
        for _sweep in range(sweeps):
            # selfscheduled sweep: each chunk dispatch is one event
            for i in force.selfsched_range("sweep", 1, n - 2):
                unew[i] = 0.5 * (u[i - 1] + u[i + 1])
            force.barrier()
            for i in force.presched_range(me, 1, n - 2):
                u[i] = unew[i]
            force.barrier()
        with force.critical("residual"):
            residual.value += float(np.abs(u).sum())
        force.barrier()

    force.run(program)

    events = force.trace_events()
    meta = {"example": "traced_jacobi", "nproc": nproc,
            "clock": "seconds"}
    problems = validate_chrome_trace(to_chrome(events, meta=meta))
    assert problems == [], problems
    fmt = write_trace_file(out_path, events, meta=meta)
    print(f"{len(events)} events ({fmt}) -> {out_path}  "
          f"[load it in Perfetto or chrome://tracing]")
    print()
    print(render_trace_summary(summarize_events(events)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
