#!/usr/bin/env python3
"""A tour of the machine dependencies (§4.1) the macro layer hides.

Translates one small Force program for every machine and shows exactly
what changes per port: the lock primitives, the produce/consume
protocol, the process-creation call, and the shared-memory binding
mechanism (directives, linker protocol, or run-time startup).

Run:  python examples/portability_tour.py
"""

import re

from repro.core import MACHINES, force_run, force_translate
from repro._util.text import strip_margin

SOURCE = strip_margin("""
    Force TOUR of NP ident ME
    Async INTEGER CHAN
    Private INTEGER V
    End declarations
          IF (ME .EQ. 1) THEN
          Produce CHAN = 7
          END IF
          IF (ME .EQ. 2) THEN
          Consume CHAN into V
          END IF
    Join
          END
""")


def first_match(pattern: str, text: str) -> str:
    match = re.search(pattern, text)
    return match.group(0).strip() if match else "-"


def main() -> None:
    print("One Force program, six ports.  What the macro layer changes:\n")
    header = (f"{'machine':17s} {'lock call':10s} {'produce via':12s} "
              f"{'spawn':9s} {'sharing bound at':16s} {'mechanism'}")
    print(header)
    print("-" * len(header))
    for machine in MACHINES.values():
        t = force_translate(SOURCE, machine)
        lock = first_match(r"CALL (SPINLK|SYSLCK|CMBLCK|HEPLKW)", t.fortran)
        produce = ("HEPPRD (hardware)" if "HEPPRD" in t.fortran
                   else "two locks")
        spawn = first_match(r"CALL (FRKALL|HEPSPN)", t.fortran)
        if t.shared_directives:
            mechanism = f"{len(t.shared_directives)} directives"
        elif machine.sharing_binding.value == "link-time":
            mechanism = "two-run linker pipe"
        else:
            mechanism = "startup subroutine"
        print(f"{machine.name:17s} {lock.split()[-1]:10s} "
              f"{produce:12s} {spawn.split()[-1]:9s} "
              f"{machine.sharing_binding.value:16s} {mechanism}")

    print("\nAnd the run-time evidence (3 processes each):")
    for machine in MACHINES.values():
        t = force_translate(SOURCE, machine)
        result = force_run(t, nproc=3)
        extras = []
        if result.linker_commands:
            extras.append(f"linker: {result.linker_commands[0]} …")
        if result.memory_plan is not None:
            plan = result.memory_plan
            extras.append(f"shared pages [{plan.shared_start}, "
                          f"{plan.shared_end}) pad={plan.padding_bytes}B")
        print(f"  {machine.name:17s} makespan={result.makespan:<8d} "
              + "; ".join(extras))


if __name__ == "__main__":
    main()
