#!/usr/bin/env python3
"""The Force programming model natively in Python (real threads).

Three miniatures using :mod:`repro.runtime`:

1. a barrier-synchronised Jacobi sweep over a shared numpy array;
2. a producer/consumer stage over an asynchronous (full/empty) variable;
3. dynamic work distribution with the Askfor monitor, plus Resolve —
   the paper's "yet unimplemented concept" — splitting the force into
   producer and consumer components;
4. the same Jacobi sweep with ``stats=True``: barrier episodes,
   critical contention and selfsched chunk counts, rendered with
   ``Force.stats_report()``.

Run:  python examples/native_force.py
"""

import numpy as np

from repro.runtime import Force


def jacobi_demo() -> None:
    nproc, n, sweeps = 4, 64, 50
    force = Force(nproc=nproc, timeout=60)

    def program(force, me):
        u = force.shared_array("u", n)
        unew = force.shared_array("unew", n)

        def init():
            u[0] = u[-1] = 100.0

        force.barrier_section(me, init)
        for _sweep in range(sweeps):
            for i in force.presched_range(me, 1, n - 2):
                unew[i] = 0.5 * (u[i - 1] + u[i + 1])
            force.barrier()
            for i in force.presched_range(me, 1, n - 2):
                u[i] = unew[i]
            force.barrier()

    force.run(program)
    u = force.shared_array("u", n)
    print(f"1) Jacobi on {nproc} threads: "
          f"u[mid] = {u[n // 2]:.3f} (ends fixed at 100.0)")


def pipeline_demo() -> None:
    items = 25
    force = Force(nproc=2, timeout=60)

    def program(force, me):
        channel = force.async_var("channel")
        sink = force.shared_counter("sink", 0)
        if me == 1:
            for k in range(1, items + 1):
                channel.produce(k * k)
        else:
            for _ in range(items):
                value = channel.consume()
                with force.critical("sink"):
                    sink.value += value

    force.run(program)
    total = force.shared_counter("sink").value
    print(f"2) Pipeline over a full/empty variable: "
          f"sum of squares 1..{items} = {total}")


def askfor_resolve_demo() -> None:
    force = Force(nproc=6, timeout=60)

    def program(force, me):
        split = force.resolve("roles", {"makers": 1, "workers": 2})
        role, rank = split.component_of(me)
        pool = force.askfor("jobs", [8] if me == 1 else None)
        done = force.shared_counter("done", 0)
        if role == "makers":
            # Makers also pull work; the pool balances automatically.
            pass
        for weight in pool:
            if weight > 1:
                pool.put(weight - 1)
                pool.put(weight - 1)
            with force.critical("count"):
                done.value += 1
        split.unify(me)

    force.run(program)
    done = force.shared_counter("done").value
    print(f"3) Askfor tree of depth 8 over a resolved force: "
          f"{done} work units (expected {2 ** 8 - 1})")


def stats_demo() -> None:
    nproc, n, sweeps = 4, 64, 20
    force = Force(nproc=nproc, timeout=60, stats=True)

    def program(force, me):
        u = force.shared_array("u", n)
        unew = force.shared_array("unew", n)
        residual = force.shared_counter("residual", 0.0)

        def init():
            u[0] = u[-1] = 100.0

        force.barrier_section(me, init)
        for _sweep in range(sweeps):
            for i in force.selfsched_range("sweep", 1, n - 2):
                unew[i] = 0.5 * (u[i - 1] + u[i + 1])
            force.barrier()
            delta = 0.0
            for i in force.presched_range(me, 1, n - 2):
                delta = max(delta, abs(u[i] - unew[i]))
                u[i] = unew[i]
            with force.critical("residual"):
                residual.value = max(residual.value, delta)
            force.barrier()

    force.run(program)
    print("4) Instrumented Jacobi (stats=True):")
    print(force.stats_report())


def main() -> None:
    jacobi_demo()
    pipeline_demo()
    askfor_resolve_demo()
    stats_demo()


if __name__ == "__main__":
    main()
