"""E3 — Barrier algorithms ([AJ87], cited at the Barrier macro).

Claim/shape: the Force's central-counter barrier costs O(P) per
episode (serialised arrivals through the counter lock), while the
structured algorithms (dissemination, tournament) cost O(log P); the
constant is set by the machine's lock mechanism — enormous on the
syscall-lock Cray-2, tiny on the HEP.
"""

from time import perf_counter

from repro.machines import CRAY_2, HEP, SEQUENT_BALANCE
from repro.sim.barrier_algorithms import (
    SIM_BARRIER_ALGORITHMS,
    measure_barrier_cost,
)

PROCESS_COUNTS = (2, 4, 8, 16, 32)
MACHINES_TESTED = (SEQUENT_BALANCE, HEP, CRAY_2)


def _measure_all():
    data = {}
    for machine in MACHINES_TESTED:
        for algorithm in SIM_BARRIER_ALGORITHMS:
            for nproc in PROCESS_COUNTS:
                data[(machine.key, algorithm, nproc)] = \
                    measure_barrier_cost(algorithm, machine, nproc)
    return data


def test_e3_barrier_algorithms(benchmark, record_table, record_result):
    t0 = perf_counter()
    data = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    wall = perf_counter() - t0
    lines = ["E3: cycles per barrier episode vs process count"]
    for machine in MACHINES_TESTED:
        lines.append(f"\n  {machine.name} "
                     f"({machine.lock_type.value} locks)")
        lines.append("  " + f"{'P':>4s}" + "".join(
            f"{a:>18s}" for a in SIM_BARRIER_ALGORITHMS))
        for nproc in PROCESS_COUNTS:
            row = "".join(f"{data[(machine.key, a, nproc)]:>18.1f}"
                          for a in SIM_BARRIER_ALGORITHMS)
            lines.append("  " + f"{nproc:>4d}" + row)
    record_table("E3 barrier algorithm comparison", "\n".join(lines))
    record_result("e3_barriers",
                  params={"process_counts": list(PROCESS_COUNTS),
                          "machines": [m.key for m in MACHINES_TESTED],
                          "algorithms": list(SIM_BARRIER_ALGORITHMS)},
                  wall_s=wall,
                  data={f"{m}/{a}/p{n}": cost
                        for (m, a, n), cost in data.items()})

    for machine in MACHINES_TESTED:
        counter32 = data[(machine.key, "central-counter", 32)]
        counter2 = data[(machine.key, "central-counter", 2)]
        dissem32 = data[(machine.key, "dissemination", 32)]
        dissem2 = data[(machine.key, "dissemination", 2)]
        # Counter grows ~linearly (>=8x from P=2 to P=32), the
        # log-depth algorithm far slower (<= 8x = more than log-like
        # slack, still clearly sublinear).
        assert counter32 / counter2 > 8, machine.name
        assert dissem32 / dissem2 <= 8, machine.name
        # At scale the structured barrier wins on every machine.
        assert dissem32 < counter32, machine.name
    # Lock mechanism sets the constant: Cray >> Sequent >> HEP.
    assert data[("cray-2", "central-counter", 8)] > \
        data[("sequent-balance", "central-counter", 8)] > \
        data[("hep", "central-counter", 8)]
