"""E1 — Portability matrix (§1, §4, §5).

Claim: the same Force program runs unchanged on six shared-memory
multiprocessors.  We run the whole sample-program suite on every
machine and assert identical program output everywhere, while the
makespans (and the generated code) are machine-specific.
"""

from time import perf_counter

from repro.core import MACHINES, force_run, force_translate, programs

PROGRAMS = ("sum_critical", "dot_product", "pipeline", "sections",
            "askfor_tree", "matrix_scale", "subroutine_call", "jacobi")
NPROC = 4


def _run_matrix():
    rows = []
    for name in PROGRAMS:
        source = programs.render(name)
        outputs = {}
        spans = {}
        for machine in MACHINES.values():
            result = force_run(force_translate(source, machine), NPROC)
            outputs[machine.key] = tuple(result.output)
            spans[machine.key] = result.makespan
        assert len(set(outputs.values())) == 1, \
            f"{name}: outputs diverge across machines: {outputs}"
        rows.append((name, outputs.popitem()[1], spans))
    return rows


def test_e1_portability_matrix(benchmark, record_table, record_result):
    t0 = perf_counter()
    rows = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    wall = perf_counter() - t0
    header = f"{'program':17s}" + "".join(
        f"{m.key:>17s}" for m in MACHINES.values())
    lines = [f"E1: makespan (cycles) per machine, nproc={NPROC}; "
             "identical program output asserted on all machines", header]
    for name, _output, spans in rows:
        lines.append(f"{name:17s}" + "".join(
            f"{spans[m.key]:>17d}" for m in MACHINES.values()))
    record_table("E1 portability matrix", "\n".join(lines))
    record_result("e1_portability",
                  params={"programs": list(PROGRAMS), "nproc": NPROC,
                          "machines": [m.key for m in MACHINES.values()]},
                  wall_s=wall,
                  data={name: spans for name, _output, spans in rows})
    benchmark.extra_info["programs"] = len(rows)
    benchmark.extra_info["machines"] = len(MACHINES)
    # Shape claim: every program ported everywhere (asserted inside),
    # and the six machines do not share one performance profile.
    any_spans = rows[0][2]
    assert len(set(any_spans.values())) > 1
