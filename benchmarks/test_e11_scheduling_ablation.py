"""E11 (ablation) — three schedulers × three load patterns.

An ablation of the work-distribution design space behind §3.3: the
Force's cyclic prescheduling vs a blocked static distribution vs
selfscheduling, under uniform, triangular (front-loaded) and
stride-resonant loads.  Expected shape:

* uniform — any static map wins (no sync);
* triangular — cyclic stays balanced, blocked gives one process the
  heavy front block, selfscheduling pays locks but balances;
* stride-resonant (heavy every NPROC-th index) — cyclic collapses
  (all heavy indices on one process), blocked and selfsched survive.
"""

from time import perf_counter

from repro.core import SEQUENT_BALANCE, force_compile_and_run
from repro._util.text import strip_margin

NPROC = 4
N_ITER = 64

_TEMPLATE = """
    Force ABLA of NP ident ME
    Private INTEGER I, J, W
    Shared INTEGER SINK
    End declarations
    Barrier
          SINK = 0
    End barrier
    {open_loop}
          {weight_code}
          DO 5 J = 1, W
            SINK = SINK
    5     CONTINUE
    {close_loop}
    Join
          END
"""

#: scheduler name -> (loop open, loop close, selfsched policy kwargs);
#: the last two are dispatch-policy variants of the same selfsched
#: source, selected at translate time (force run --sched/--chunk)
_LOOPS = {
    "cyclic": (f"Presched DO 100 I = 1, {N_ITER}",
               "100 End presched DO", {}),
    "blocked": (f"Blocksched DO 100 I = 1, {N_ITER}",
                "100 End blocksched DO", {}),
    "selfsched": (f"Selfsched DO 100 I = 1, {N_ITER}",
                  "100 End Selfsched DO", {}),
    "chunked4": (f"Selfsched DO 100 I = 1, {N_ITER}",
                 "100 End Selfsched DO",
                 {"sched": "chunked", "chunk": 4}),
    "guided": (f"Selfsched DO 100 I = 1, {N_ITER}",
               "100 End Selfsched DO", {"sched": "guided"}),
}

_LOADS = {
    "uniform": "W = 100",
    "triangular": f"W = 3 * ({N_ITER} - I)",
    "resonant": (f"IF (MOD(I, {NPROC}) .EQ. 1) THEN\n"
                 "            W = 800\n"
                 "          ELSE\n"
                 "            W = 4\n"
                 "          END IF"),
}


def _measure():
    spans = {}
    for load, weight_code in _LOADS.items():
        for scheduler, (open_loop, close_loop, policy) in _LOOPS.items():
            source = strip_margin(_TEMPLATE).format(
                open_loop=open_loop, close_loop=close_loop,
                weight_code=weight_code)
            result = force_compile_and_run(source, SEQUENT_BALANCE, NPROC,
                                           **policy)
            spans[(load, scheduler)] = result.makespan
    return spans


def test_e11_scheduling_ablation(benchmark, record_table, record_result):
    t0 = perf_counter()
    spans = benchmark.pedantic(_measure, rounds=1, iterations=1)
    wall = perf_counter() - t0
    lines = [f"E11 (ablation): makespan by scheduler x load "
             f"({SEQUENT_BALANCE.name}, nproc={NPROC}, {N_ITER} iters)",
             f"{'load':12s}" + "".join(f"{s:>12s}" for s in _LOOPS)
             + f"{'best':>12s}"]
    for load in _LOADS:
        row = {s: spans[(load, s)] for s in _LOOPS}
        best = min(row, key=row.get)
        lines.append(f"{load:12s}" + "".join(
            f"{row[s]:>12d}" for s in _LOOPS) + f"{best:>12s}")
    record_table("E11 scheduling ablation", "\n".join(lines))
    record_result("e11_scheduling_ablation",
                  params={"nproc": NPROC, "iterations": N_ITER,
                          "machine": SEQUENT_BALANCE.key,
                          "schedulers": list(_LOOPS),
                          "loads": list(_LOADS)},
                  wall_s=wall,
                  data={f"{load}/{sched}": span
                        for (load, sched), span in spans.items()})

    # Uniform: static distributions beat selfscheduling.
    assert spans[("uniform", "cyclic")] < spans[("uniform", "selfsched")]
    assert spans[("uniform", "blocked")] < spans[("uniform", "selfsched")]
    # Triangular: cyclic stays balanced, blocked collapses.
    assert spans[("triangular", "cyclic")] < \
        spans[("triangular", "blocked")]
    # Resonant: cyclic collapses; both alternatives beat it.
    assert spans[("resonant", "blocked")] < spans[("resonant", "cyclic")]
    assert spans[("resonant", "selfsched")] < \
        spans[("resonant", "cyclic")]
