"""E4 — Lock mechanisms under contention (§4.1.3).

Claim/shape: spinning is cheap to acquire but burns processor cycles
while waiting; system-call locks waste no cycles but pay hundreds of
cycles of OS overhead per contended handoff; the Flex/32's combined
lock behaves like a spinlock for short critical sections and like a
syscall lock for long ones; HEP hardware full/empty waiting is nearly
free.
"""

from time import perf_counter

from repro.machines import CRAY_2, FLEX_32, HEP, SEQUENT_BALANCE
from repro.sim import AcquireLock, Cost, ReleaseLock, Scheduler

MACHINES_TESTED = (SEQUENT_BALANCE, CRAY_2, FLEX_32, HEP)
SECTION_LENGTHS = (20, 200, 2000)
NPROC = 6
ROUNDS = 10


def _contended_run(machine, section_cycles):
    return _contended_run_nproc(machine, section_cycles, NPROC)


def _contended_run_nproc(machine, section_cycles, nproc):
    scheduler = Scheduler(machine)
    lock = scheduler.new_lock("L")

    def worker(me):
        for _round in range(ROUNDS):
            yield AcquireLock(lock)
            yield Cost(section_cycles)
            yield ReleaseLock(lock)

    for me in range(nproc):
        scheduler.spawn(worker(me))
    stats = scheduler.run()
    total_acquisitions = nproc * ROUNDS
    return {
        "makespan": stats.makespan,
        "overhead_per_acq": (stats.makespan -
                             total_acquisitions * section_cycles)
        / total_acquisitions,
        "spin": stats.spin_cycles,
        "switches": stats.context_switches,
    }


def _sweep():
    return {(m.key, s): _contended_run(m, s)
            for m in MACHINES_TESTED for s in SECTION_LENGTHS}


def test_e4_lock_mechanisms(benchmark, record_table, record_result):
    t0 = perf_counter()
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    wall = perf_counter() - t0
    lines = [f"E4: {NPROC} processes contending a lock, {ROUNDS} "
             "rounds each; overhead = cycles per acquisition beyond "
             "the critical section",
             f"{'machine':17s}{'section':>9s}{'overhead':>10s}"
             f"{'spin cyc':>10s}{'ctx sw':>7s}"]
    for machine in MACHINES_TESTED:
        for section in SECTION_LENGTHS:
            d = data[(machine.key, section)]
            lines.append(f"{machine.name:17s}{section:>9d}"
                         f"{d['overhead_per_acq']:>10.1f}"
                         f"{d['spin']:>10d}{d['switches']:>7d}")
    record_table("E4 lock mechanism costs", "\n".join(lines))
    record_result("e4_locks",
                  params={"nproc": NPROC, "rounds": ROUNDS,
                          "section_lengths": list(SECTION_LENGTHS)},
                  wall_s=wall,
                  data={f"{m}/s{s}": d
                        for (m, s), d in data.items()})

    # Spin machine burns cycles; syscall machine burns none but context
    # switches instead.
    assert data[("sequent-balance", 200)]["spin"] > 0
    assert data[("sequent-balance", 200)]["switches"] == 0
    assert data[("cray-2", 200)]["spin"] == 0
    assert data[("cray-2", 200)]["switches"] > 0
    # Combined lock: what matters is the *wait* length.  With six
    # contenders even a short section can exceed the spin budget for
    # deep queue positions, so compare two-process runs (wait ≈ one
    # section) across section lengths: short waits spin, long waits
    # fall back to the OS.
    short_two = _contended_run_nproc(FLEX_32, 20, 2)
    long_two = _contended_run_nproc(FLEX_32, 2000, 2)
    assert short_two["switches"] == 0 and short_two["spin"] > 0
    assert long_two["switches"] > 0
    # And across the 6-way matrix, longer sections mean more fallbacks.
    assert data[("flex32", 20)]["switches"] <= \
        data[("flex32", 2000)]["switches"]
    # HEP waiting is nearly free: lowest overhead at every length.
    for section in SECTION_LENGTHS:
        hep = data[("hep", section)]["overhead_per_acq"]
        assert all(hep <= data[(m.key, section)]["overhead_per_acq"]
                   for m in MACHINES_TESTED), section
    # Syscall overhead dominates the spin machine's under contention.
    assert data[("cray-2", 200)]["overhead_per_acq"] > \
        data[("sequent-balance", 200)]["overhead_per_acq"]
