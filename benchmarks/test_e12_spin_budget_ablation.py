"""E12 (ablation) — the Flex/32 combined lock's spin budget.

§4.1.3 describes the Flex's lock as "spinlock for limited time, then
make operating system call".  How long should the limited time be?
This ablation sweeps the spin budget against a mix of short and long
critical sections.  The objective is **consumed processor cycles**
(busy time), not makespan: with a dedicated CPU per process and no bus
contention modelled, pure spinning never lengthens the critical path —
what it wastes is the processor itself, which is what the combined
lock exists to save.  Too small a budget pays OS overhead even for
short waits; too large burns the CPU through long ones; the useful
budgets sit near the typical short-wait length — the design point the
real machine chose (120 cycles).
"""

from dataclasses import replace
from time import perf_counter

from repro.machines import FLEX_32
from repro.sim import AcquireLock, Cost, ReleaseLock, Scheduler

BUDGETS = (10, 60, 120, 500, 5_000, 50_000)
NPROC = 2
ROUNDS = 24
SHORT, LONG = 40, 4_000
GAP = 60
LONG_EVERY = 6


def _mixed_workload_makespan(machine):
    """Lightly contended lock: mostly short holds, occasional long
    ones — the regime the combined lock was designed for.  Waits are
    usually a few hundred cycles (convoy of short sections), rarely a
    few thousand (behind a long section)."""
    scheduler = Scheduler(machine)
    lock = scheduler.new_lock("L")

    def worker(me):
        yield Cost(me * 15)        # offset so most waits are short
        for round_no in range(ROUNDS):
            yield AcquireLock(lock)
            hold = LONG if round_no % LONG_EVERY == me else SHORT
            yield Cost(hold)
            yield ReleaseLock(lock)
            yield Cost(GAP)

    for me in range(NPROC):
        scheduler.spawn(worker(me))
    stats = scheduler.run()
    return stats


def _sweep():
    data = {}
    for budget in BUDGETS:
        machine = replace(FLEX_32, combined_spin_limit=budget)
        stats = _mixed_workload_makespan(machine)
        data[budget] = (stats.makespan, stats.total_busy,
                        stats.spin_cycles, stats.context_switches)
    return data


def test_e12_spin_budget_sweep(benchmark, record_table, record_result):
    t0 = perf_counter()
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    wall = perf_counter() - t0
    lines = [f"E12 (ablation): combined-lock spin budget sweep "
             f"(Flex/32 model, {NPROC} processes, alternating "
             f"{SHORT}/{LONG}-cycle sections)",
             f"{'budget':>8s}{'makespan':>11s}{'busy cyc':>11s}"
             f"{'spin cyc':>10s}{'ctx sw':>8s}"]
    for budget in BUDGETS:
        makespan, busy, spin, switches = data[budget]
        lines.append(f"{budget:>8d}{makespan:>11d}{busy:>11d}"
                     f"{spin:>10d}{switches:>8d}")
    best = min(BUDGETS, key=lambda b: data[b][1])
    lines.append(f"best budget (by busy cycles): {best} "
                 f"(factory Flex/32 setting: "
                 f"{FLEX_32.combined_spin_limit})")
    record_table("E12 spin budget ablation", "\n".join(lines))
    record_result("e12_spin_budget_ablation",
                  params={"budgets": list(BUDGETS), "nproc": NPROC,
                          "rounds": ROUNDS,
                          "section_cycles": [SHORT, LONG]},
                  wall_s=wall,
                  data={"best_budget": best,
                        "sweep": {str(budget): {
                            "makespan": makespan, "busy": busy,
                            "spin": spin, "switches": switches}
                            for budget, (makespan, busy, spin, switches)
                            in data.items()}})

    # Shape: tiny budgets context-switch on everything; huge budgets
    # never switch but burn spin cycles on the long sections.
    assert data[10][3] > data[50_000][3]
    assert data[50_000][2] > data[10][2]
    # The best budget (wasted-cycle objective) is an interior point.
    assert best not in (BUDGETS[0], BUDGETS[-1])
