"""E10 — Askfor dynamic work distribution (§3.3, [LO83]).

Claim/shape: "the degree of concurrency is not known at compile time.
Rather the program can request during run time that a new concurrent
instance of the code segment is executed."  A binary tree of work
units (each spawning two smaller ones) is unrollable only at run time;
the askfor pool keeps all processes busy, so completion time scales
with the force size, and the termination protocol always processes
exactly 2^depth - 1 units.
"""

from time import perf_counter

from repro.core import HEP, SEQUENT_BALANCE, force_compile_and_run, programs

DEPTH = 8
PROCESS_COUNTS = (1, 2, 4, 8)
MACHINES_TESTED = (SEQUENT_BALANCE, HEP)


def _measure():
    # Each node carries real computation (a 150-iteration inner loop),
    # so the dynamic distribution has work to balance beyond the
    # bookkeeping itself.
    source = programs.render("askfor_tree", depth=DEPTH, qsize=1024,
                             work=150)
    nodes = 2 ** DEPTH - 1
    data = {}
    for machine in MACHINES_TESTED:
        for nproc in PROCESS_COUNTS:
            result = force_compile_and_run(source, machine, nproc)
            assert result.output == [f"NODES {nodes}"], \
                (machine.name, nproc)
            data[(machine.key, nproc)] = result.makespan
    return data


def test_e10_askfor_scaling(benchmark, record_table, record_result):
    t0 = perf_counter()
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    wall = perf_counter() - t0
    nodes = 2 ** DEPTH - 1
    lines = [f"E10: askfor over a dynamic tree of {nodes} work units "
             f"(depth {DEPTH}); exact unit count asserted in every run",
             f"{'machine':18s}" + "".join(f"{f'P={p}':>11s}"
                                          for p in PROCESS_COUNTS)
             + f"{'S(4)':>8s}"]
    for machine in MACHINES_TESTED:
        spans = [data[(machine.key, p)] for p in PROCESS_COUNTS]
        speedup = spans[0] / spans[2]
        lines.append(f"{machine.name:18s}" +
                     "".join(f"{s:>11d}" for s in spans) +
                     f"{speedup:>7.2f}x")
    record_table("E10 askfor dynamic distribution", "\n".join(lines))
    record_result("e10_askfor",
                  params={"depth": DEPTH, "nodes": nodes,
                          "process_counts": list(PROCESS_COUNTS),
                          "machines": [m.key for m in MACHINES_TESTED]},
                  wall_s=wall,
                  data={f"{m}/p{p}": span
                        for (m, p), span in data.items()})

    for machine in MACHINES_TESTED:
        # Dynamic distribution gains from more processes...
        assert data[(machine.key, 4)] < data[(machine.key, 1)], \
            machine.name
    # ...and the cheap-synchronization HEP scales better.
    hep4 = data[("hep", 1)] / data[("hep", 4)]
    seq4 = data[("sequent-balance", 1)] / data[("sequent-balance", 4)]
    assert hep4 > seq4
