"""E8 — Process creation models and grain size (§4.1.1).

Claim/shape: "The standard UNIX fork/join process control model ...
has a large process creation and context switching cost.  This
prevents fine grained parallelism."  On the HEP, creation is a
subroutine call.  We sweep the grain (work per program) and find,
per machine, the grain at which a 4-process force first beats serial
execution — the HEP's break-even grain is orders of magnitude smaller
than the fork machines'.
"""

from time import perf_counter

from repro.core import ENCORE_MULTIMAX, HEP, MACHINES, \
    force_compile_and_run
from repro._util.text import strip_margin

GRAINS = (10, 100, 1_000, 10_000, 100_000)

_TEMPLATE = """
    Force GRAIN of NP ident ME
    Private INTEGER I, J
    End declarations
    Presched DO 100 I = 1, {total}
          J = I + 1
    100 End presched DO
    Join
          END
"""


def _makespan(machine, total, nproc):
    source = strip_margin(_TEMPLATE).format(total=total)
    return force_compile_and_run(source, machine, nproc).makespan


def _measure():
    data = {}
    for machine in MACHINES.values():
        for grain in GRAINS:
            serial = _makespan(machine, grain, 1)
            parallel = _makespan(machine, grain, 4)
            data[(machine.key, grain)] = (serial, parallel)
    return data


def test_e8_creation_cost_vs_grain(benchmark, record_table, record_result):
    t0 = perf_counter()
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    wall = perf_counter() - t0
    lines = ["E8: loop of N trivial iterations; P=4 vs serial "
             "(parallel/serial ratio; <1 means the force pays off)",
             f"{'machine':18s}" + "".join(f"{f'N={g}':>11s}"
                                          for g in GRAINS)
             + f"{'create cost':>13s}"]
    breakeven = {}
    for machine in MACHINES.values():
        ratios = []
        for grain in GRAINS:
            serial, parallel = data[(machine.key, grain)]
            ratios.append(parallel / serial)
        first = next((g for g, r in zip(GRAINS, ratios) if r < 1.0), None)
        breakeven[machine.key] = first
        lines.append(f"{machine.name:18s}" +
                     "".join(f"{r:>11.2f}" for r in ratios) +
                     f"{machine.costs.process_create:>13d}")
    lines.append("")
    lines.append("break-even grain: " + ", ".join(
        f"{m.name}={breakeven[m.key]}" for m in MACHINES.values()))
    record_table("E8 process creation vs grain size", "\n".join(lines))
    record_result("e8_process_creation",
                  params={"grains": list(GRAINS), "nproc": 4},
                  wall_s=wall,
                  data={"ratios": {f"{m}/n{g}": parallel / serial
                                   for (m, g), (serial, parallel)
                                   in data.items()},
                        "breakeven_grain": breakeven})

    # The HEP profits from a much finer grain than any fork machine.
    assert breakeven["hep"] is not None
    for key, first in breakeven.items():
        if key != "hep" and first is not None:
            assert breakeven["hep"] <= first
    # At the finest grain, fork machines lose badly; the HEP does not.
    hep_fine = data[("hep", 10)]
    encore_fine = data[("encore-multimax", 10)]
    assert hep_fine[1] / hep_fine[0] < encore_fine[1] / encore_fine[0]
    # At the coarsest grain everyone wins.
    for machine in MACHINES.values():
        serial, parallel = data[(machine.key, GRAINS[-1])]
        assert parallel < serial, machine.name
