"""E7 — "Only a small portion of the preprocessor is machine
dependent" (§4.3, §5).

We measure it: definition lines (and macro counts) of each machine's
machine-dependent set against the shared machine-independent library.
The paper's portability argument requires the per-port fraction to be
small; we assert every machdep set is under a third of the total.
"""

from time import perf_counter

from repro.machines import MACHINES
from repro.macros import (
    MACHDEP_INTERFACE,
    machdep_definitions,
    machindep_definitions,
)


def _count_lines(text: str) -> int:
    return sum(1 for line in text.split("\n")
               if line.strip() and not line.strip().startswith("dnl"))


def _count_macros(text: str) -> int:
    return text.count("define(`")


def _measure():
    indep_lines = _count_lines(machindep_definitions())
    indep_macros = _count_macros(machindep_definitions())
    per_machine = {}
    for machine in MACHINES.values():
        text = machdep_definitions(machine)
        per_machine[machine.key] = (_count_lines(text), _count_macros(text))
    return indep_lines, indep_macros, per_machine


def test_e7_machine_dependent_fraction(benchmark, record_table,
                                       record_result):
    t0 = perf_counter()
    indep_lines, indep_macros, per_machine = benchmark(
        _measure)
    wall = perf_counter() - t0
    lines = ["E7: size of the machine-dependent macro layer per port",
             f"machine-independent library: {indep_lines} lines, "
             f"{indep_macros} macros (shared by all six ports)",
             "",
             f"{'machine':18s}{'lines':>7s}{'macros':>8s}"
             f"{'fraction of total':>19s}"]
    for machine in MACHINES.values():
        dep_lines, dep_macros = per_machine[machine.key]
        fraction = dep_lines / (dep_lines + indep_lines)
        lines.append(f"{machine.name:18s}{dep_lines:>7d}{dep_macros:>8d}"
                     f"{fraction:>18.1%}")
    record_table("E7 machine-dependent fraction", "\n".join(lines))
    record_result("e7_machdep_fraction",
                  params={"machines": list(per_machine)},
                  wall_s=wall,
                  data={"machindep_lines": indep_lines,
                        "machindep_macros": indep_macros,
                        "per_machine": {
                            key: {"lines": dep_lines,
                                  "macros": dep_macros,
                                  "fraction": dep_lines / (dep_lines +
                                                           indep_lines)}
                            for key, (dep_lines, dep_macros)
                            in per_machine.items()}})

    for machine in MACHINES.values():
        dep_lines, dep_macros = per_machine[machine.key]
        fraction = dep_lines / (dep_lines + indep_lines)
        assert fraction < 0.34, \
            f"{machine.name}: machdep fraction {fraction:.0%} not small"
        # Every port supplies the complete (small) interface.
        assert dep_macros >= len(MACHDEP_INTERFACE) - 1
