"""E13 (extension) — speedup saturates at the machine's processor count.

The paper's machines ran one Force process per processor; the language
makes the force size a free parameter, so what happens past the
hardware?  With run-to-block time-sharing, a compute-bound DOALL's
speedup climbs to the processor count and flattens there: the Cray-2
(4 processors) saturates first, the HEP (16 contexts) later.

Spin-lock machines are deliberately excluded from the over-subscribed
sweep and demonstrated separately: their barrier spinners *hold* their
processors, so a force larger than the machine genuinely deadlocks
(no preemption is modelled) — the hazard that made
one-process-per-processor the Force's operating point.
"""

from time import perf_counter

from repro.core import CRAY_2, HEP, force_run, force_translate
from repro._util.text import strip_margin

PROCESS_COUNTS = (1, 2, 4, 8, 16, 32)
MACHINES_TESTED = (CRAY_2, HEP)    # waiters release their CPU

SOURCE = strip_margin("""
    Force SATUR of NP ident ME
    Private INTEGER I, J
    End declarations
    Presched DO 100 I = 1, 60000
          J = I + 1
    100 End presched DO
    Join
          END
""")


def _measure():
    data = {}
    for machine in MACHINES_TESTED:
        translation = force_translate(SOURCE, machine)
        for nproc in PROCESS_COUNTS:
            real = force_run(translation, nproc).makespan
            ideal = force_run(translation, nproc,
                              unlimited_processors=True).makespan
            data[(machine.key, nproc)] = (real, ideal)
    return data


def test_e13_processor_saturation(benchmark, record_table, record_result):
    t0 = perf_counter()
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    wall = perf_counter() - t0
    lines = ["E13 (extension): compute-bound DOALL speedup vs force "
             "size under the machine's real processor count",
             f"{'machine':18s}{'CPUs':>5s}" + "".join(
                 f"{f'P={p}':>9s}" for p in PROCESS_COUNTS)]
    speedups = {}
    for machine in MACHINES_TESTED:
        base = data[(machine.key, 1)][0]
        row = []
        for nproc in PROCESS_COUNTS:
            real, _ideal = data[(machine.key, nproc)]
            speedup = base / real
            speedups[(machine.key, nproc)] = speedup
            row.append(f"{speedup:>8.2f}x")
        lines.append(f"{machine.name:18s}{machine.processors:>5d}"
                     + "".join(row))
    lines.append("")
    lines.append("spin machines (Encore/Sequent/Alliant): a force "
                 "larger than the machine deadlocks — barrier spinners "
                 "hold every processor (asserted below)")
    record_table("E13 processor saturation", "\n".join(lines))
    record_result("e13_saturation",
                  params={"process_counts": list(PROCESS_COUNTS),
                          "machines": [m.key for m in MACHINES_TESTED]},
                  wall_s=wall,
                  data={"speedups": {f"{m}/p{p}": s
                                     for (m, p), s in speedups.items()},
                        "makespans": {f"{m}/p{p}": real
                                      for (m, p), (real, _ideal)
                                      in data.items()}})

    for machine in MACHINES_TESTED:
        cap = machine.processors
        beyond = [p for p in PROCESS_COUNTS if p >= 2 * cap]
        for nproc in beyond:
            # Saturation: no speedup past the processor count.
            assert speedups[(machine.key, nproc)] <= cap * 1.05, \
                (machine.name, nproc)
        # Ideal CPUs are never slower; on the fork machines serialized
        # process creation dominates both modes at P=32, so equality
        # is possible there.
        real32, ideal32 = data[(machine.key, 32)]
        assert ideal32 <= real32
        if 32 > cap and machine.costs.process_create < 1000:
            assert ideal32 < real32
    # The 4-CPU Cray saturates below the 16-context HEP at P=16.
    assert speedups[("cray-2", 16)] < speedups[("hep", 16)]

# The spin-machine oversubscription deadlock demonstration lives in
# tests/integration/test_construct_combinations.py (it is a correctness
# property, not a benchmark).
