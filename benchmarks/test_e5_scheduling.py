"""E5 — Prescheduled vs selfscheduled DOALL (§3.3, §4.2).

Claim/shape: prescheduled distribution costs no synchronization, so it
wins when iterations are uniform; selfscheduling pays a lock round per
index but adapts, so it wins when the load resonates badly with the
static (cyclic) distribution — here, heavy iterations recurring with
the same stride as the process count, all landing on one process.
"""

from time import perf_counter

from repro.core import SEQUENT_BALANCE, force_compile_and_run
from repro._util.text import strip_margin

NPROC = 4
N_ITER = 64

# A barrier aligns all processes before the measured loop, so the
# serialised process-creation stagger (a real effect selfscheduling
# absorbs!) does not contaminate the scheduling comparison.
_TEMPLATE = """
    Force SCHED of NP ident ME
    Private INTEGER I, J, W
    Shared INTEGER SINK
    End declarations
    Barrier
          SINK = 0
    End barrier
    {open_loop}
          IF (MOD(I, {stride}) .EQ. 1) THEN
            W = {heavy}
          ELSE
            W = {light}
          END IF
          DO 5 J = 1, W
            SINK = SINK
    5     CONTINUE
    {close_loop}
    Join
          END
"""


def _build(scheduling: str, heavy: int, light: int) -> str:
    if scheduling == "presched":
        open_loop = f"Presched DO 100 I = 1, {N_ITER}"
        close_loop = "100 End presched DO"
    else:
        open_loop = f"Selfsched DO 100 I = 1, {N_ITER}"
        close_loop = "100 End Selfsched DO"
    return strip_margin(_TEMPLATE).format(
        open_loop=open_loop, close_loop=close_loop,
        stride=NPROC, heavy=heavy, light=light)


#: selfsched dispatch-policy variants (schedule, chunk) swept by E5;
#: chunking trades lock rounds against adaptivity, so it sits between
#: presched and pure selfscheduling on the skewed load
SCHEDULES = {
    "selfsched": (None, None),
    "chunked4": ("chunked", 4),
    "guided": ("guided", None),
}


def _measure():
    results = {}
    for load, (heavy, light) in {"uniform": (100, 100),
                                 "skewed": (800, 4)}.items():
        source = _build("presched", heavy, light)
        result = force_compile_and_run(source, SEQUENT_BALANCE, NPROC)
        results[(load, "presched")] = result.makespan
        self_source = _build("selfsched", heavy, light)
        for name, (sched, chunk) in SCHEDULES.items():
            result = force_compile_and_run(self_source, SEQUENT_BALANCE,
                                           NPROC, sched=sched, chunk=chunk)
            results[(load, name)] = result.makespan
    return results


def test_e5_scheduling_crossover(benchmark, record_table, record_result):
    t0 = perf_counter()
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    wall = perf_counter() - t0
    columns = ["presched", "selfsched", "chunked4", "guided"]
    lines = [f"E5: {N_ITER} iterations on {SEQUENT_BALANCE.name}, "
             f"nproc={NPROC}; heavy iterations recur with stride "
             f"{NPROC} (worst case for the cyclic presched map)",
             f"{'load':9s}" + "".join(f"{c:>12s}" for c in columns)
             + f"{'winner':>12s}"]
    for load in ("uniform", "skewed"):
        spans = {c: results[(load, c)] for c in columns}
        winner = min(spans, key=spans.get)
        lines.append(f"{load:9s}"
                     + "".join(f"{spans[c]:>12d}" for c in columns)
                     + f"{winner:>12s}")
    record_table("E5 presched vs selfsched", "\n".join(lines))
    record_result("e5_scheduling",
                  params={"nproc": NPROC, "iterations": N_ITER,
                          "machine": SEQUENT_BALANCE.key},
                  wall_s=wall,
                  data={f"{load}/{sched}": span
                        for (load, sched), span in results.items()})

    # The crossover: uniform -> presched wins (no lock overhead);
    # resonant skew -> selfscheduling wins despite the lock per index.
    assert results[("uniform", "presched")] < \
        results[("uniform", "selfsched")]
    assert results[("skewed", "selfsched")] < \
        results[("skewed", "presched")]
