"""E2 — The §4.2 selfscheduled-DO macro expansion (golden structure).

Claim: ``Selfsched DO 100 K = START, LAST, INCR`` expands to the
paper's listing — entry code gated by BARWIN with first-arrival index
initialisation, a labelled critical section distributing the index,
the two-sided completion test, and exit code gated by BARWOT.  We
check the structure on every machine and time the full preprocessing
pipeline.
"""

from time import perf_counter

from repro.core import MACHINES, force_translate
from repro._util.text import strip_margin

SOURCE = strip_margin("""
    Force PAPER of NPROC ident ME
    Shared INTEGER START, LAST, INCR
    Private INTEGER K
    End declarations
    Selfsched DO 100 K = START, LAST, INCR
          CALL LOOPBODY(K)
    100 End Selfsched DO
    Join
          END
    SUBROUTINE LOOPBODY(K)
          INTEGER K
          END
""")

#: structural elements of the paper's listing (lock names normalised)
GOLDEN_ELEMENTS = (
    "C loop entry code",
    "IF (ZZNBAR .EQ. 0) THEN",
    "ZZI100 = (START)",
    "C report arrival of processes",
    "ZZNBAR = ZZNBAR + 1",
    "IF (ZZNBAR .EQ. NPROC) THEN",
    "C self scheduled loop index distribution",
    "K = ZZI100",
    "ZZI100 = K + (INCR)",
    "C test for completion",
    "(INCR) .GT. 0 .AND. K .LE. (LAST)",
    "(INCR) .LT. 0 .AND. K .GE. (LAST)",
    "GO TO 100",
    "C loop exit code",
    "C report exit of processes",
    "ZZNBAR = ZZNBAR - 1",
)


def test_e2_expansion_structure(benchmark, record_table, record_result):
    t0 = perf_counter()
    fortran = benchmark(lambda: force_translate(
        SOURCE, MACHINES["sequent-balance"]).fortran)
    wall = perf_counter() - t0
    missing = [e for e in GOLDEN_ELEMENTS if e not in fortran]
    assert not missing, f"expansion lacks paper elements: {missing}"

    lines = ["E2: paper section 4.2 structural elements found in the",
             "selfscheduled DO expansion, per machine:", ""]
    found_per_machine = {}
    for machine in MACHINES.values():
        text = force_translate(SOURCE, machine).fortran
        found = sum(1 for e in GOLDEN_ELEMENTS if e in text)
        found_per_machine[machine.key] = found
        lock = ("HEPLKW" if "HEPLKW" in text else
                "SYSLCK" if "SYSLCK" in text else
                "CMBLCK" if "CMBLCK" in text else "SPINLK")
        lines.append(f"  {machine.name:18s} {found}/{len(GOLDEN_ELEMENTS)} "
                     f"elements, lock primitive {lock}")
        assert found == len(GOLDEN_ELEMENTS), machine.name
    record_table("E2 selfsched expansion golden check", "\n".join(lines))
    benchmark.extra_info["elements"] = len(GOLDEN_ELEMENTS)
    record_result("e2_expansion",
                  params={"elements": len(GOLDEN_ELEMENTS)},
                  wall_s=wall,
                  data={"found_per_machine": found_per_machine})
