"""E9 — Produce/Consume: hardware full/empty vs the two-lock protocol
(§4.2).

Claim/shape: "With the exception of the HEP computer which provided a
hardware full/empty state for every memory cell, all other machines
require the use of two locks for implementation of the full/empty
state."  A producer/consumer pipeline therefore pays two lock
operations per transfer everywhere except the HEP, whose transfers
cost a few cycles of memory-pipeline latency.
"""

from time import perf_counter

from repro.core import MACHINES, force_compile_and_run, programs

ITEMS = 30


def _measure():
    source = programs.render("pipeline", items=ITEMS)
    data = {}
    for machine in MACHINES.values():
        result = force_compile_and_run(source, machine, nproc=2)
        expected = sum(k * k for k in range(1, ITEMS + 1))
        assert result.output == [f"SINK {expected}"], machine.name
        # Subtract process management to isolate the transfer path.
        startup = 2 * machine.costs.process_create
        per_item = (result.makespan - startup) / ITEMS
        data[machine.key] = (result.makespan, per_item,
                             result.stats.lock_acquisitions)
    return data


def test_e9_async_variable_protocols(benchmark, record_table,
                                     record_result):
    t0 = perf_counter()
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    wall = perf_counter() - t0
    lines = [f"E9: {ITEMS}-item producer/consumer pipeline, nproc=2",
             f"{'machine':18s}{'makespan':>10s}{'cyc/item':>10s}"
             f"{'lock ops':>9s}{'protocol':>22s}"]
    for machine in MACHINES.values():
        makespan, per_item, locks = data[machine.key]
        protocol = ("hardware full/empty"
                    if machine.key == "hep" else "two locks per var")
        lines.append(f"{machine.name:18s}{makespan:>10d}{per_item:>10.1f}"
                     f"{locks:>9d}{protocol:>22s}")
    record_table("E9 async variable protocols", "\n".join(lines))
    record_result("e9_async_vars",
                  params={"items": ITEMS, "nproc": 2},
                  wall_s=wall,
                  data={key: {"makespan": makespan,
                              "cycles_per_item": per_item,
                              "lock_acquisitions": locks}
                        for key, (makespan, per_item, locks)
                        in data.items()})

    # The HEP needs no lock traffic on the transfer path; two-lock
    # machines pay >= 2 lock acquisitions per produced item.
    hep_locks = data["hep"][2]
    for machine in MACHINES.values():
        if machine.key == "hep":
            continue
        assert data[machine.key][2] >= hep_locks + 2 * ITEMS, machine.name
    # And the HEP moves items cheapest.
    hep_per_item = data["hep"][1]
    assert all(hep_per_item <= data[m.key][1] for m in MACHINES.values())
