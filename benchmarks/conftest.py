"""Shared infrastructure for the experiment benchmarks (E1–E13).

Each benchmark computes an experiment's data series, asserts the
paper's qualitative claim about its *shape*, records a human-readable
table, and uses pytest-benchmark to time a representative unit of the
pipeline.  Recorded tables are printed in the terminal summary and
written to ``benchmarks/results/`` so EXPERIMENTS.md can reference
them.

Alongside each ``.txt`` table, every benchmark also records one
*machine-readable* result through :func:`record_result` — experiment
name, parameters, wall-clock seconds of the measured unit, the
headline data series, and the git revision it was measured at.  At
session end these merge (by name, newest wins) into
``BENCH_results.json`` at the repo root — the same file and schema
``force bench`` writes — so the perf trajectory of the project
accumulates across runs instead of living only in prose.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import pytest

from repro.bench import git_revision, make_entry, merge_results

_RESULTS_DIR = Path(__file__).parent / "results"
_REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_FILE = _REPO_ROOT / "BENCH_results.json"
_TABLES: list[tuple[str, str]] = []
_RESULTS: list[dict[str, Any]] = []


@pytest.fixture()
def record_table():
    """Record a named results table for the terminal summary."""

    def _record(title: str, text: str) -> None:
        _TABLES.append((title, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        slug = "".join(c if c.isalnum() else "_" for c in title.lower())
        (_RESULTS_DIR / f"{slug}.txt").write_text(text + "\n",
                                                  encoding="utf-8")

    return _record


@pytest.fixture()
def record_result():
    """Record one machine-readable benchmark result.

    ``_record(name, params={...}, wall_s=1.23, data={...})`` — name is
    the experiment slug (``e3_barriers``), params the swept dimensions,
    ``wall_s`` the wall-clock seconds of the measured unit, and
    ``data`` whatever headline series the experiment produced (keep it
    JSON-serialisable and small).
    """

    def _record(name: str, *, params: dict[str, Any] | None = None,
                wall_s: float | None = None,
                data: Any = None) -> None:
        _RESULTS.append(make_entry(name, params=params, wall_s=wall_s,
                                   data=data,
                                   revision=git_revision(_REPO_ROOT)))

    return _record


def pytest_sessionfinish(session, exitstatus):
    if _RESULTS:
        merge_results(_BENCH_FILE, _RESULTS)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("experiment result tables")
    for title, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"── {title} " + "─" * max(
            0, 68 - len(title)))
        for line in text.split("\n"):
            terminalreporter.write_line(line)
