"""Shared infrastructure for the experiment benchmarks (E1–E10).

Each benchmark computes an experiment's data series, asserts the
paper's qualitative claim about its *shape*, records a human-readable
table, and uses pytest-benchmark to time a representative unit of the
pipeline.  Recorded tables are printed in the terminal summary and
written to ``benchmarks/results/`` so EXPERIMENTS.md can reference
them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

_RESULTS_DIR = Path(__file__).parent / "results"
_TABLES: list[tuple[str, str]] = []


@pytest.fixture()
def record_table():
    """Record a named results table for the terminal summary."""

    def _record(title: str, text: str) -> None:
        _TABLES.append((title, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        slug = "".join(c if c.isalnum() else "_" for c in title.lower())
        (_RESULTS_DIR / f"{slug}.txt").write_text(text + "\n",
                                                  encoding="utf-8")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("experiment result tables")
    for title, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"── {title} " + "─" * max(
            0, 68 - len(title)))
        for line in text.split("\n"):
            terminalreporter.write_line(line)
