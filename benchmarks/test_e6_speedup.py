"""E6 — Speedup with a process-count-independent program (§1, §3).

Claim/shape: one Jacobi source runs at any force size with identical
output; speedup at P=8 is strong on machines with cheap process
creation and synchronization (HEP, Alliant), moderate on the spinlock
fork machines (Encore, Sequent), and poor where fork and locks are
expensive (Cray-2) — the grain-size argument of §4.1.1.
"""

from time import perf_counter

from repro.core import MACHINES, force_run, force_translate, programs

PROCESS_COUNTS = (1, 2, 4, 8)


def _measure():
    source = programs.render("jacobi", n=384, iters=60)
    table = {}
    output = None
    for machine in MACHINES.values():
        translation = force_translate(source, machine)
        for nproc in PROCESS_COUNTS:
            result = force_run(translation, nproc)
            if output is None:
                output = result.output
            assert result.output == output, (machine.name, nproc)
            table[(machine.key, nproc)] = result.makespan
    return table


def test_e6_speedup_curves(benchmark, record_table, record_result):
    t0 = perf_counter()
    table = benchmark.pedantic(_measure, rounds=1, iterations=1)
    wall = perf_counter() - t0
    lines = ["E6: Jacobi (384 points, 60 sweeps) makespan and speedup",
             f"{'machine':18s}" + "".join(f"{f'P={p}':>11s}"
                                          for p in PROCESS_COUNTS)
             + f"{'S(8)':>8s}"]
    speedups = {}
    for machine in MACHINES.values():
        spans = [table[(machine.key, p)] for p in PROCESS_COUNTS]
        speedup = spans[0] / spans[-1]
        speedups[machine.key] = speedup
        lines.append(f"{machine.name:18s}" +
                     "".join(f"{s:>11d}" for s in spans) +
                     f"{speedup:>7.2f}x")
    record_table("E6 Jacobi speedup vs process count", "\n".join(lines))
    record_result("e6_speedup",
                  params={"process_counts": list(PROCESS_COUNTS),
                          "program": "jacobi", "n": 384, "iters": 60},
                  wall_s=wall,
                  data={"makespans": {f"{m}/p{p}": span
                                      for (m, p), span in table.items()},
                        "speedup_p8": speedups})

    # Shape claims.
    assert speedups["hep"] > 4.0
    assert speedups["alliant-fx8"] > 3.0
    assert speedups["encore-multimax"] > 1.5
    assert speedups["sequent-balance"] > 1.5
    # Expensive process creation + OS locks: the Cray-2 gains least.
    assert speedups["cray-2"] == min(speedups.values())
    # Everyone gains something at P=2 (work dominates at this grain).
    for machine in MACHINES.values():
        assert table[(machine.key, 2)] < table[(machine.key, 1)], \
            machine.name


def test_e6_wall_clock_row(record_table, record_result):
    """E6, real-hardware row: Jacobi on the process backend.

    The simulated curves above model the paper's machines; this row
    measures the reproduction's own seventh port — true OS processes
    over shared memory — with *wall-clock* seconds.  The speedup is
    recorded honestly, not asserted: on a host with a single CPU the
    ratio legitimately sits at or below 1.0, and the recorded
    ``cpu_count`` says exactly what hardware the number came from.
    """
    import os

    from repro.bench import _wall_jacobi
    from repro.runtime import Force

    n, sweeps = 192, 40
    walls = {}
    for nproc in PROCESS_COUNTS:
        force = Force(nproc, backend="process", timeout=600)
        t0 = perf_counter()
        force.run(_wall_jacobi, n, sweeps)
        walls[nproc] = perf_counter() - t0
    speedups = {p: walls[1] / walls[p] for p in PROCESS_COUNTS}
    cpus = os.cpu_count()
    lines = [f"E6 (hardware): Jacobi ({n} points, {sweeps} sweeps), "
             f"process backend, {cpus} CPU(s)",
             f"{'nproc':>6s}{'wall_s':>10s}{'wall_speedup':>14s}"]
    for p in PROCESS_COUNTS:
        lines.append(f"{p:>6d}{walls[p]:>10.3f}{speedups[p]:>13.2f}x")
    record_table("E6 Jacobi wall clock (process backend)",
                 "\n".join(lines))
    record_result("e6_wall_clock",
                  params={"process_counts": list(PROCESS_COUNTS),
                          "program": "jacobi", "n": n, "sweeps": sweeps,
                          "backend": "process", "cpu_count": cpus},
                  wall_s=walls[max(PROCESS_COUNTS)],
                  data={"wall_s": {f"p{p}": round(walls[p], 4)
                                   for p in PROCESS_COUNTS},
                        "wall_speedup": {f"p{p}": round(speedups[p], 2)
                                         for p in PROCESS_COUNTS}})
    for p in PROCESS_COUNTS:
        assert walls[p] > 0
