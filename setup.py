"""Legacy setup shim so `pip install -e .` works offline (no wheel pkg)."""

from setuptools import setup

setup()
