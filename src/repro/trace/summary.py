"""Post-process a trace into per-construct summaries (``force trace``).

Works on the unified model, so it accepts events collected natively,
adapted from the simulator, or loaded back from a written chrome/jsonl
trace file.  Measured spans (native ``"X"`` events) yield wait/hold
statistics; instant-only traces (the simulator's) still yield counts,
so the report degrades gracefully rather than failing.

Sections:

* **barriers** — episode count and the wait-time spread across
  arrivals (the paper's barrier-episode skew);
* **criticals** — per section name: acquisitions, contended entries,
  wait and hold time (lock convoys show up as wait >> hold);
* **selfsched** — chunk histogram per DOALL label and per process
  (the paper's dynamic load-balance evidence);
* **askfor** — per pool: puts, gots, blocked-wait profile;
* **asyncvar** — per variable: blocked operations and blocked time.
"""

from __future__ import annotations

import json
from typing import Any

from repro.runtime.stats import WaitStat
from repro.trace.events import TraceEvent


def _stat_dict(stat: WaitStat) -> dict[str, float]:
    return stat.as_dict()


def summarize_events(events: list[TraceEvent]) -> dict[str, Any]:
    """Reduce an event stream to per-construct summaries."""
    lanes = sorted({e.proc for e in events})
    barrier_wait = WaitStat()
    episodes = 0
    barrier_waits_seen = 0
    criticals: dict[str, dict[str, Any]] = {}
    selfsched: dict[str, dict[str, Any]] = {}
    askfor: dict[str, dict[str, Any]] = {}
    asyncvar: dict[str, dict[str, Any]] = {}

    for event in events:
        if event.kind == "barrier":
            if event.op == "episode":
                episodes += 1
            elif event.op == "wait":
                barrier_waits_seen += 1
                if event.phase == "X":
                    barrier_wait.record(event.dur)
        elif event.kind == "critical":
            entry = criticals.setdefault(
                event.name, {"acquisitions": 0, "contended": 0,
                             "wait": WaitStat(), "hold": WaitStat()})
            if event.op in ("hold", "acquire", "grant"):
                entry["acquisitions"] += 1
            if event.op == "hold" and event.phase == "X":
                entry["hold"].record(event.dur)
            if event.op == "wait":
                entry["contended"] += 1
                if event.phase == "X":
                    entry["wait"].record(event.dur)
        elif event.kind == "selfsched":
            entry = selfsched.setdefault(
                event.name, {"chunks": 0, "per_process": {}})
            if event.op == "chunk":
                entry["chunks"] += 1
                per = entry["per_process"]
                per[event.proc] = per.get(event.proc, 0) + 1
        elif event.kind == "askfor":
            entry = askfor.setdefault(
                event.name, {"put": 0, "got": 0, "wait": WaitStat()})
            if event.op == "put":
                entry["put"] += 1
            elif event.op == "got":
                entry["got"] += 1
            elif event.op in ("wait", "block") and event.phase == "X":
                entry["wait"].record(event.dur)
        elif event.kind == "asyncvar":
            entry = asyncvar.setdefault(
                event.name, {"blocked": 0, "wait": WaitStat(),
                             "by_op": {}})
            entry["blocked"] += 1
            entry["by_op"][event.op] = entry["by_op"].get(event.op, 0) + 1
            if event.phase == "X":
                entry["wait"].record(event.dur)

    return {
        "processes": lanes,
        "events": len(events),
        "barriers": {
            "episodes": episodes,
            "waits": barrier_waits_seen,
            "wait": _stat_dict(barrier_wait),
        },
        "criticals": {
            name: {
                "acquisitions": entry["acquisitions"],
                "contended": entry["contended"],
                "wait": _stat_dict(entry["wait"]),
                "hold": _stat_dict(entry["hold"]),
            }
            for name, entry in sorted(criticals.items())
        },
        "selfsched": {
            name: {"chunks": entry["chunks"],
                   "per_process": dict(sorted(
                       entry["per_process"].items()))}
            for name, entry in sorted(selfsched.items())
        },
        "askfor": {
            name: {"put": entry["put"], "got": entry["got"],
                   "wait": _stat_dict(entry["wait"])}
            for name, entry in sorted(askfor.items())
        },
        "asyncvar": {
            name: {"blocked": entry["blocked"],
                   "by_op": dict(sorted(entry["by_op"].items())),
                   "wait": _stat_dict(entry["wait"])}
            for name, entry in sorted(asyncvar.items())
        },
    }


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def render_trace_summary(summary: dict[str, Any], *,
                         as_json: bool = False) -> str:
    """Render a :func:`summarize_events` result (text or JSON)."""
    if as_json:
        return json.dumps(summary, indent=2, sort_keys=True)
    lines = [f"processes: {len(summary['processes'])} "
             f"({', '.join(summary['processes'])})",
             f"events:    {summary['events']}"]

    barriers = summary.get("barriers", {})
    if barriers.get("episodes") or barriers.get("waits"):
        wait = barriers["wait"]
        lines.append("--- barriers ---")
        lines.append(f"episodes:            {barriers['episodes']}")
        lines.append(f"waits:               {barriers['waits']} "
                     f"(mean {_fmt_s(wait['mean_s'])}, "
                     f"max {_fmt_s(wait['max_s'])}, "
                     f"spread {_fmt_s(wait['spread_s'])})")

    criticals = summary.get("criticals", {})
    if criticals:
        lines.append("--- critical sections ---")
        for name, entry in sorted(criticals.items()):
            lines.append(
                f"{name:18s} {entry['acquisitions']:>8d} acq, "
                f"{entry['contended']:>6d} contended, "
                f"waited {_fmt_s(entry['wait']['total_s'])}, "
                f"held {_fmt_s(entry['hold']['total_s'])}")

    selfsched = summary.get("selfsched", {})
    if selfsched:
        lines.append("--- selfscheduled loops ---")
        for name, entry in sorted(selfsched.items()):
            histogram = " ".join(
                f"{proc}:{chunks}"
                for proc, chunks in entry["per_process"].items())
            lines.append(f"{name:18s} {entry['chunks']:>8d} chunks "
                         f"[{histogram}]")

    askfor = summary.get("askfor", {})
    if askfor:
        lines.append("--- askfor pools ---")
        for name, entry in sorted(askfor.items()):
            lines.append(
                f"{name:18s} put {entry['put']}, got {entry['got']}, "
                f"blocked {_fmt_s(entry['wait']['total_s'])}")

    asyncvar = summary.get("asyncvar", {})
    if asyncvar:
        lines.append("--- asynchronous variables ---")
        for name, entry in sorted(asyncvar.items()):
            ops = " ".join(f"{op}:{n}"
                           for op, n in entry["by_op"].items())
            lines.append(
                f"{name:18s} {entry['blocked']:>8d} blocked ops "
                f"[{ops}], {_fmt_s(entry['wait']['total_s'])} blocked")

    return "\n".join(lines)
