"""Unified observability layer for both Force execution paths.

The native runtime (:mod:`repro.runtime`) and the simulator
(:mod:`repro.sim`) record the same structured :class:`TraceEvent`
stream — barrier episodes, critical-section wait/hold, selfscheduled
chunk dispatch, askfor traffic, full/empty blocking — so one set of
exporters, summaries and diagnostics serves both:

* :class:`TraceCollector` — bounded per-process ring buffers, written
  lock-free by the owning thread; negligible overhead when absent
  (every interception point pays a single ``is None`` test, exactly
  like the stats layer);
* :mod:`repro.trace.export` — Chrome trace-event JSON (open the file
  in Perfetto or ``chrome://tracing``), JSONL, and the classic text
  timeline, all rendered from the one event model;
* :mod:`repro.trace.adapter` — converts the simulator's
  ``(time, process, text)`` trace triples into the same model;
* :class:`StallWatchdog` — a daemon sampler that dumps which process
  is parked on which construct when the event stream goes quiet;
* :mod:`repro.trace.summary` — post-processes a trace (events or a
  written file) into per-construct summaries, the ``force trace``
  subcommand.
"""

from repro.trace.adapter import events_from_sim_trace
from repro.trace.collector import TraceCollector
from repro.trace.events import KINDS, TraceEvent
from repro.trace.export import (
    load_trace_file,
    to_chrome,
    to_jsonl,
    to_text,
    validate_chrome_trace,
    write_trace_file,
)
from repro.trace.summary import render_trace_summary, summarize_events
from repro.trace.watchdog import StallWatchdog, render_stall_report

__all__ = [
    "KINDS",
    "TraceEvent",
    "TraceCollector",
    "StallWatchdog",
    "render_stall_report",
    "events_from_sim_trace",
    "to_chrome",
    "to_jsonl",
    "to_text",
    "write_trace_file",
    "load_trace_file",
    "validate_chrome_trace",
    "summarize_events",
    "render_trace_summary",
]
