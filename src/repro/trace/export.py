"""Trace exporters/loaders: Chrome trace-event JSON, JSONL, text.

Chrome format
    ``to_chrome`` emits the Trace Event Format's *JSON object* flavour
    (``{"traceEvents": [...]}``) that Perfetto and ``chrome://tracing``
    load directly: one ``pid`` for the run, one ``tid`` lane per Force
    process (named through ``thread_name`` metadata events), complete
    (``"X"``) spans for measured waits/holds and instant (``"i"``)
    events for everything else.  ``otherData.ts_scale`` records the
    factor applied to the model's timestamps so loading a file gets
    the original clock back (wall seconds natively, cycles simulated).

JSONL
    One :meth:`TraceEvent.as_dict` object per line, preceded by one
    ``{"meta": ...}`` header line; streams and greps well.

Text
    The classic timeline (``t=…| proc | what``) rendered from the
    unified model — for simulator events the original line round-trips
    byte-for-byte via ``detail``.
"""

from __future__ import annotations

import json
from typing import Any

from repro._util.errors import ForceError
from repro.trace.events import KINDS, TraceEvent

#: µs per second — native timestamps are seconds, Chrome wants µs
_NATIVE_SCALE = 1e6

_CHROME_PHASES = frozenset(["X", "i", "I", "M", "B", "E", "C"])


def _ts_scale(events: list[TraceEvent]) -> float:
    """µs-conversion factor: cycles count as µs, seconds are scaled."""
    if events and all(isinstance(e.ts, int) for e in events):
        return 1.0           # simulated cycles: 1 cycle rendered as 1 µs
    return _NATIVE_SCALE


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def to_chrome(events: list[TraceEvent], *,
              meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """Chrome trace-event document with one lane per process."""
    scale = _ts_scale(events)
    lanes = sorted({e.proc for e in events})
    tids = {lane: i + 1 for i, lane in enumerate(lanes)}
    trace_events: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "force"}},
    ]
    for lane, tid in tids.items():
        trace_events.append({"name": "thread_name", "ph": "M", "pid": 1,
                             "tid": tid, "args": {"name": lane}})
    for event in events:
        record: dict[str, Any] = {
            "name": event.name or event.kind,
            "cat": event.kind,
            "ph": "X" if event.phase == "X" else "i",
            "ts": event.ts * scale,
            "pid": 1,
            "tid": tids[event.proc],
            "args": dict(event.args),
        }
        if event.op:
            record["args"]["op"] = event.op
        if event.detail:
            record["args"]["detail"] = event.detail
        if event.name == event.kind:
            # distinguishes "named like its kind" (the runtime's
            # barrier events) from "unnamed, shown under its kind"
            record["args"]["force_name"] = event.name
        if event.phase == "X":
            record["dur"] = event.dur * scale
        else:
            record["s"] = "t"       # instant scope: thread
        trace_events.append(record)
    other = {"ts_scale": scale, "kinds": list(KINDS)}
    if meta:
        other.update(meta)
    return {"traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": other}


def from_chrome(doc: dict[str, Any]) -> list[TraceEvent]:
    """Rebuild model events from a Chrome trace document."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ForceError("not a Chrome trace document "
                         "(missing 'traceEvents')")
    scale = float(doc.get("otherData", {}).get("ts_scale", _NATIVE_SCALE))
    lane_names: dict[int, str] = {}
    for record in doc["traceEvents"]:
        if record.get("ph") == "M" and record.get("name") == "thread_name":
            lane_names[record.get("tid", 0)] = \
                record.get("args", {}).get("name", "?")
    events: list[TraceEvent] = []
    for record in doc["traceEvents"]:
        if record.get("ph") == "M":
            continue
        args = dict(record.get("args", {}))
        op = args.pop("op", "")
        detail = args.pop("detail", "")
        ts = record.get("ts", 0.0) / scale
        if scale == 1.0:
            ts = int(ts)
        name = record.get("name", "")
        if name == record.get("cat"):
            # unnamed events export under their kind; truly kind-named
            # events carried the original through args
            name = args.pop("force_name", "")
        events.append(TraceEvent(
            ts=ts,
            proc=lane_names.get(record.get("tid"), f"tid{record.get('tid')}"),
            kind=record.get("cat", "sched"),
            name=name,
            op=op,
            phase="X" if record.get("ph") == "X" else "i",
            dur=record.get("dur", 0.0) / scale,
            detail=detail,
            args=args,
        ))
    return events


def validate_chrome_trace(doc: Any) -> list[str]:
    """Schema-check a Chrome trace document; [] means valid.

    Checks the structural contract Perfetto/chrome://tracing rely on:
    a ``traceEvents`` list of objects each carrying ``name``/``ph``/
    ``ts``/``pid``/``tid``, known phases, non-negative durations on
    complete events, and named lanes via ``thread_name`` metadata.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    lanes: set[int] = set()
    named_lanes: set[int] = set()
    for index, record in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = record.get("ph")
        if phase not in _CHROME_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
        if not isinstance(record.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(record.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if phase == "M":
            if record.get("name") == "thread_name":
                if not record.get("args", {}).get("name"):
                    errors.append(f"{where}: thread_name without a name")
                else:
                    named_lanes.add(record.get("tid"))
            continue
        if not isinstance(record.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        elif record["ts"] < 0:
            errors.append(f"{where}: negative ts")
        if phase == "X":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs dur >= 0")
        lanes.add(record.get("tid"))
    unnamed = lanes - named_lanes
    if unnamed:
        errors.append("lanes without thread_name metadata: "
                      + ", ".join(str(t) for t in sorted(
                          t for t in unnamed if t is not None)))
    if not lanes:
        errors.append("trace contains no events")
    return errors


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def to_jsonl(events: list[TraceEvent], *,
             meta: dict[str, Any] | None = None) -> str:
    lines = [json.dumps({"meta": meta or {}}, sort_keys=True)]
    lines.extend(json.dumps(event.as_dict(), sort_keys=True)
                 for event in events)
    return "\n".join(lines) + "\n"


def from_jsonl(text: str) -> list[TraceEvent]:
    events: list[TraceEvent] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        if "meta" in data and "ts" not in data:
            continue
        events.append(TraceEvent.from_dict(data))
    return events


# ----------------------------------------------------------------------
# text timeline
# ----------------------------------------------------------------------
def to_text(events: list[TraceEvent], *,
            max_events: int = 200,
            only: tuple[str, ...] | None = None) -> str:
    """The classic per-line timeline, from the unified model."""
    if not events:
        return "(no trace events: was the run started with trace=True?)"
    if only:
        events = [e for e in events
                  if any(tag in e.text_line() for tag in only)]
    shown = events[:max_events]
    cycles = _ts_scale(events if events else []) == 1.0
    lines = []
    for event in shown:
        stamp = f"t={event.ts:>10d}" if cycles \
            else f"t={event.ts * 1e3:>10.3f}ms"
        lines.append(f"{stamp} | {event.proc:<14s} | {event.text_line()}")
    if len(events) > len(shown):
        lines.append(f"... {len(events) - len(shown)} more events")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
TRACE_FORMATS = ("chrome", "jsonl", "text")


def infer_trace_format(path: str) -> str:
    if path.endswith(".jsonl"):
        return "jsonl"
    if path.endswith(".txt"):
        return "text"
    return "chrome"


def write_trace_file(path: str, events: list[TraceEvent], *,
                     format: str | None = None,
                     meta: dict[str, Any] | None = None) -> str:
    """Write ``events`` to ``path``; returns the format used."""
    format = format or infer_trace_format(path)
    if format == "chrome":
        text = json.dumps(to_chrome(events, meta=meta), indent=1)
    elif format == "jsonl":
        text = to_jsonl(events, meta=meta)
    elif format == "text":
        text = to_text(events, max_events=len(events) or 1) + "\n"
    else:
        raise ForceError(f"unknown trace format {format!r}; "
                         f"expected one of {', '.join(TRACE_FORMATS)}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return format


def load_trace_file(path: str) -> list[TraceEvent]:
    """Load a chrome or jsonl trace file back into model events."""
    return load_trace_document(path)[0]


def load_trace_document(path: str) -> tuple[list[TraceEvent],
                                            dict[str, Any]]:
    """Load a trace file with its run metadata ``(events, meta)``.

    Chrome traces carry metadata in ``otherData`` (the exporter's
    ``ts_scale``/``kinds`` bookkeeping is stripped); JSONL traces in
    the ``{"meta": ...}`` header line.  Traces written by other tools
    simply yield ``{}``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if not text.strip():
        raise ForceError(f"{path}: empty trace file")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None               # not one JSON document: try JSONL
    if isinstance(doc, dict):
        meta = {key: value
                for key, value in doc.get("otherData", {}).items()
                if key not in ("ts_scale", "kinds")}
        return from_chrome(doc), meta
    if doc is not None:
        raise ForceError(f"{path}: not a chrome-JSON or JSONL trace")
    meta = {}
    header = text.splitlines()[0].strip()
    try:
        first = json.loads(header) if header else {}
        if isinstance(first, dict) and "meta" in first \
                and "ts" not in first:
            meta = first["meta"] or {}
        return from_jsonl(text), meta
    except json.JSONDecodeError as exc:
        raise ForceError(
            f"{path}: not a chrome-JSON or JSONL trace: {exc}") from exc
