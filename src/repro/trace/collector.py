"""Bounded, drop-counting trace collection for the native runtime.

Design constraints, in order:

1. **Zero cost when off** — a disabled Force keeps no collector at
   all; every interception point pays one ``is None`` test (the same
   contract as :mod:`repro.runtime.stats`).
2. **Cheap when on** — each Force process appends to its *own* ring
   buffer, so the hot path takes no lock: one list store, two integer
   bumps and a clock read.  CPython's per-opcode atomicity makes the
   single-writer ring safe without fences ("lock-free-ish").
3. **Bounded** — a ring of ``capacity`` events per process; overflow
   overwrites the oldest events and counts the drops rather than
   growing without bound or stalling the program.

The collector also keeps the two shared signals the stall watchdog
samples: the wall-clock time of the most recent event anywhere
(:attr:`last_event_at`) and a per-process *parked* map naming the
construct each process is currently blocked on.  Both are simple dict
and attribute stores — racy reads are acceptable for diagnostics.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import Any, Callable

from repro.trace.events import TraceEvent


class _Ring:
    """Single-writer ring buffer of trace events."""

    __slots__ = ("capacity", "items", "count")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.items: list[TraceEvent | None] = [None] * capacity
        self.count = 0

    def append(self, event: TraceEvent) -> None:
        self.items[self.count % self.capacity] = event
        self.count += 1

    @property
    def dropped(self) -> int:
        return max(0, self.count - self.capacity)

    def snapshot(self) -> list[TraceEvent]:
        count = self.count          # read once: appends may continue
        if count <= self.capacity:
            return [e for e in self.items[:count] if e is not None]
        start = count % self.capacity
        ordered = self.items[start:] + self.items[:start]
        return [e for e in ordered if e is not None]


class TraceCollector:
    """Per-process ring buffers behind one recording facade.

    Threads register their lane once (:meth:`register_lane`); records
    from an unregistered thread fall into a shared ``main`` lane so
    library code outside :meth:`Force.run` still traces safely (that
    fallback lane takes a lock only on first use).
    """

    def __init__(self, capacity: int = 65536, *,
                 clock: Callable[[], float] = monotonic,
                 epoch: float | None = None) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        # Forked workers pass the parent's pre-fork epoch so all
        # collectors share one time origin; the default (our own
        # construction time) is only correct single-process.
        self.epoch = clock() if epoch is None else epoch
        self._local = threading.local()
        self._rings: dict[str, _Ring] = {}
        self._rings_lock = threading.Lock()
        #: wall clock (collector clock, absolute) of the latest record
        self.last_event_at = self.epoch
        #: lane -> (kind, name) while blocked inside a construct
        self._parked: dict[str, tuple[str, str]] = {}

    # ------------------------------------------------------------------
    # lanes
    # ------------------------------------------------------------------
    def register_lane(self, lane: str) -> None:
        """Bind the calling thread to ``lane`` (one Force process)."""
        with self._rings_lock:
            ring = self._rings.get(lane)
            if ring is None:
                ring = _Ring(self.capacity)
                self._rings[lane] = ring
        self._local.lane = lane
        self._local.ring = ring

    def release_lane(self) -> None:
        """Detach the calling thread (its events stay recorded)."""
        self._parked.pop(getattr(self._local, "lane", None), None)
        self._local.lane = None
        self._local.ring = None

    def _lane_ring(self) -> tuple[str, _Ring]:
        ring = getattr(self._local, "ring", None)
        if ring is None:
            self.register_lane("main")
            ring = self._local.ring
        return self._local.lane, ring

    @property
    def lanes(self) -> list[str]:
        with self._rings_lock:
            return sorted(self._rings)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the collector epoch."""
        return self._clock() - self.epoch

    def record(self, kind: str, name: str = "", op: str = "", *,
               phase: str = "i", ts: float | None = None,
               dur: float = 0.0, detail: str = "",
               **args: Any) -> None:
        lane, ring = self._lane_ring()
        when = self.now() if ts is None else ts
        ring.append(TraceEvent(ts=when, proc=lane, kind=kind, name=name,
                               op=op, phase=phase, dur=dur, detail=detail,
                               args=args))
        self.last_event_at = self._clock()

    # ------------------------------------------------------------------
    # parked-state (stall watchdog source)
    # ------------------------------------------------------------------
    def mark_parked(self, kind: str, name: str) -> None:
        lane, _ = self._lane_ring()
        self._parked[lane] = (kind, name)

    def clear_parked(self) -> None:
        self._parked.pop(getattr(self._local, "lane", None), None)

    def parked(self) -> dict[str, tuple[str, str]]:
        """Snapshot of who is blocked where (lane -> (kind, name))."""
        return dict(self._parked)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        with self._rings_lock:
            rings = list(self._rings.values())
        return sum(ring.dropped for ring in rings)

    def events(self) -> list[TraceEvent]:
        """All recorded events merged across lanes, time-ordered."""
        with self._rings_lock:
            rings = list(self._rings.values())
        merged: list[TraceEvent] = []
        for ring in rings:
            merged.extend(ring.snapshot())
        merged.sort(key=lambda e: (e.ts, e.proc))
        return merged
