"""Stall watchdog: dump who is parked where when a run goes quiet.

A hung Force program is silent by construction — every process is
blocked inside a barrier, critical section, askfor ``get`` or
full/empty wait, so nothing records events and nothing prints.  The
watchdog is a daemon sampler over a :class:`TraceCollector`: when no
event has been recorded for ``interval`` seconds *and* at least one
process is marked parked, it emits one report naming the construct
each process is blocked on, then stays quiet until fresh events show
the program moved again (one report per distinct stall, not one per
sampling tick).

This feeds ``Force.run``'s join-deadline diagnostics real data: the
timeout message names the construct each straggler was parked on
rather than just listing live thread names.
"""

from __future__ import annotations

import sys
import threading
from typing import Callable

from repro.trace.collector import TraceCollector


def render_stall_report(collector: TraceCollector, *,
                        quiet_for: float | None = None) -> str:
    """One human-readable stall report from the collector's state."""
    parked = collector.parked()
    header = "--- stall watchdog ---"
    if quiet_for is not None:
        header += f" (no trace events for {quiet_for:.2f}s)"
    lines = [header]
    if not parked:
        lines.append("no process is marked parked "
                     "(compute-bound loop or lost wakeup outside "
                     "instrumented constructs?)")
    for lane in sorted(parked):
        kind, name = parked[lane]
        where = f"{kind} '{name}'" if name else kind
        lines.append(f"{lane:<14s} parked on {where}")
    return "\n".join(lines)


class StallWatchdog:
    """Daemon sampler that reports stalls through ``sink``.

    ``sink`` receives the rendered report string (default: write to
    stderr).  ``start``/``stop`` bracket one Force run; the thread
    wakes every ``interval / 4`` seconds, so stop latency and stall
    detection latency are both a fraction of the interval.
    """

    def __init__(self, collector: TraceCollector, interval: float, *,
                 sink: Callable[[str], None] | None = None) -> None:
        if interval <= 0:
            raise ValueError("watchdog interval must be positive")
        self.collector = collector
        self.interval = interval
        self.sink = sink if sink is not None else self._stderr_sink
        self.stall_count = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @staticmethod
    def _stderr_sink(report: str) -> None:
        print(report, file=sys.stderr)

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="force-watchdog", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def _run(self) -> None:
        clock = self.collector._clock
        reported_at: float | None = None
        while not self._stop.wait(self.interval / 4):
            last = self.collector.last_event_at
            quiet = clock() - last
            if quiet < self.interval:
                reported_at = None       # the program moved: re-arm
                continue
            if reported_at == last:
                continue                 # same stall already reported
            if not self.collector.parked():
                continue                 # quiet but nobody parked
            reported_at = last
            self.stall_count += 1
            self.sink(render_stall_report(self.collector,
                                          quiet_for=quiet))
