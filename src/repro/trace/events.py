"""The structured event model shared by both execution paths.

One :class:`TraceEvent` describes one observable runtime occurrence.
The fields mirror the Chrome trace-event format so export is a direct
mapping:

``ts``
    Event start time: seconds since the collector epoch for native
    runs, integer simulated cycles for simulator runs.
``proc``
    The lane — one Force process (``force-3``, ``summer-1``) or the
    simulator driver.
``kind``
    The construct category (``barrier``, ``critical``, ``selfsched``,
    ``askfor``, ``asyncvar``) or ``sched`` for process-lifecycle and
    scheduler events.
``phase``
    ``"i"`` for an instant, ``"X"`` for a complete span (``dur``
    meaningful).
``name``
    The construct instance: critical-section name, selfsched label,
    askfor pool, async-variable name, lock variable.
``op``
    What happened to it: ``wait``, ``hold``, ``episode``, ``chunk``,
    ``put``, ``got``, ``produce``, ``consume``, ``acquire`` …
``detail``
    Free text; for simulator events the original timeline line, so
    the classic text rendering round-trips byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: the construct categories every consumer understands ("fault" marks
#: events emitted by the deterministic fault injector; "checkpoint"
#: and "recover" mark the recovery layer's snapshot writes and
#: restore-from-snapshot instants)
KINDS = ("barrier", "critical", "selfsched", "askfor", "asyncvar",
         "sched", "fault", "checkpoint", "recover")


@dataclass(frozen=True, slots=True)
class TraceEvent:
    ts: float
    proc: str
    kind: str
    name: str = ""
    op: str = ""
    phase: str = "i"
    dur: float = 0.0
    detail: str = ""
    args: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "ts": self.ts, "proc": self.proc, "kind": self.kind,
            "name": self.name, "op": self.op, "phase": self.phase,
        }
        if self.phase == "X":
            data["dur"] = self.dur
        if self.detail:
            data["detail"] = self.detail
        if self.args:
            data["args"] = self.args
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        return cls(
            ts=data.get("ts", 0.0),
            proc=str(data.get("proc", "?")),
            kind=str(data.get("kind", "sched")),
            name=str(data.get("name", "")),
            op=str(data.get("op", "")),
            phase=str(data.get("phase", "i")),
            dur=data.get("dur", 0.0),
            detail=str(data.get("detail", "")),
            args=dict(data.get("args", {})),
        )

    def text_line(self) -> str:
        """The human-readable body of this event (timeline rendering)."""
        if self.detail:
            return self.detail
        parts = [self.kind]
        if self.name:
            parts.append(self.name)
        if self.op:
            parts.append(self.op)
        if self.phase == "X":
            parts.append(f"({_fmt_dur(self.dur)})")
        return " ".join(parts)


def _fmt_dur(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"
