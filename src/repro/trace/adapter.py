"""Adapt simulator scheduler traces to the unified event model.

The discrete-event scheduler records ``(time, process, text)`` triples
(:attr:`repro.sim.scheduler.Scheduler.trace`).  This module parses
those lines back into :class:`~repro.trace.events.TraceEvent` objects
so the simulator and the native runtime share exporters, summaries
and the text timeline.  The original line is preserved in ``detail``,
making the classic rendering a pure pass-through.

Categorisation uses the translated programs' naming conventions:

* ``BARWIN`` / ``BARWOT`` — the barrier macro's two gate locks;
* ``ZZL<label>`` — a selfscheduled loop's index lock;
* ``fe-full`` / ``fe-empty`` block keys — full/empty (async) cells;
* ``('queue', name)`` block keys — askfor/task-queue waits;
* any other lock — a critical-section lock variable.
"""

from __future__ import annotations

import re

from repro.trace.events import TraceEvent

#: lock-verb prefixes the scheduler emits, mapped to an operation
_LOCK_VERBS = (
    ("acquired ", "acquire"),
    ("waiting on ", "wait"),
    ("granted ", "grant"),
    ("released ", "release"),
)

_SCHED_TEXTS = frozenset(
    ["spawned", "woken", "halt", "done"])


def _categorize_lock(name: str) -> str:
    upper = name.upper()
    base = upper.split("(", 1)[0]
    if base in ("BARWIN", "BARWOT"):
        return "barrier"
    if base.startswith("ZZL"):
        return "selfsched"
    return "critical"


def _categorize_key(key_text: str) -> tuple[str, str]:
    """(kind, name) for a ``block``/``wake`` queue key."""
    if "fe-full" in key_text or "fe-empty" in key_text:
        return "asyncvar", key_text
    if "'queue'" in key_text or key_text.startswith("('queue'"):
        return "askfor", key_text
    # Other scheduler keys are tuples whose tail is often a raw
    # object id — keep only the stable leading tag ("('join', 1234)"
    # -> "join") so downstream reports stay deterministic.
    tag = re.match(r"\(\s*'(\w+)'", key_text)
    return "sched", tag.group(1) if tag else key_text


def event_from_sim_line(when: int, who: str, what: str) -> TraceEvent:
    """Parse one scheduler trace line into a structured event."""
    for prefix, op in _LOCK_VERBS:
        if what.startswith(prefix):
            name = what[len(prefix):]
            return TraceEvent(ts=when, proc=who, detail=what,
                              kind=_categorize_lock(name),
                              name=name, op=op)
    if what.startswith("block "):
        key_text = what[len("block "):]
        kind, name = _categorize_key(key_text)
        return TraceEvent(ts=when, proc=who, detail=what,
                          kind=kind, name=name, op="block")
    if what.startswith("spawn "):
        return TraceEvent(ts=when, proc=who, detail=what, kind="sched",
                          name=what[len("spawn "):], op="spawn")
    if what in _SCHED_TEXTS:
        return TraceEvent(ts=when, proc=who, detail=what, kind="sched",
                          name="", op=what)
    return TraceEvent(ts=when, proc=who, detail=what, kind="sched",
                      name="", op="")


def events_from_sim_trace(
        trace: list[tuple[int, str, str]]) -> list[TraceEvent]:
    """Convert a whole scheduler trace, preserving order."""
    return [event_from_sim_line(when, who, what)
            for when, who, what in trace]
