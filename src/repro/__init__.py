"""Reproduction of *The Force: A Highly Portable Parallel Programming
Language* (Jordan, Benten, Alaghband, Jakob; ICPP 1989).

Start with :mod:`repro.core` (the pipeline API and sample programs) or
:mod:`repro.runtime` (the Force programming model over Python threads).
See README.md for the architecture, DESIGN.md for the system inventory
and experiment map, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
__paper__ = ("The Force: A Highly Portable Parallel Programming "
             "Language, ICPP 1989")
