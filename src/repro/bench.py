"""The pinned performance suite behind ``force bench``.

Three benchmarks establish the perf baseline the paper's claims hinge
on, and every future change is compared against:

* **jacobi_throughput** — raw Fortran statement throughput of the
  tree-walking interpreter vs the compiled execution layer on a Jacobi
  relaxation kernel (the hot path E5/E6 measurements sit on);
* **selfsched_dispatch** — native-runtime selfscheduled-DOALL lock
  traffic under the ``self``/``chunked``/``guided`` policies (one lock
  round per chunk, so ``chunks == ceil(iters/chunk)``);
* **sum_critical_sim** / **askfor_tree** — end-to-end pipeline and
  native workloads whose wall-clock anchors the suite.

Results merge into ``BENCH_results.json`` (same schema the experiment
benchmarks use via ``benchmarks/conftest.py``), each entry stamped
with the current git revision so the trajectory is attributable across
PRs.  The suite also acts as a gate: it translates and runs the whole
example corpus and reports any program unit the compiled layer had to
fall back to the tree-walker on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable

SCHEMA = 1

#: example programs that deliberately do not translate (analyzer demos)
NON_RUNNABLE_EXAMPLES = {"racy_stencil.frc"}

#: the Jacobi relaxation kernel — plain Fortran, interpreter-only
JACOBI_KERNEL = """\
      PROGRAM JACOBI
      REAL U(66), V(66)
      INTEGER I, IT, N
      N = 66
      DO 5 I = 1, N
      U(I) = 0.0
5     CONTINUE
      U(1) = 100.0
      U(N) = 100.0
      DO 50 IT = 1, {sweeps}
      DO 10 I = 2, N - 1
      V(I) = 0.25 * U(I-1) + 0.5 * U(I) + 0.25 * U(I+1)
10    CONTINUE
      DO 20 I = 2, N - 1
      U(I) = V(I)
20    CONTINUE
50    CONTINUE
      WRITE(*,*) NINT(1000.0 * U(3))
      END
"""


def git_revision(root: Path | None = None) -> str | None:
    """The current short git revision, or None (with a warning).

    ``root`` defaults to the checkout this package lives in — running
    ``force bench`` from an unrelated directory must not stamp that
    directory's revision into BENCH_results.json.  When ``git
    rev-parse`` is unavailable or fails (tarball install, missing git,
    corrupt checkout), the result degrades to ``git_revision: null``
    with a warning instead of crashing.
    """
    if root is None:
        root = Path(__file__).resolve().parents[2]
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired) as exc:
        print(f"warning: cannot stamp git revision ({exc}); "
              "recording git_revision: null", file=sys.stderr)
        return None
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"git exited {proc.returncode}"
        print(f"warning: cannot stamp git revision ({detail}); "
              "recording git_revision: null", file=sys.stderr)
        return None
    return proc.stdout.strip() or None


def make_entry(name: str, *, params: dict[str, Any] | None = None,
               wall_s: float | None = None, data: Any = None,
               revision: str | None = None) -> dict[str, Any]:
    """One machine-readable benchmark result (the shared schema)."""
    return {
        "name": name,
        "params": params or {},
        "wall_s": wall_s,
        "data": data,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_revision": revision if revision is not None else git_revision(),
    }


def merge_results(path: Path, entries: list[dict[str, Any]]) -> None:
    """Merge entries into the results file by name, newest wins.

    A corrupt or missing history never blocks fresh results — the perf
    record accumulates best-effort.
    """
    merged: dict[str, dict[str, Any]] = {}
    if path.exists():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
            for entry in previous.get("results", []):
                if isinstance(entry, dict) and "name" in entry:
                    merged[entry["name"]] = entry
        except (json.JSONDecodeError, OSError):
            pass
    for entry in entries:
        merged[entry["name"]] = entry
    document = {
        "schema": SCHEMA,
        "results": [merged[name] for name in sorted(merged)],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


# -- the pinned suite --------------------------------------------------

def _count_events(gen) -> tuple[int, int]:
    """Drive an interpreter generator to completion; return the
    (statements, cycles) totals of its cost events.  Every tier must
    agree on both even though the codegen tier batches straight-line
    runs and vectorized kernels into aggregate events."""
    from repro.fortran.interp import Cost, StopSignal
    statements = 0
    cycles = 0
    try:
        for event in gen:
            if isinstance(event, Cost):
                statements += event.statements
                cycles += event.cycles
    except StopSignal:
        pass
    return statements, cycles


def _jacobi_facts() -> dict[str, Any]:
    """A minimal facts document proving both inner Jacobi sweeps
    race-free, so the codegen tier may vectorize them.  Hand-written
    (not ``force check`` output) because the benchmark kernel is the
    already-expanded Fortran, and correct by inspection: disjoint
    element writes, and the benchmark runs single-process anyway."""
    return {"version": 1, "generator": "force bench", "files": [{
        "doalls": [
            {"routine": "JACOBI", "label": 10, "race_free": True},
            {"routine": "JACOBI", "label": 20, "race_free": True},
        ],
    }]}


def _run_kernel(source: str, tier: str,
                facts: dict[str, Any] | None = None) -> dict[str, Any]:
    """Warm steady-state measurement of one execution tier.

    The first (untimed) run pays one-time costs — source generation,
    ``compile()``, closure building — so the timed second run measures
    what a long simulation's hot loop actually sees.  The cold wall
    time is recorded separately for transparency.
    """
    from repro.fortran.interp import Interpreter
    from repro.fortran.parser import parse_source
    program = parse_source(source)
    lines: list[str] = []
    interp = Interpreter(program, compiled=tier != "interp",
                         codegen=tier, facts=facts,
                         on_output=lambda text, frame: lines.append(text))
    unit = program.unit("JACOBI")
    start = time.perf_counter()
    _count_events(interp.run_unit(unit, []))
    cold_s = time.perf_counter() - start
    lines.clear()
    start = time.perf_counter()
    statements, cycles = _count_events(interp.run_unit(unit, []))
    elapsed = time.perf_counter() - start
    return {
        "statements": statements,
        "cycles": cycles,
        "seconds": elapsed,
        "cold_seconds": cold_s,
        "output": "\n".join(lines),
        "kernelized": dict(interp.codegen_kernelized),
        "fallbacks": dict(interp.compile_fallbacks),
    }


def _assert_tiers_agree(runs: dict[str, dict[str, Any]]) -> None:
    """Every tier must be bit-identical on output and cost totals."""
    baseline = runs["interp"]
    for tier, run in runs.items():
        if (run["statements"], run["cycles"], run["output"]) != \
                (baseline["statements"], baseline["cycles"],
                 baseline["output"]):
            raise AssertionError(
                f"{tier} tier diverged from the tree-walker on the "
                f"Jacobi kernel: {run['statements']}/{run['cycles']}/"
                f"{run['output']!r} vs {baseline['statements']}/"
                f"{baseline['cycles']}/{baseline['output']!r}")


def bench_jacobi_throughput(quick: bool) -> dict[str, Any]:
    """Statement throughput: tree-walker vs the codegen tier.

    The facts document proves the two inner sweeps race-free, so the
    generated code lowers them to numpy slice kernels; the benchmark
    asserts that actually happened (kernelized DOALLs > 0, no
    fallbacks) — a silent fallback would record an honest but
    uninteresting number and mask a regression.
    """
    sweeps = 80 if quick else 400
    source = JACOBI_KERNEL.format(sweeps=sweeps)
    tree = _run_kernel(source, "interp")
    comp = _run_kernel(source, "source", facts=_jacobi_facts())
    _assert_tiers_agree({"interp": tree, "source": comp})
    if comp["fallbacks"]:
        raise AssertionError(
            f"codegen tier fell back on the Jacobi kernel: "
            f"{comp['fallbacks']}")
    kernelized = sum(len(labels)
                     for labels in comp["kernelized"].values())
    if not kernelized:
        raise AssertionError(
            "codegen tier lowered no Jacobi DOALLs to numpy kernels")
    speedup = (tree["seconds"] / comp["seconds"]) \
        if comp["seconds"] else float("inf")
    return {
        "params": {"sweeps": sweeps, "points": 66},
        "wall_s": comp["seconds"],
        "data": {
            "statements": comp["statements"],
            "tree_stmt_per_s": round(tree["statements"]
                                     / tree["seconds"])
            if tree["seconds"] else 0,
            "compiled_stmt_per_s": round(comp["statements"]
                                         / comp["seconds"])
            if comp["seconds"] else 0,
            "speedup": round(speedup, 2),
            "kernelized_doalls": kernelized,
            "codegen_cold_s": round(comp["cold_seconds"], 4),
        },
    }


def bench_codegen_throughput(quick: bool) -> dict[str, Any]:
    """Per-tier statement throughput (interp / closure / source).

    The CI perf-smoke gate reads this entry: it fails the build when
    the source tier fell back on the Jacobi kernel or vectorized no
    DOALLs, so a codegen regression cannot land silently.
    """
    sweeps = 80 if quick else 400
    source = JACOBI_KERNEL.format(sweeps=sweeps)
    facts = _jacobi_facts()
    runs = {tier: _run_kernel(
                source, tier,
                facts=facts if tier == "source" else None)
            for tier in ("interp", "closure", "source")}
    _assert_tiers_agree(runs)
    base_s = runs["interp"]["seconds"]
    tiers = {}
    for tier, run in runs.items():
        tiers[tier] = {
            "stmt_per_s": round(run["statements"] / run["seconds"])
            if run["seconds"] else 0,
            "speedup_vs_interp": round(base_s / run["seconds"], 2)
            if run["seconds"] else float("inf"),
            "cold_s": round(run["cold_seconds"], 4),
        }
    kernelized = sum(len(labels)
                     for labels in runs["source"]["kernelized"].values())
    return {
        "params": {"sweeps": sweeps, "points": 66},
        "wall_s": runs["source"]["seconds"],
        "data": {
            "tiers": tiers,
            "statements": runs["source"]["statements"],
            "kernelized_doalls": kernelized,
            "codegen_fell_back": bool(runs["source"]["fallbacks"]),
            "fallbacks": runs["source"]["fallbacks"],
        },
    }


def bench_selfsched_dispatch(quick: bool) -> dict[str, Any]:
    """Native selfsched lock traffic per dispatch policy.

    ``chunks`` equals the number of index-lock acquisitions — the loop
    claims each chunk under exactly one lock round — so the chunked
    counts are deterministic: ``ceil(iters / chunk)``.
    """
    from repro.runtime import Force
    iters = 320 if quick else 1600
    nproc = 4
    results: dict[str, Any] = {}
    timings: dict[str, float] = {}
    for label, kwargs in (("self", {}),
                          ("chunked16", {"chunk": 16}),
                          ("guided", {"schedule": "guided"})):
        force = Force(nproc=nproc, timeout=60, stats=True)

        def program(force: Any, me: int, kwargs=kwargs) -> None:
            for _i in force.selfsched_range("bench", 1, iters, **kwargs):
                pass

        start = time.perf_counter()
        force.run(program)
        timings[label] = time.perf_counter() - start
        results[label] = force.stats["selfsched"]["bench"]
    expected16 = -(-iters // 16)
    if results["chunked16"]["chunks"] != expected16:
        raise AssertionError(
            f"chunked dispatch not deterministic: expected {expected16} "
            f"chunks for {iters} iters at chunk=16, got "
            f"{results['chunked16']['chunks']}")
    if results["self"]["chunks"] != iters:
        raise AssertionError(
            f"self dispatch expected {iters} chunks, got "
            f"{results['self']['chunks']}")
    lock_ratio = results["self"]["chunks"] / results["chunked16"]["chunks"]
    return {
        "params": {"iters": iters, "nproc": nproc, "chunk": 16},
        "wall_s": timings["chunked16"],
        "data": {
            "policies": results,
            "lock_acquisition_ratio_chunk16": round(lock_ratio, 2),
        },
    }


def bench_sum_critical_sim(quick: bool) -> dict[str, Any]:
    """Pipeline end-to-end: sum_critical.frc, self vs chunked."""
    from repro.machines import get_machine
    from repro.pipeline.compile import force_translate
    from repro.pipeline.run import force_run
    source = _example("sum_critical.frc")
    machine = get_machine("sequent-balance")
    nproc = 4
    data: dict[str, Any] = {}
    wall = 0.0
    for label, kwargs in (("self", {}), ("chunked16", {"chunk": 16})):
        translation = force_translate(source, machine, **kwargs)
        start = time.perf_counter()
        result = force_run(translation, nproc)
        wall = time.perf_counter() - start
        data[label] = {
            "makespan": result.makespan,
            "lock_acquisitions": result.stats.lock_acquisitions,
            "output": result.output,
        }
    if data["self"]["output"] != data["chunked16"]["output"]:
        raise AssertionError(
            "chunked sum_critical diverged: "
            f"{data['self']['output']} vs {data['chunked16']['output']}")
    return {
        "params": {"machine": machine.key, "nproc": nproc},
        "wall_s": wall,
        "data": data,
    }


def bench_askfor_tree(quick: bool) -> dict[str, Any]:
    """Native askfor workload: dynamic tree expansion wall-clock."""
    from repro.faults.corpus import CORPUS
    entry = CORPUS["askfor_tree"]
    repeats = 1 if quick else 3
    best = float("inf")
    stats: dict[str, Any] = {}
    from repro.runtime import Force
    for _ in range(repeats):
        force = Force(nproc=entry.nproc, timeout=60, stats=True)
        start = time.perf_counter()
        force.run(entry.program)
        best = min(best, time.perf_counter() - start)
        entry.check(force)
        stats = force.stats.get("askfor", {})
    return {
        "params": {"nproc": entry.nproc, "repeats": repeats},
        "wall_s": best,
        "data": {"askfor": stats},
    }


def _wall_jacobi(force: Any, me: int, n: int, sweeps: int) -> None:
    """Jacobi relaxation over shared arrays — the wall-clock kernel.

    Module-level (not a closure) so the process backend can pickle it.
    Row-sliced numpy updates keep the per-iteration Python overhead
    low enough for the split to be compute-bound.
    """
    u = force.shared_array("u", (n, n))
    new = force.shared_array("new", (n, n))
    if me == 1:
        u[0, :] = 100.0
        u[-1, :] = 100.0
    force.barrier()
    for _sweep in range(sweeps):
        for i in force.presched_range(me, 1, n - 2):
            new[i, 1:-1] = 0.25 * (u[i - 1, 1:-1] + u[i + 1, 1:-1]
                                   + u[i, :-2] + u[i, 2:])
        force.barrier()
        for i in force.presched_range(me, 1, n - 2):
            u[i, 1:-1] = new[i, 1:-1]
        force.barrier()


def bench_wall_speedup(quick: bool) -> dict[str, Any]:
    """True multi-core wall clock: Jacobi on the process backend.

    The one suite entry measured on real hardware rather than in the
    simulator — nproc=4 vs nproc=1 on ``backend="process"``.  The
    ratio is recorded honestly: on a single-CPU host it sits near (or
    below) 1.0 and the ``cpu_count`` field says why.
    """
    from repro.runtime import Force
    n = 96 if quick else 192
    sweeps = 20 if quick else 80
    walls: dict[int, float] = {}
    for nproc in (1, 4):
        force = Force(nproc, backend="process", timeout=300)
        start = time.perf_counter()
        force.run(_wall_jacobi, n, sweeps)
        walls[nproc] = time.perf_counter() - start
    speedup = (walls[1] / walls[4]) if walls[4] else float("inf")
    return {
        "params": {"kernel": "jacobi", "n": n, "sweeps": sweeps,
                   "backend": "process", "cpu_count": os.cpu_count()},
        "wall_s": walls[4],
        "data": {
            "wall_1": round(walls[1], 4),
            "wall_4": round(walls[4], 4),
            "wall_speedup": round(speedup, 2),
        },
    }


def bench_analyzer_throughput(quick: bool) -> dict[str, Any]:
    """Static-analysis throughput and the facts-driven kernel gate.

    Runs the full engine (parse → barrier-phase partition →
    interprocedural summary → race/lock passes) over every example
    program, times repeated analyses of the largest one, and records
    how many corpus DOALLs the facts document proves race-free — the
    count the compiled layer's kernel-eligibility gate consumes.
    """
    from repro.analysis import analyze_source
    from repro.analysis.facts import build_facts, validate_facts

    corpus: list[tuple[str, Any, str]] = []
    for path in sorted(_examples_dir().rglob("*.frc")):
        source = path.read_text(encoding="utf-8")
        _, summary = analyze_source(source, path.name)
        if summary is not None:
            corpus.append((path.name, summary, source))
    largest_name, largest_summary, largest_source = max(
        corpus, key=lambda item: item[1].statement_count)
    repeats = 5 if quick else 25
    start = time.perf_counter()
    for _ in range(repeats):
        analyze_source(largest_source, largest_name)
    elapsed = time.perf_counter() - start
    statements = largest_summary.statement_count

    doc = build_facts([(name, summary) for name, summary, _ in corpus])
    problems = validate_facts(doc)
    if problems:
        raise AssertionError(
            f"facts document fails its own schema: {problems[0]}")
    doalls = [doall for entry in doc["files"]
              for doall in entry["doalls"]]
    eligible = sum(1 for doall in doalls if doall["race_free"])
    return {
        "params": {"corpus": "examples/**/*.frc",
                   "largest": largest_name, "repeats": repeats},
        "wall_s": elapsed,
        "data": {
            "files": len(corpus),
            "statements": statements,
            "statements_per_s":
                round(statements * repeats / elapsed) if elapsed else 0,
            "doalls": len(doalls),
            "kernel_eligible_doalls": eligible,
        },
    }


def _paired_overhead(bare: Callable[[], float],
                     instrumented: Callable[[], float],
                     rounds: int) -> dict[str, float]:
    """Overhead of ``instrumented`` vs ``bare`` from paired rounds.

    Each round times both back-to-back so host drift cancels; the
    minimum ratio is the robust estimate (noise only inflates a
    round's ratio, so the minimum converges onto the true overhead
    from above).
    """
    ratios = []
    for _ in range(rounds):
        base = bare()
        ratios.append(instrumented() / base if base else 1.0)
    ratios.sort()
    return {
        "min_ratio": round(ratios[0], 4),
        "median_ratio": round(ratios[len(ratios) // 2], 4),
    }


def bench_trace_overhead(quick: bool) -> dict[str, Any]:
    """Cost of observability: tracing and metrics vs bare runs.

    Two vantage points: statement-level (the simulated jacobi pipeline
    run, single-threaded and stable) and wall-clock (the native
    ``_wall_jacobi`` kernel on threads, noisier but end-to-end).  The
    recorded ratios are what the tier-1 overhead guard asserts on.
    """
    from repro.machines import get_machine
    from repro.pipeline.compile import force_translate
    from repro.pipeline.run import force_run
    from repro.runtime import Force
    machine = get_machine("sequent-balance")
    translation = force_translate(_example("jacobi.frc"), machine)
    rounds = 3 if quick else 6

    def sim_run(**kwargs: Any) -> Callable[[], float]:
        def timed() -> float:
            start = time.perf_counter()
            force_run(translation, 4, **kwargs)
            return time.perf_counter() - start
        return timed

    n, sweeps = (128, 8) if quick else (256, 16)

    def native_run(**kwargs: Any) -> Callable[[], float]:
        def timed() -> float:
            force = Force(2, timeout=120, **kwargs)
            start = time.perf_counter()
            force.run(_wall_jacobi, n, sweeps)
            return time.perf_counter() - start
        return timed

    sim_bare = sim_run()
    native_bare = native_run()
    sim_bare()          # warm caches before pairing
    native_bare()
    data = {
        "sim_trace": _paired_overhead(sim_bare, sim_run(trace=True),
                                      rounds),
        "native_metrics": _paired_overhead(
            native_bare, native_run(metrics=True), rounds),
        "native_trace": _paired_overhead(
            native_bare, native_run(trace=True), rounds),
    }
    wall = native_bare()
    return {
        "params": {"rounds": rounds, "n": n, "sweeps": sweeps,
                   "machine": machine.key},
        "wall_s": wall,
        "data": data,
    }


def bench_checkpoint_overhead(quick: bool) -> dict[str, Any]:
    """Cost of checkpointing: armed-but-idle vs every-barrier snapshots.

    Two paired ratios over the native jacobi kernel.  ``idle`` arms a
    policy at an interval the run never reaches — the cost of the hook
    plumbing alone, a strict upper bound on the checkpoint-off cost
    (a ``None`` policy skips even the episode count), and what the
    tier-1 guard bounds below 2%.  ``every_barrier`` snapshots at
    every consistent cut and is recorded honestly together with the
    footprint of one snapshot.
    """
    import shutil
    import tempfile
    from repro.runtime import Force
    from repro.runtime.checkpoint import (CheckpointPolicy,
                                          latest_checkpoint)
    n, sweeps = (96, 8) if quick else (192, 16)
    rounds = 3 if quick else 6
    ckdir = tempfile.mkdtemp(prefix="force-bench-ckpt-")
    snapshot = {"bytes": 0, "count": 0}

    def bare() -> float:
        force = Force(2, timeout=120)
        start = time.perf_counter()
        force.run(_wall_jacobi, n, sweeps)
        return time.perf_counter() - start

    def run_with(every_n: int) -> Callable[[], float]:
        def timed() -> float:
            shutil.rmtree(ckdir, ignore_errors=True)
            policy = CheckpointPolicy(every_n_barriers=every_n,
                                      dir=ckdir)
            force = Force(2, timeout=120, checkpoint=policy)
            start = time.perf_counter()
            force.run(_wall_jacobi, n, sweeps)
            elapsed = time.perf_counter() - start
            newest = latest_checkpoint(ckdir)
            if newest is not None:
                snapshot["bytes"] = os.path.getsize(newest)
                snapshot["count"] = len(os.listdir(ckdir))
            return elapsed
        return timed

    try:
        bare()          # warm caches before pairing
        data = {
            "idle": _paired_overhead(bare, run_with(10 ** 9), rounds),
            "every_barrier": _paired_overhead(bare, run_with(1),
                                              rounds),
            "snapshot_bytes": snapshot["bytes"],
            "snapshots_per_run": snapshot["count"],
        }
    finally:
        shutil.rmtree(ckdir, ignore_errors=True)
    wall = bare()
    return {
        "params": {"kernel": "jacobi", "n": n, "sweeps": sweeps,
                   "nproc": 2, "backend": "thread", "rounds": rounds},
        "wall_s": wall,
        "data": data,
    }


#: the stride-resonant load the tune-quality entry stresses: heavy
#: work on every NPROC-th index collapses cyclic prescheduling
_TUNE_TEMPLATE = """\
Force ABLA of NP ident ME
Private INTEGER I, J, W
Shared INTEGER SINK
End declarations
Barrier
      SINK = 0
End barrier
{open_loop}
      IF (MOD(I, 4) .EQ. 1) THEN
        W = 800
      ELSE
        W = 4
      END IF
      DO 5 J = 1, W
        SINK = SINK
5     CONTINUE
{close_loop}
Join
      END
"""


def bench_tune_quality(quick: bool) -> dict[str, Any]:
    """Does ``force tune`` pick the config the sweep ranks best?

    One traced selfscheduled observation run feeds the recommender;
    the candidate configs are then actually measured and the
    recommendation scored by *regret* — the measured makespan of the
    recommended config over the measured best (1.0 == perfect).
    """
    from repro.machines import get_machine
    from repro.obsv.tune import tune_from_events
    from repro.pipeline.run import force_compile_and_run
    machine = get_machine("sequent-balance")
    nproc = 4
    n_iter = 32 if quick else 64
    loops = {
        "cyclic": (f"Presched DO 100 I = 1, {n_iter}",
                   "100 End presched DO", {}),
        "blocked": (f"Blocksched DO 100 I = 1, {n_iter}",
                    "100 End blocksched DO", {}),
        "self": (f"Selfsched DO 100 I = 1, {n_iter}",
                 "100 End Selfsched DO", {}),
    }
    start = time.perf_counter()
    observed = force_compile_and_run(
        _TUNE_TEMPLATE.format(open_loop=loops["self"][0],
                              close_loop=loops["self"][1]),
        machine, nproc, trace=True)
    doc = tune_from_events(
        observed.trace_events(), nproc=nproc,
        candidates=(("cyclic", None), ("blocked", None),
                    ("self", None)))
    sched = doc["recommendations"]["sched"] or {}
    recommended = sched.get("policy")
    measured = {}
    for label, (open_loop, close_loop, policy) in loops.items():
        result = force_compile_and_run(
            _TUNE_TEMPLATE.format(open_loop=open_loop,
                                  close_loop=close_loop),
            machine, nproc, **policy)
        measured[label] = result.makespan
    elapsed = time.perf_counter() - start
    best = min(measured, key=measured.get)
    regret = (measured.get(recommended, float("inf"))
              / measured[best]) if measured[best] else float("inf")
    return {
        "params": {"machine": machine.key, "nproc": nproc,
                   "n_iter": n_iter, "load": "resonant"},
        "wall_s": elapsed,
        "data": {
            "recommended": recommended,
            "measured_best": best,
            "measured_makespans": measured,
            "agreement": recommended == best,
            "regret": round(regret, 4),
        },
    }


def compiled_corpus_fallbacks() -> dict[str, dict[str, str]]:
    """Translate + run every runnable example; report any program unit
    the compiled layer refused (empty dict == full coverage)."""
    from repro.machines import get_machine
    from repro.pipeline.compile import force_translate
    from repro.pipeline.run import force_run
    machine = get_machine("sequent-balance")
    fallbacks: dict[str, dict[str, str]] = {}
    for path in sorted(_examples_dir().glob("*.frc")):
        if path.name in NON_RUNNABLE_EXAMPLES:
            continue
        translation = force_translate(path.read_text(encoding="utf-8"),
                                      machine)
        result = force_run(translation, 4)
        if result.compile_fallbacks:
            fallbacks[path.name] = dict(result.compile_fallbacks)
    return fallbacks


def _examples_dir() -> Path:
    return Path(__file__).resolve().parents[2] / "examples"


def _example(name: str) -> str:
    return (_examples_dir() / name).read_text(encoding="utf-8")


SUITE: tuple[tuple[str, Callable[[bool], dict[str, Any]]], ...] = (
    ("bench_jacobi_throughput", bench_jacobi_throughput),
    ("bench_codegen_throughput", bench_codegen_throughput),
    ("bench_selfsched_dispatch", bench_selfsched_dispatch),
    ("bench_sum_critical_sim", bench_sum_critical_sim),
    ("bench_askfor_tree", bench_askfor_tree),
    ("bench_wall_speedup", bench_wall_speedup),
    ("bench_analyzer_throughput", bench_analyzer_throughput),
    ("bench_trace_overhead", bench_trace_overhead),
    ("bench_checkpoint_overhead", bench_checkpoint_overhead),
    ("bench_tune_quality", bench_tune_quality),
)


def run_bench_suite(*, quick: bool = False,
                    output: Path | None = None) -> dict[str, Any]:
    """Run the pinned suite, merge results, return the report."""
    revision = git_revision()
    entries: list[dict[str, Any]] = []
    for name, fn in SUITE:
        outcome = fn(quick)
        entries.append(make_entry(name, params=outcome["params"],
                                  wall_s=outcome["wall_s"],
                                  data=outcome["data"],
                                  revision=revision))
    fallbacks = compiled_corpus_fallbacks()
    entries.append(make_entry("bench_compiled_coverage",
                              params={"corpus": "examples/*.frc"},
                              data={"fallbacks": fallbacks},
                              revision=revision))
    if output is None:
        output = Path.cwd() / "BENCH_results.json"
    merge_results(output, entries)
    return {
        "quick": quick,
        "git_revision": revision,
        "output": str(output),
        "results": entries,
        "fallbacks": fallbacks,
    }


def render_bench_report(report: dict[str, Any]) -> str:
    """Human-readable summary of one suite run."""
    lines = [f"force bench ({'quick' if report['quick'] else 'full'}, "
             f"rev {report['git_revision'] or 'unknown'}) "
             f"-> {report['output']}"]
    by_name = {entry["name"]: entry for entry in report["results"]}
    jac = by_name["bench_jacobi_throughput"]["data"]
    lines.append(
        f"jacobi throughput:   {jac['tree_stmt_per_s']:>9d} stmt/s tree, "
        f"{jac['compiled_stmt_per_s']:>9d} stmt/s compiled "
        f"({jac['speedup']:.2f}x, "
        f"{jac.get('kernelized_doalls', 0)} DOALL(s) vectorized)")
    cg = by_name.get("bench_codegen_throughput")
    if cg is not None:
        tiers = cg["data"]["tiers"]
        lines.append(
            "codegen tiers:       "
            f"interp {tiers['interp']['stmt_per_s']} stmt/s, "
            f"closure {tiers['closure']['stmt_per_s']} "
            f"({tiers['closure']['speedup_vs_interp']:.1f}x), "
            f"source {tiers['source']['stmt_per_s']} "
            f"({tiers['source']['speedup_vs_interp']:.1f}x), "
            f"{cg['data']['kernelized_doalls']} kernel(s)"
            + (" [FELL BACK]" if cg["data"]["codegen_fell_back"]
               else ""))
    sched = by_name["bench_selfsched_dispatch"]["data"]
    pol = sched["policies"]
    lines.append(
        f"selfsched dispatch:  self {pol['self']['chunks']} lock rounds, "
        f"chunk=16 {pol['chunked16']['chunks']}, "
        f"guided {pol['guided']['chunks']} "
        f"({sched['lock_acquisition_ratio_chunk16']:.1f}x fewer at "
        f"chunk=16)")
    sim = by_name["bench_sum_critical_sim"]["data"]
    lines.append(
        f"sum_critical (sim):  {sim['self']['lock_acquisitions']} lock "
        f"acq self, {sim['chunked16']['lock_acquisitions']} chunked, "
        f"makespan {sim['self']['makespan']} vs "
        f"{sim['chunked16']['makespan']} cycles")
    ask = by_name["bench_askfor_tree"]
    lines.append(
        f"askfor tree:         {ask['wall_s'] * 1e3:.1f} ms "
        f"(nproc {ask['params']['nproc']})")
    wall = by_name["bench_wall_speedup"]
    lines.append(
        f"wall_speedup:        {wall['data']['wall_speedup']:.2f}x "
        f"(process backend, nproc 4 vs 1, jacobi "
        f"n={wall['params']['n']}, {wall['params']['cpu_count']} "
        "CPU(s))")
    ana = by_name["bench_analyzer_throughput"]["data"]
    lines.append(
        f"analyzer:            {ana['statements_per_s']} stmt/s on the "
        f"largest program; {ana['kernel_eligible_doalls']}/"
        f"{ana['doalls']} corpus DOALLs proven race-free")
    over = by_name["bench_trace_overhead"]["data"]
    lines.append(
        "trace overhead:      sim trace "
        f"{over['sim_trace']['min_ratio']:.2f}x, native metrics "
        f"{over['native_metrics']['min_ratio']:.2f}x, native trace "
        f"{over['native_trace']['min_ratio']:.2f}x (min paired ratio)")
    ckpt = by_name["bench_checkpoint_overhead"]["data"]
    lines.append(
        "checkpoint overhead: idle "
        f"{ckpt['idle']['min_ratio']:.2f}x, every-barrier "
        f"{ckpt['every_barrier']['min_ratio']:.2f}x "
        f"({ckpt['snapshot_bytes']} B/snapshot, "
        f"{ckpt['snapshots_per_run']} per run)")
    tune = by_name["bench_tune_quality"]["data"]
    lines.append(
        f"tune quality:        recommended {tune['recommended']}, "
        f"measured best {tune['measured_best']} "
        f"({'agree' if tune['agreement'] else 'DISAGREE'}, regret "
        f"{tune['regret']:.2f}x)")
    if report["fallbacks"]:
        lines.append("compiled coverage:   FALLBACKS "
                     + json.dumps(report["fallbacks"]))
    else:
        lines.append("compiled coverage:   all example programs ran "
                     "compiled (no tree-walker fallbacks)")
    return "\n".join(lines)
