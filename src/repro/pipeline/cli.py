"""Command-line interface: ``force translate|run|machines``.

Examples::

    force machines
    force translate program.frc --machine sequent-balance
    force run program.frc --machine hep --nproc 8 --stats
"""

from __future__ import annotations

import argparse
import sys

from repro._util.errors import ForceError
from repro.machines import get_machine, MACHINES
from repro.pipeline.compile import force_translate
from repro.pipeline.run import force_run


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="force",
        description="The Force parallel language — reproduction pipeline")
    sub = parser.add_subparsers(dest="command", required=True)

    machines = sub.add_parser("machines",
                              help="list the supported machine models")
    machines.set_defaults(func=_cmd_machines)

    translate = sub.add_parser("translate",
                               help="preprocess a Force program to Fortran")
    translate.add_argument("source", help="Force source file")
    translate.add_argument("--machine", default="sequent-balance")
    translate.add_argument("--stage", choices=["sed", "fortran"],
                           default="fortran",
                           help="which intermediate form to print")
    translate.set_defaults(func=_cmd_translate)

    run = sub.add_parser("run", help="simulate a Force program")
    run.add_argument("source", help="Force source file")
    run.add_argument("--machine", default="sequent-balance")
    run.add_argument("--nproc", type=int, default=4)
    run.add_argument("--stats", action="store_true",
                     help="print simulation statistics")
    run.add_argument("--trace", action="store_true",
                     help="print a simulated-time event timeline")
    run.add_argument("--utilization", action="store_true",
                     help="print per-process utilization bars")
    run.set_defaults(func=_cmd_run)
    return parser


def _cmd_machines(args: argparse.Namespace) -> int:
    for machine in MACHINES.values():
        print(f"{machine.key:18s} {machine.describe()}")
    return 0


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_translate(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    result = force_translate(_read(args.source), machine)
    print(result.sed_output if args.stage == "sed" else result.fortran)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    translation = force_translate(_read(args.source), machine)
    result = force_run(translation, args.nproc, trace=args.trace)
    for line in result.output:
        print(line)
    if args.trace:
        from repro.sim.timeline import lock_contention_report, \
            render_timeline
        print(render_timeline(result.trace), file=sys.stderr)
        print("--- lock contention ---", file=sys.stderr)
        print(lock_contention_report(result.trace), file=sys.stderr)
    if args.utilization:
        from repro.sim.timeline import render_utilization
        print(render_utilization(result.stats), file=sys.stderr)
    if args.stats:
        from repro.runtime.stats import render_stats
        print(render_stats(result.stats_dict()), file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ForceError as exc:
        print(f"force: error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"force: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
