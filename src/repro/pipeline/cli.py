"""Command-line interface: ``force translate|run|check|trace|chaos``.

Examples::

    force machines
    force translate program.frc --machine sequent-balance
    force translate program.frc --check          # gate on diagnostics
    force run program.frc --machine hep --nproc 8 --stats
    force run program.frc --stats --format json  # machine-readable
    force run program.frc --trace out.json       # Chrome trace file
    force run program.frc --metrics out.prom     # Prometheus export
    force run program.frc --deadline 30          # bound the simulation
    force trace out.json                         # per-construct summary
    force profile out.json --folded out.folded   # forensics report
    force tune out.json --output rec.json        # policy recommender
    force check program.frc                      # static analysis only
    force check program.frc --format json --werror
    force chaos --seed 42 --runs 200             # seeded fault sweep
    force chaos --inject die@askfor.got:proc=1 askfor_tree

IO contract: program output goes to stdout; diagnostics, timelines and
reports go to stderr.  With ``--format json`` a single JSON document
replaces stdout's plain lines (program output under ``"output"``,
statistics under ``"stats"``), giving ``force run`` the same
machine-readable surface as ``force check --format json``.

Exit status (the documented taxonomy, asserted by the CLI tests):

====  ===========================================================
code  meaning
====  ===========================================================
0     success
1     program or pipeline error (translation failure, a process
      raised, static ``check`` found errors, chaos invariant broken)
2     usage error (bad flags, unknown machine, bad fault spec
      grammar caught by argparse)
3     deadlock or timeout — a structured no-progress verdict:
      simulated deadlock, ``--deadline`` exceeded, a native
      construct deadline fired, or a worker died irrecoverably
====  ===========================================================
"""

from __future__ import annotations

import argparse
import difflib
import sys

from repro._util.errors import (
    ForceDeadlockError,
    ForceError,
    ForceWorkerDied,
    SimDeadlockError,
)
from repro.machines import get_machine, MACHINES
from repro.pipeline.compile import force_translate
from repro.pipeline.run import force_run

#: the exit-code taxonomy (see module docstring)
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_DEADLOCK = 3


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive process count (got {value})")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (got {value})")
    return value


def _fault_kinds(text: str) -> tuple:
    from repro.faults.plan import FAULT_KINDS
    kinds = tuple(part.strip() for part in text.split(",") if part.strip())
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise argparse.ArgumentTypeError(
                f"unknown fault kind {kind!r}; expected a comma list "
                f"of {', '.join(FAULT_KINDS)}")
    if not kinds:
        raise argparse.ArgumentTypeError(
            "expected at least one fault kind")
    return kinds


def _chunk_size(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a chunk size >= 1 (got {value})")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds (got {value})")
    return value


def _fault_spec(text: str):
    from repro.faults.plan import FaultSpecError, parse_fault_spec
    try:
        return parse_fault_spec(text)
    except FaultSpecError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _machine_key(text: str) -> str:
    if text in MACHINES:
        return text
    close = difflib.get_close_matches(text, MACHINES, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    raise argparse.ArgumentTypeError(
        f"unknown machine {text!r}{hint}; run 'force machines' to list "
        "the supported models")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="force",
        description="The Force parallel language — reproduction pipeline")
    sub = parser.add_subparsers(dest="command", required=True)

    machines = sub.add_parser("machines",
                              help="list the supported machine models")
    machines.set_defaults(func=_cmd_machines)

    translate = sub.add_parser("translate",
                               help="preprocess a Force program to Fortran")
    translate.add_argument("source", help="Force source file")
    translate.add_argument("--machine", type=_machine_key,
                           default="sequent-balance")
    translate.add_argument("--stage", choices=["sed", "fortran"],
                           default="fortran",
                           help="which intermediate form to print")
    translate.add_argument("--check", action="store_true",
                           help="run the static analyzer first and refuse "
                                "to translate a program with errors")
    translate.add_argument("--sched", choices=["self", "chunked", "guided"],
                           default=None,
                           help="selfscheduled-DOALL dispatch policy "
                                "(default: the paper's one index per "
                                "lock round)")
    translate.add_argument("--chunk", type=_chunk_size, default=None,
                           metavar="N",
                           help="indices claimed per lock round for "
                                "--sched chunked (implies it when > 1)")
    translate.add_argument("--emit-python", metavar="FILE", default=None,
                           help="also write the source-codegen tier's "
                                "generated Python for every unit (with "
                                "per-line Fortran provenance comments) "
                                "to FILE")
    translate.set_defaults(func=_cmd_translate)

    run = sub.add_parser("run", help="simulate a Force program "
                                     "(or run it for real: --backend)")
    run.add_argument("source", help="Force source file")
    run.add_argument("--machine", type=_machine_key, default=None,
                     help="machine model to simulate (default "
                          "sequent-balance; the native backends always "
                          "execute python-host code)")
    run.add_argument("--backend", choices=["sim", "thread", "process"],
                     default="sim",
                     help="execution backend: the discrete-event "
                          "simulator (default), or native execution on "
                          "real OS threads / forked processes over "
                          "shared memory")
    run.add_argument("--nproc", type=_positive_int, default=4,
                     help="number of Force processes (positive)")
    run.add_argument("--stats", action="store_true",
                     help="print simulation statistics")
    run.add_argument("--trace", nargs="?", const="-", default=None,
                     metavar="FILE",
                     help="collect an event trace; with FILE write it "
                          "there (format from --trace-format or the "
                          "extension), bare --trace prints the text "
                          "timeline to stderr")
    run.add_argument("--trace-format", choices=["chrome", "jsonl", "text"],
                     default=None,
                     help="trace file format (default: chrome, or by "
                          "FILE extension: .jsonl, .txt)")
    run.add_argument("--trace-buffer", type=_positive_int, default=65536,
                     metavar="N",
                     help="per-process trace ring capacity (native "
                          "backends); overflow drops the oldest events "
                          "and is reported (default 65536)")
    run.add_argument("--metrics", metavar="FILE", default=None,
                     help="collect runtime metrics and write them to "
                          "FILE: Prometheus text exposition, or a JSON "
                          "registry document for a .json FILE")
    run.add_argument("--format", choices=["text", "json"], default="text",
                     help="stdout format: plain program output, or one "
                          "JSON document with output and stats")
    run.add_argument("--utilization", action="store_true",
                     help="print per-process utilization bars")
    run.add_argument("--deadline", type=_positive_float, default=None,
                     metavar="SECS",
                     help="wall-clock bound for the simulation; a run "
                          "still churning past it exits 3 with a "
                          "structured deadline error")
    run.add_argument("--sched", choices=["self", "chunked", "guided"],
                     default=None,
                     help="selfscheduled-DOALL dispatch policy "
                          "(default: the paper's one index per lock "
                          "round)")
    run.add_argument("--chunk", type=_chunk_size, default=None,
                     metavar="N",
                     help="indices claimed per lock round for "
                          "--sched chunked (implies it when > 1)")
    run.add_argument("--no-jit", action="store_true",
                     help="execute on the tree-walking interpreter "
                          "instead of the compiled execution layer "
                          "(the differential-testing oracle)")
    run.add_argument("--checkpoint", metavar="DIR", default=None,
                     help="write barrier-epoch snapshots here "
                          "(native process backend only)")
    run.add_argument("--checkpoint-every", type=_positive_int,
                     default=1, metavar="N",
                     help="snapshot every N-th barrier episode "
                          "(default 1)")
    run.add_argument("--resume", action="store_true",
                     help="resume the first attempt from the newest "
                          "valid snapshot in --checkpoint DIR")
    run.add_argument("--retries", type=_nonnegative_int, default=0,
                     metavar="N",
                     help="retry transient failures (worker death, "
                          "deadlock verdicts) up to N times with "
                          "capped backoff, resuming from the newest "
                          "snapshot when --checkpoint is set")
    run.add_argument("--min-nproc", type=_positive_int, default=None,
                     metavar="M",
                     help="allow elastic restart down to M workers "
                          "(refused when --facts shows a non-race-free "
                          "DOALL; default: no degradation)")
    run.add_argument("--facts", metavar="FILE", default=None,
                     help="analysis facts written by 'force check "
                          "--facts'; DOALLs it proves race-free are "
                          "marked kernel-eligible in the compiled layer "
                          "(and lowered to numpy kernels on the source "
                          "tier); stale-revision facts are refused")
    run.add_argument("--codegen",
                     choices=["source", "closure", "interp"],
                     default=None,
                     help="execution tier: generated Python source "
                          "(default), pre-bound closures, or the "
                          "tree-walking interpreter")
    run.add_argument("--dump-codegen", metavar="DIR", default=None,
                     help="write each unit's generated Python source "
                          "(per-line Fortran provenance comments) "
                          "into DIR (simulator, source tier only)")
    run.set_defaults(func=_cmd_run)

    bench = sub.add_parser(
        "bench",
        help="run the pinned performance suite and record the results")
    bench.add_argument("--quick", action="store_true",
                       help="smaller problem sizes and fewer repeats "
                            "(CI smoke mode)")
    bench.add_argument("--output", metavar="FILE", default=None,
                       help="results file to merge into (default: "
                            "BENCH_results.json in the current "
                            "directory)")
    bench.add_argument("--format", choices=["text", "json"],
                       default="text", help="report format")
    bench.set_defaults(func=_cmd_bench)

    trace = sub.add_parser(
        "trace", help="summarize a trace file written by run --trace")
    trace.add_argument("tracefile",
                       help="a chrome-JSON or JSONL trace file")
    trace.add_argument("--format", choices=["text", "json"],
                       default="text", help="summary output format")
    trace.set_defaults(func=_cmd_trace)

    profile = sub.add_parser(
        "profile",
        help="performance forensics over a trace file: contention "
             "ranking, utilization timeline, critical path")
    profile.add_argument("tracefile",
                         help="a chrome-JSON or JSONL trace file "
                              "written by run --trace")
    profile.add_argument("--format", choices=["text", "json"],
                         default="text", help="report format")
    profile.add_argument("--folded", metavar="FILE", default=None,
                         help="also write folded stacks to FILE "
                              "(flamegraph.pl / speedscope input)")
    profile.add_argument("--rows", type=_positive_int, default=12,
                         metavar="N",
                         help="table rows per report section "
                              "(default 12)")
    profile.set_defaults(func=_cmd_profile)

    tune = sub.add_parser(
        "tune",
        help="recommend scheduling policy, spin budget and backend "
             "from an observed trace")
    tune.add_argument("tracefile",
                      help="a chrome-JSON or JSONL trace file written "
                           "by run --trace")
    tune.add_argument("--output", metavar="FILE", default=None,
                      help="write the recommendation document to FILE "
                           "(default: stdout)")
    tune.add_argument("--nproc", type=_positive_int, default=None,
                      help="force width of the traced run (default: "
                           "from the trace metadata or lane count)")
    tune.add_argument("--cpus", type=_positive_int, default=None,
                      help="host core count for the backend "
                           "recommendation (default: os.cpu_count)")
    tune.set_defaults(func=_cmd_tune)

    check = sub.add_parser(
        "check", help="statically analyze Force programs (no simulation)")
    check.add_argument("sources", nargs="+", help="Force source file(s)")
    check.add_argument("--format", choices=["text", "json"], default="text",
                       help="diagnostic output format")
    check.add_argument("--werror", action="store_true",
                       help="treat warnings as errors")
    check.add_argument("--explain", action="store_true",
                       help="attach witness evidence to race and "
                            "lock-order findings: both sites, their "
                            "barrier phase, and the locks each holds")
    check.add_argument("--facts", metavar="FILE", default=None,
                       help="write machine-readable analysis facts "
                            "(race-free DOALLs, privatizable variables, "
                            "Critical contention) to FILE as JSON")
    check.set_defaults(func=_cmd_check)

    chaos = sub.add_parser(
        "chaos",
        help="run the native chaos corpus under injected fault plans")
    chaos.add_argument("programs", nargs="*", metavar="PROGRAM",
                       help="corpus program(s) to target (default: the "
                            "whole corpus; see --list)")
    chaos.add_argument("--list", action="store_true",
                       help="list the corpus programs and exit")
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed; run i derives its fault plan "
                            "from seed+i, so sweeps replay exactly")
    chaos.add_argument("--runs", type=_positive_int, default=None,
                       help="number of seeded runs (default 20, or 1 "
                            "with an explicit --inject/--plan)")
    chaos.add_argument("--nproc", type=_positive_int, default=4,
                       help="force width for every run")
    chaos.add_argument("--deadline", type=_positive_float, default=10.0,
                       metavar="SECS",
                       help="join deadline per run (default 10)")
    chaos.add_argument("--construct-timeout", type=_positive_float,
                       default=2.0, metavar="SECS",
                       help="per-construct blocking deadline "
                            "(default 2)")
    chaos.add_argument("--barrier",
                       choices=["central-counter", "sense-reversing",
                                "dissemination", "tournament"],
                       default="central-counter",
                       help="barrier algorithm under test")
    chaos.add_argument("--backend", choices=["thread", "process"],
                       default="thread",
                       help="native backend for every run "
                            "(default thread)")
    chaos.add_argument("--max-faults", type=_positive_int, default=3,
                       metavar="N",
                       help="max faults per derived plan (default 3; "
                            "recorded so artifacts replay exactly)")
    chaos.add_argument("--fault-kinds", type=_fault_kinds,
                       default=None, metavar="KIND[,KIND...]",
                       help="restrict derived plans to these kinds "
                            "(e.g. 'die' for a recovery sweep)")
    chaos.add_argument("--supervise", action="store_true",
                       help="run under the recovery supervisor: "
                            "barrier-epoch checkpoints, retry with "
                            "backoff, elastic restart; fired faults "
                            "must classify 'recovered' with the final "
                            "state bit-identical to a fault-free run")
    chaos.add_argument("--min-nproc", type=_positive_int, default=None,
                       metavar="M",
                       help="supervised retries may degrade down to "
                            "M workers (default: no degradation)")
    chaos.add_argument("--retries", type=_nonnegative_int, default=3,
                       metavar="N",
                       help="supervised retry budget per run "
                            "(default 3)")
    chaos.add_argument("--checkpoints", metavar="DIR", default=None,
                       help="keep supervised runs' snapshot dirs under "
                            "DIR (default: per-run temp dirs, removed)")
    chaos.add_argument("--inject", action="append", default=[],
                       metavar="SPEC", type=_fault_spec,
                       help="explicit fault spec "
                            "KIND@SITE[/NAME][:key=value,...]; "
                            "repeatable, overrides seeded plans")
    chaos.add_argument("--plan", metavar="FILE", default=None,
                       help="JSON fault plan file (as written to the "
                            "artifacts dir), overrides seeded plans")
    chaos.add_argument("--artifacts", metavar="DIR", default=None,
                       help="write failing fault plans + traces here")
    chaos.add_argument("--format", choices=["text", "json"],
                       default="text", help="report format")
    chaos.set_defaults(func=_cmd_chaos)
    return parser


def _cmd_machines(args: argparse.Namespace) -> int:
    for machine in MACHINES.values():
        print(f"{machine.key:18s} {machine.describe()}")
    return 0


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_translate(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    source = _read(args.source)
    if args.check:
        from repro.analysis import check_source, count_errors, render_text
        diagnostics = check_source(source, filename=args.source)
        if diagnostics:
            print(render_text(diagnostics), file=sys.stderr)
        if count_errors(diagnostics):
            print("force: error: static checks failed; not translating "
                  "(rerun without --check to override)", file=sys.stderr)
            return 1
    result = force_translate(source, machine,
                             sched=args.sched, chunk=args.chunk)
    print(result.sed_output if args.stage == "sed" else result.fortran)
    if args.emit_python is not None:
        _emit_python(args.emit_python, result)
    return 0


def _emit_python(path: str, translation) -> int:
    """``force translate --emit-python``: write the codegen tier's
    generated source (with Fortran provenance comments) for every unit."""
    from repro.fortran.interp import Interpreter
    from repro.fortran.codegen import compile_all
    from repro.fortran.parser import parse_source

    program = parse_source(translation.fortran)
    interp = Interpreter(program)
    compile_all(interp)
    sources = interp.codegen_sources()
    chunks = []
    for name in sorted(sources):
        chunks.append(f"# ===== unit {name} =====\n" + sources[name])
    skipped = sorted(set(program.units) - set(sources))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# Generated by force translate --emit-python.\n"
                     "# Line comments map each statement back to the "
                     "expanded Fortran line.\n\n")
        handle.write("\n".join(chunks) or "# (no units compiled)\n")
        if skipped:
            handle.write("\n# units that fell back to slower tiers: "
                         + ", ".join(skipped) + "\n")
    print(f"codegen: {len(sources)} unit(s) written to {path}"
          + (f" ({len(skipped)} fell back)" if skipped else ""),
          file=sys.stderr)
    return 0


def _fresh_facts(facts: dict, path: str) -> dict | None:
    """Refuse a facts document proven against a different revision.

    Race verdicts gate numpy kernel lowering, so verdicts computed for
    other source must not be trusted.  Facts without a stamp (older
    generators) and checkouts without git are accepted as-is.
    """
    from repro._util.gitrev import git_revision
    stamped = facts.get("git_revision")
    current = git_revision(warn=False)
    if stamped is None or current is None or stamped == current:
        return facts
    print(f"force: warning: {path} was generated at revision {stamped} "
          f"but the checkout is at {current}; ignoring stale facts "
          "(rerun force check --facts to refresh)", file=sys.stderr)
    return None


def _dump_codegen(outdir: str, result, backend: str) -> None:
    """``force run --dump-codegen DIR``: one .py file per unit."""
    import os
    sources = getattr(result, "codegen_sources", {}) or {}
    if backend != "sim":
        print("force: note: --dump-codegen captures the simulator's "
              "generated source; nothing dumped for native backends",
              file=sys.stderr)
        return
    os.makedirs(outdir, exist_ok=True)
    for name, text in sorted(sources.items()):
        with open(os.path.join(outdir, f"{name}.py"), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
    if sources:
        print(f"codegen: {len(sources)} unit(s) dumped to {outdir}",
              file=sys.stderr)
    else:
        print("force: note: no generated source to dump (units fell "
              "back, or the run used --codegen closure/interp)",
              file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.backend == "sim":
        machine = get_machine(args.machine or "sequent-balance")
    else:
        if args.machine not in (None, "python-host"):
            raise ForceError(
                f"--backend {args.backend} executes python-host code; "
                f"it cannot run a {args.machine} expansion (drop "
                "--machine or pass python-host)")
        machine = get_machine("python-host")
    translation = force_translate(_read(args.source), machine,
                                  sched=args.sched, chunk=args.chunk)
    supervised = (args.retries > 0 or args.checkpoint is not None
                  or args.resume)
    if supervised and args.backend == "sim":
        raise ForceError(
            "supervision (--checkpoint/--resume/--retries/--min-nproc) "
            "drives the native backends; rerun with --backend thread "
            "or process")
    if args.min_nproc is not None and not supervised:
        raise ForceError("--min-nproc needs --retries >= 1 (elastic "
                         "restart happens on supervised retries)")
    facts = None
    if args.facts is not None:
        from repro.analysis.facts import load_facts
        try:
            facts = load_facts(args.facts)
        except ValueError as exc:
            raise ForceError(str(exc)) from None
        facts = _fresh_facts(facts, args.facts)
        if facts is not None and args.backend != "sim" and not supervised:
            print("force: note: --facts gates the simulator's compiled "
                  "layer; ignored for unsupervised native runs",
                  file=sys.stderr)
            facts = None
    if args.backend == "sim":
        result = force_run(translation, args.nproc,
                           trace=args.trace is not None,
                           deadline=args.deadline,
                           compiled=not args.no_jit,
                           facts=facts,
                           codegen=args.codegen)
    else:
        from repro.pipeline.native import native_run
        result = native_run(translation, args.nproc,
                            backend=args.backend,
                            stats=args.stats,
                            trace=args.trace is not None,
                            metrics=args.metrics is not None,
                            trace_capacity=args.trace_buffer,
                            deadline=args.deadline,
                            compiled=not args.no_jit,
                            codegen=args.codegen,
                            retries=args.retries,
                            min_nproc=args.min_nproc,
                            checkpoint_dir=args.checkpoint,
                            checkpoint_every=args.checkpoint_every,
                            resume=args.resume,
                            facts=facts if supervised else None)
    if args.dump_codegen is not None:
        _dump_codegen(args.dump_codegen, result, args.backend)
    trace_file = None
    native = args.backend != "sim"
    dropped = result.trace_dropped \
        if native and args.trace is not None else 0
    if dropped:
        print(f"force: warning: {dropped} trace event(s) dropped "
              "(ring buffer overflow); re-run with a larger "
              "--trace-buffer", file=sys.stderr)
    if args.trace is not None and args.trace != "-":
        from repro.trace.export import write_trace_file
        meta = {"source": args.source, "machine": machine.key,
                "nproc": args.nproc,
                "clock": "seconds" if native else "cycles"}
        if dropped:
            meta["dropped_events"] = dropped
        format_used = write_trace_file(
            args.trace, result.trace_events(),
            format=args.trace_format, meta=meta)
        trace_file = args.trace
        print(f"trace: {len(result.trace)} events written to "
              f"{args.trace} ({format_used})", file=sys.stderr)
    metrics_file = None
    if args.metrics is not None:
        metrics_file = _write_metrics(args, result, machine, native)
    if args.format == "json":
        import json
        document = {
            "source": args.source,
            "machine": machine.key,
            "backend": args.backend,
            "nproc": args.nproc,
            "output": result.output,
        }
        if native:
            document["wall_s"] = round(result.wall_s, 6)
            if result.supervision is not None:
                document["supervision"] = result.supervision
        else:
            document["makespan"] = result.makespan
            if facts is not None:
                document["kernel_eligible"] = result.kernel_eligible
                document["kernelized_doalls"] = result.kernelized_doalls
        if args.stats:
            document["stats"] = result.stats_dict()
        if trace_file is not None:
            document["trace_file"] = trace_file
        if args.trace is not None:
            document["dropped_events"] = dropped
        if metrics_file is not None:
            document["metrics_file"] = metrics_file
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for line in result.output:
            print(line)
        if native and result.supervision is not None \
                and result.supervision["retries"]:
            sup = result.supervision
            print(f"force: recovered after {sup['retries']} retr"
                  f"{'y' if sup['retries'] == 1 else 'ies'} "
                  f"({sup['recoveries']} resume(s), "
                  f"{sup['degraded_restarts']} degraded restart(s), "
                  f"final nproc {sup['final_nproc']})",
                  file=sys.stderr)
        if args.stats:
            from repro.runtime.stats import render_stats
            print(render_stats(result.stats_dict()), file=sys.stderr)
        if facts is not None and not native:
            count = sum(len(labels)
                        for labels in result.kernel_eligible.values())
            lowered = sum(len(labels)
                          for labels in result.kernelized_doalls.values())
            print(f"facts: {count} kernel-eligible DOALL loop(s) in "
                  f"{len(result.kernel_eligible)} unit(s); "
                  f"{lowered} lowered to numpy kernels",
                  file=sys.stderr)
    if args.trace == "-":
        if native:
            print("force: note: the text timeline renders simulator "
                  "traces; use --trace FILE with the native backends",
                  file=sys.stderr)
        else:
            from repro.sim.timeline import lock_contention_report, \
                render_timeline
            print(render_timeline(result.trace), file=sys.stderr)
            print("--- lock contention ---", file=sys.stderr)
            print(lock_contention_report(result.trace), file=sys.stderr)
    if args.utilization:
        if native:
            print("force: note: --utilization is a simulator report; "
                  "ignored for the native backends", file=sys.stderr)
        else:
            from repro.sim.timeline import render_utilization
            print(render_utilization(result.stats), file=sys.stderr)
    return 0


def _write_metrics(args: argparse.Namespace, result, machine,
                   native: bool) -> str:
    """Export the run's metrics registry to ``args.metrics``."""
    import json

    from repro.obsv.metrics import MetricsRegistry, registry_from_sim

    if native:
        registry = MetricsRegistry()
        if result.metrics_doc:
            registry.load_dict(result.metrics_doc)
    else:
        registry = registry_from_sim(
            machine.key, args.nproc, result.stats_dict(),
            events=result.trace_events()
            if args.trace is not None else None)
    path = args.metrics
    if path.endswith(".json"):
        text = json.dumps(registry.as_dict(), indent=2, sort_keys=True)
    else:
        text = registry.to_prometheus()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"metrics: registry written to {path}", file=sys.stderr)
    return path


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.bench import render_bench_report, run_bench_suite

    output = Path(args.output) if args.output else None
    report = run_bench_suite(quick=args.quick, output=output)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_bench_report(report))
    if report["fallbacks"]:
        print("force: error: compiled layer fell back to the "
              "tree-walker on corpus program(s): "
              f"{', '.join(sorted(report['fallbacks']))}",
              file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace.export import load_trace_document
    from repro.trace.summary import render_trace_summary, summarize_events
    events, meta = load_trace_document(args.tracefile)
    dropped = int(meta.get("dropped_events") or 0)
    summary = summarize_events(events)
    if args.format == "json":
        import json
        document = json.loads(
            render_trace_summary(summary, as_json=True))
        document["dropped_events"] = dropped
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        if dropped:
            print(f"force: warning: this trace lost {dropped} "
                  "event(s) to ring-buffer overflow; the summary is "
                  "a lower bound (re-run with a larger "
                  "--trace-buffer)", file=sys.stderr)
        print(render_trace_summary(summary, as_json=False))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obsv.analyze import analyze_trace
    from repro.obsv.profile import folded_stacks, render_profile
    from repro.trace.export import load_trace_document
    events, meta = load_trace_document(args.tracefile)
    if not events:
        raise ForceError(f"{args.tracefile}: no trace events")
    analysis = analyze_trace(events)
    analysis.meta.update(meta)
    if args.folded is not None:
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write(folded_stacks(analysis))
        print(f"profile: folded stacks written to {args.folded}",
              file=sys.stderr)
    if args.format == "json":
        import json
        print(json.dumps(analysis.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_profile(analysis, max_rows=args.rows))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import json

    from repro.obsv.tune import tune_from_events
    from repro.trace.export import load_trace_document
    events, meta = load_trace_document(args.tracefile)
    if not events:
        raise ForceError(f"{args.tracefile}: no trace events")
    nproc = args.nproc or meta.get("nproc")
    document = tune_from_events(events, nproc=nproc,
                                cpu_count=args.cpus,
                                source=meta.get("source")
                                or args.tracefile)
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"tune: recommendation written to {args.output}",
              file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import (
        analyze_source,
        count_errors,
        render_json,
        render_text,
    )
    per_file: list[tuple[str, list]] = []
    summaries: list[tuple[str, object]] = []
    for path in args.sources:
        diagnostics, summary = analyze_source(_read(path), filename=path)
        if args.werror:
            diagnostics = [d.promoted() for d in diagnostics]
        per_file.append((path, diagnostics))
        if summary is not None:
            summaries.append((path, summary))
    if args.format == "json":
        print(render_json(per_file))
    else:
        for path, diagnostics in per_file:
            if diagnostics:
                print(render_text(diagnostics, summary=False,
                                  explain=args.explain))
        total_errors = sum(count_errors(d) for _, d in per_file)
        total = sum(len(d) for _, d in per_file)
        print(f"{len(per_file)} file(s) checked: {total_errors} error(s), "
              f"{total - total_errors} warning(s)")
    if args.facts is not None:
        from repro.analysis.facts import write_facts
        write_facts(args.facts, summaries)
        print(f"facts: {len(summaries)} file(s) written to {args.facts}",
              file=sys.stderr)
    return 1 if any(count_errors(d) for _, d in per_file) else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults.chaos import (
        ChaosReport,
        _run_config,
        chaos_sweep,
        render_report,
        run_one,
        run_supervised,
        write_failure_artifacts,
    )
    from repro.faults.corpus import CORPUS
    from repro.faults.plan import FaultPlan

    if args.list:
        for entry in CORPUS.values():
            print(f"{entry.name:14s} exercises: "
                  f"{', '.join(entry.exercises)}")
        return EXIT_OK
    names = args.programs or list(CORPUS)
    unknown = [name for name in names if name not in CORPUS]
    if unknown:
        raise ForceError(
            f"unknown chaos program(s) {', '.join(unknown)}; corpus: "
            f"{', '.join(CORPUS)} (see 'force chaos --list')")
    if args.inject and args.plan:
        raise ForceError("--inject and --plan are mutually exclusive")
    explicit = None
    if args.plan:
        explicit = FaultPlan.from_json(_read(args.plan))
    elif args.inject:
        explicit = FaultPlan(seed=args.seed, faults=list(args.inject))

    if explicit is not None:
        # One fixed plan, run against each selected program.
        runs = args.runs or 1
        outcomes = []
        config = _run_config(
            nproc=args.nproc, deadline=args.deadline,
            construct_timeout=args.construct_timeout,
            barrier_algorithm=args.barrier, backend=args.backend,
            supervised=args.supervise, min_nproc=args.min_nproc,
            retries=args.retries if args.supervise else None)
        for index in range(runs):
            for name in names:
                if args.supervise:
                    checkpoint_dir = None
                    if args.checkpoints:
                        import os as _os
                        checkpoint_dir = _os.path.join(
                            args.checkpoints,
                            f"{name}-seed{explicit.seed}")
                    outcome, force = run_supervised(
                        CORPUS[name], explicit, nproc=args.nproc,
                        min_nproc=args.min_nproc,
                        deadline=args.deadline,
                        construct_timeout=args.construct_timeout,
                        barrier_algorithm=args.barrier,
                        backend=args.backend,
                        checkpoint_dir=checkpoint_dir,
                        config=config)
                else:
                    outcome, force = run_one(
                        CORPUS[name], explicit, nproc=args.nproc,
                        deadline=args.deadline,
                        construct_timeout=args.construct_timeout,
                        barrier_algorithm=args.barrier,
                        backend=args.backend, config=config)
                outcomes.append(outcome)
                if outcome.violates_invariant and args.artifacts:
                    write_failure_artifacts(args.artifacts, outcome,
                                            force)
        report = ChaosReport(seed=explicit.seed, runs=len(outcomes),
                             nproc=args.nproc, outcomes=outcomes,
                             deadline=args.deadline,
                             construct_timeout=args.construct_timeout,
                             barrier_algorithm=args.barrier,
                             backend=args.backend,
                             supervised=args.supervise,
                             min_nproc=args.min_nproc)
    else:
        report = chaos_sweep(
            seed=args.seed, runs=args.runs or 20, programs=names,
            nproc=args.nproc, deadline=args.deadline,
            construct_timeout=args.construct_timeout,
            barrier_algorithm=args.barrier,
            artifacts_dir=args.artifacts,
            backend=args.backend, max_faults=args.max_faults,
            fault_kinds=args.fault_kinds, supervise=args.supervise,
            min_nproc=args.min_nproc, retries=args.retries,
            checkpoint_root=args.checkpoints)
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return EXIT_ERROR if report.violations else EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors (after printing the
        # `force: error: …` message) and 0 for --help; keep main()
        # returning an int so it stays callable in-process.
        return exc.code if isinstance(exc.code, int) else EXIT_USAGE
    try:
        return args.func(args)
    except (SimDeadlockError, ForceDeadlockError, ForceWorkerDied) as exc:
        # Structured no-progress verdicts get their own exit code so
        # scripts can tell "the program is wrong" from "it hung".
        print(f"force: deadlock: {exc}", file=sys.stderr)
        return EXIT_DEADLOCK
    except ForceError as exc:
        print(f"force: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as exc:
        print(f"force: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
