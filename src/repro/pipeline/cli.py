"""Command-line interface: ``force translate|run|check|trace|machines``.

Examples::

    force machines
    force translate program.frc --machine sequent-balance
    force translate program.frc --check          # gate on diagnostics
    force run program.frc --machine hep --nproc 8 --stats
    force run program.frc --stats --format json  # machine-readable
    force run program.frc --trace out.json       # Chrome trace file
    force run program.frc --trace out.jsonl --trace-format jsonl
    force run program.frc --trace                # text timeline, stderr
    force trace out.json                         # per-construct summary
    force check program.frc                      # static analysis only
    force check program.frc --format json --werror

IO contract: program output goes to stdout; diagnostics, timelines and
reports go to stderr.  With ``--format json`` a single JSON document
replaces stdout's plain lines (program output under ``"output"``,
statistics under ``"stats"``), giving ``force run`` the same
machine-readable surface as ``force check --format json``.

Exit status: 0 on success, 1 on pipeline/check errors, 2 on usage
errors (bad flags, unknown machine, non-positive ``--nproc``).
"""

from __future__ import annotations

import argparse
import difflib
import sys

from repro._util.errors import ForceError
from repro.machines import get_machine, MACHINES
from repro.pipeline.compile import force_translate
from repro.pipeline.run import force_run


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive process count (got {value})")
    return value


def _machine_key(text: str) -> str:
    if text in MACHINES:
        return text
    close = difflib.get_close_matches(text, MACHINES, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    raise argparse.ArgumentTypeError(
        f"unknown machine {text!r}{hint}; run 'force machines' to list "
        "the supported models")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="force",
        description="The Force parallel language — reproduction pipeline")
    sub = parser.add_subparsers(dest="command", required=True)

    machines = sub.add_parser("machines",
                              help="list the supported machine models")
    machines.set_defaults(func=_cmd_machines)

    translate = sub.add_parser("translate",
                               help="preprocess a Force program to Fortran")
    translate.add_argument("source", help="Force source file")
    translate.add_argument("--machine", type=_machine_key,
                           default="sequent-balance")
    translate.add_argument("--stage", choices=["sed", "fortran"],
                           default="fortran",
                           help="which intermediate form to print")
    translate.add_argument("--check", action="store_true",
                           help="run the static analyzer first and refuse "
                                "to translate a program with errors")
    translate.set_defaults(func=_cmd_translate)

    run = sub.add_parser("run", help="simulate a Force program")
    run.add_argument("source", help="Force source file")
    run.add_argument("--machine", type=_machine_key,
                     default="sequent-balance")
    run.add_argument("--nproc", type=_positive_int, default=4,
                     help="number of Force processes (positive)")
    run.add_argument("--stats", action="store_true",
                     help="print simulation statistics")
    run.add_argument("--trace", nargs="?", const="-", default=None,
                     metavar="FILE",
                     help="collect an event trace; with FILE write it "
                          "there (format from --trace-format or the "
                          "extension), bare --trace prints the text "
                          "timeline to stderr")
    run.add_argument("--trace-format", choices=["chrome", "jsonl", "text"],
                     default=None,
                     help="trace file format (default: chrome, or by "
                          "FILE extension: .jsonl, .txt)")
    run.add_argument("--format", choices=["text", "json"], default="text",
                     help="stdout format: plain program output, or one "
                          "JSON document with output and stats")
    run.add_argument("--utilization", action="store_true",
                     help="print per-process utilization bars")
    run.set_defaults(func=_cmd_run)

    trace = sub.add_parser(
        "trace", help="summarize a trace file written by run --trace")
    trace.add_argument("tracefile",
                       help="a chrome-JSON or JSONL trace file")
    trace.add_argument("--format", choices=["text", "json"],
                       default="text", help="summary output format")
    trace.set_defaults(func=_cmd_trace)

    check = sub.add_parser(
        "check", help="statically analyze Force programs (no simulation)")
    check.add_argument("sources", nargs="+", help="Force source file(s)")
    check.add_argument("--format", choices=["text", "json"], default="text",
                       help="diagnostic output format")
    check.add_argument("--werror", action="store_true",
                       help="treat warnings as errors")
    check.set_defaults(func=_cmd_check)
    return parser


def _cmd_machines(args: argparse.Namespace) -> int:
    for machine in MACHINES.values():
        print(f"{machine.key:18s} {machine.describe()}")
    return 0


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_translate(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    source = _read(args.source)
    if args.check:
        from repro.analysis import check_source, count_errors, render_text
        diagnostics = check_source(source, filename=args.source)
        if diagnostics:
            print(render_text(diagnostics), file=sys.stderr)
        if count_errors(diagnostics):
            print("force: error: static checks failed; not translating "
                  "(rerun without --check to override)", file=sys.stderr)
            return 1
    result = force_translate(source, machine)
    print(result.sed_output if args.stage == "sed" else result.fortran)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    translation = force_translate(_read(args.source), machine)
    result = force_run(translation, args.nproc,
                       trace=args.trace is not None)
    trace_file = None
    if args.trace is not None and args.trace != "-":
        from repro.trace.export import write_trace_file
        format_used = write_trace_file(
            args.trace, result.trace_events(),
            format=args.trace_format,
            meta={"source": args.source, "machine": machine.key,
                  "nproc": args.nproc, "clock": "cycles"})
        trace_file = args.trace
        print(f"trace: {len(result.trace)} events written to "
              f"{args.trace} ({format_used})", file=sys.stderr)
    if args.format == "json":
        import json
        document = {
            "source": args.source,
            "machine": machine.key,
            "nproc": args.nproc,
            "makespan": result.makespan,
            "output": result.output,
        }
        if args.stats:
            document["stats"] = result.stats_dict()
        if trace_file is not None:
            document["trace_file"] = trace_file
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for line in result.output:
            print(line)
        if args.stats:
            from repro.runtime.stats import render_stats
            print(render_stats(result.stats_dict()), file=sys.stderr)
    if args.trace == "-":
        from repro.sim.timeline import lock_contention_report, \
            render_timeline
        print(render_timeline(result.trace), file=sys.stderr)
        print("--- lock contention ---", file=sys.stderr)
        print(lock_contention_report(result.trace), file=sys.stderr)
    if args.utilization:
        from repro.sim.timeline import render_utilization
        print(render_utilization(result.stats), file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace.export import load_trace_file
    from repro.trace.summary import render_trace_summary, summarize_events
    events = load_trace_file(args.tracefile)
    summary = summarize_events(events)
    print(render_trace_summary(summary, as_json=args.format == "json"))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import (
        check_source,
        count_errors,
        render_json,
        render_text,
    )
    per_file: list[tuple[str, list]] = []
    for path in args.sources:
        diagnostics = check_source(_read(path), filename=path)
        if args.werror:
            diagnostics = [d.promoted() for d in diagnostics]
        per_file.append((path, diagnostics))
    if args.format == "json":
        print(render_json(per_file))
    else:
        for path, diagnostics in per_file:
            if diagnostics:
                print(render_text(diagnostics, summary=False))
        total_errors = sum(count_errors(d) for _, d in per_file)
        total = sum(len(d) for _, d in per_file)
        print(f"{len(per_file)} file(s) checked: {total_errors} error(s), "
              f"{total - total_errors} warning(s)")
    return 1 if any(count_errors(d) for _, d in per_file) else 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors (after printing the
        # `force: error: …` message) and 0 for --help; keep main()
        # returning an int so it stays callable in-process.
        return exc.code if isinstance(exc.code, int) else 2
    try:
        return args.func(args)
    except ForceError as exc:
        print(f"force: error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"force: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
