"""Execute translated Force programs on the simulated machines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import ForceError
from repro.fortran.interp import (
    ArgRef,
    ExternalCallHandler,
    Frame,
    Interpreter,
    StopSignal,
    drain,
)
from repro.fortran.parser import parse_source
from repro.machines.memory import MemoryLayout, SharedRegionPlan, VariableSpec
from repro.machines.model import MachineModel, SharingBinding
from repro.pipeline.compile import TranslationResult, force_translate
from repro.sim.events import HaltSim
from repro.sim.force_runtime import ForceRuntime, SharingRegistry
from repro.sim.scheduler import Scheduler, SimStats


@dataclass
class RunResult:
    """Outcome of one simulated Force execution."""

    machine: MachineModel
    nproc: int
    stats: SimStats
    #: program output lines ordered by (simulated time, process id)
    output: list[str]
    #: raw (time, process-name, line) triples
    output_records: list[tuple[int, str, str]]
    translation: TranslationResult
    registry: SharingRegistry
    #: linker commands produced by the Sequent two-run protocol
    linker_commands: list[str] = field(default_factory=list)
    memory_plan: SharedRegionPlan | None = None
    #: (time, process, event) triples when run with ``trace=True``
    trace: list[tuple[int, str, str]] = field(default_factory=list)
    #: program units the compiled execution layer could not handle
    #: (unit name → reason); empty when everything ran compiled
    compile_fallbacks: dict[str, str] = field(default_factory=dict)
    #: unit name → labels of DO loops the analysis facts proved
    #: race-free (kernel-lowering candidates); empty without ``facts``
    kernel_eligible: dict[str, list[int]] = field(default_factory=dict)
    #: unit name → labels of DOALLs the source-codegen tier actually
    #: lowered to numpy slice kernels (subset of ``kernel_eligible``)
    kernelized_doalls: dict[str, list[int]] = field(default_factory=dict)
    #: unit name → generated Python source (source tier only), for
    #: ``force run --dump-codegen``
    codegen_sources: dict[str, str] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        return self.stats.makespan

    def stats_dict(self) -> dict:
        """The run's statistics in the shared report format.

        Same shape as :meth:`repro.runtime.force.Force.stats` so
        compiled (simulated) and native programs render through one
        :func:`repro.runtime.stats.render_stats` path.
        """
        return {"sim": sim_stats_dict(self.machine, self.nproc,
                                      self.stats)}

    def trace_events(self):
        """The run's trace in the unified event model.

        Adapts the scheduler's ``(time, process, text)`` triples to
        :class:`repro.trace.events.TraceEvent` so simulated runs share
        the native runtime's exporters (Chrome trace JSON, JSONL,
        text) and the ``force trace`` summaries.
        """
        from repro.trace.adapter import events_from_sim_trace
        return events_from_sim_trace(self.trace)


def sim_stats_dict(machine: MachineModel, nproc: int,
                   stats: SimStats) -> dict:
    """Flatten simulator statistics for the shared stats renderer."""
    return {
        "machine": machine.name,
        "processes": nproc,
        "makespan": stats.makespan,
        "utilization": stats.utilization,
        "lock_acquisitions": stats.lock_acquisitions,
        "contended_acquisitions": stats.contended_acquisitions,
        "spin_cycles": stats.spin_cycles,
        "context_switches": stats.context_switches,
    }


class _StartupCollector(ExternalCallHandler):
    """Run 1 of the Sequent protocol: execute only the startup routine,
    collecting FRCSHB registrations as linker commands."""

    def __init__(self) -> None:
        self.blocks: list[str] = []

    def is_external(self, name: str) -> bool:
        return name in ("FRCSHB", "FRCPAG")

    def call(self, name: str, args: list[ArgRef], frame: Frame):
        if name == "FRCSHB":
            self.blocks.append(str(args[0].get()).upper())
        yield from ()


def force_run(translation: TranslationResult, nproc: int, *,
              max_events: int = 20_000_000,
              trace: bool = False,
              processors: int | None = None,
              unlimited_processors: bool = False,
              deadline: float | None = None,
              compiled: bool = True,
              facts: dict | None = None,
              codegen: str | None = None) -> RunResult:
    """Simulate a translated Force program with ``nproc`` processes.

    By default the simulation honours the machine's processor count
    (run-to-block time-sharing beyond it).  ``processors`` overrides
    the capacity; ``unlimited_processors=True`` gives every process an
    ideal CPU (algorithm-measurement mode).  ``deadline`` bounds the
    run in wall-clock seconds — exceeding it raises
    :class:`~repro._util.errors.SimDeadlockError` instead of churning
    forever on a livelocked program.  ``compiled=False`` forces the
    tree-walking interpreter (the ``--no-jit`` differential oracle).
    ``facts`` is a ``force check --facts`` document; the compiled layer
    uses it to mark statically race-free DOALLs as kernel candidates
    (reported in :attr:`RunResult.kernel_eligible`) and — on the
    source-codegen tier — to lower them to numpy slice kernels
    (reported in :attr:`RunResult.kernelized_doalls`).  ``codegen``
    picks the execution tier (``"source"``/``"closure"``/``"interp"``,
    default ``"source"``).
    """
    machine = translation.machine
    if nproc <= 0:
        raise ForceError("nproc must be positive")
    if processors is None and not unlimited_processors:
        processors = machine.processors
    program = parse_source(translation.fortran)
    registry = SharingRegistry()

    # Compile-time binding: directives carry the shared blocks.
    for block in translation.shared_directives:
        registry.register(block)

    # Link-time binding (Sequent): run the startup routine first, pipe
    # the "linker commands" into the registry, then run for real.
    linker_commands: list[str] = []
    if machine.sharing_binding is SharingBinding.LINK_TIME:
        collector = _StartupCollector()
        startup_interp = Interpreter(program, external=collector,
                                     compiled=compiled, codegen=codegen)
        if "ZZSTRT" in program.units:
            drain(startup_interp.run_unit(program.unit("ZZSTRT"), []))
        for block in collector.blocks:
            linker_commands.append(f"-Z SHARED={block}")
            registry.register(block)

    scheduler = Scheduler(machine, max_events=max_events, trace=trace,
                          processors=processors, deadline=deadline)
    runtime = ForceRuntime(scheduler, machine, nproc, program,
                           registry=registry)
    records: list[tuple[int, str, str]] = []

    def on_output(line: str, frame: Frame) -> None:
        process = frame.process
        when = process.clock if process is not None else 0
        who = process.name if process is not None else "driver"
        records.append((when, who, line))

    interp = Interpreter(program, external=runtime,
                         commons=runtime.provider, on_output=on_output,
                         compiled=compiled, facts=facts, codegen=codegen)
    runtime.interpreter = interp

    driver_holder: list = []

    def driver_body():
        try:
            yield from interp.run_unit(program.unit("FORCED"), [],
                                       process=driver_holder[0])
        except StopSignal as stop:
            yield HaltSim(stop.message)

    driver = scheduler.spawn(driver_body(), name="driver")
    driver_holder.append(driver)
    stats = scheduler.run()

    ordered = sorted(range(len(records)),
                     key=lambda i: (records[i][0], records[i][1], i))
    output = [records[i][2] for i in ordered]
    memory_plan = _build_memory_plan(runtime) \
        if runtime.page_plan_requested else None
    return RunResult(
        machine=machine,
        nproc=nproc,
        stats=stats,
        output=output,
        output_records=[records[i] for i in ordered],
        translation=translation,
        registry=registry,
        linker_commands=linker_commands,
        memory_plan=memory_plan,
        trace=scheduler.trace,
        compile_fallbacks=interp.compile_fallbacks,
        kernel_eligible=interp.kernel_eligible,
        kernelized_doalls=interp.codegen_kernelized,
        codegen_sources=interp.codegen_sources(),
    )


def force_compile_and_run(source: str, machine: MachineModel, nproc: int,
                          *, sched: str | None = None,
                          chunk: int | None = None, **kwargs) -> RunResult:
    """Convenience: translate then simulate in one call."""
    translation = force_translate(source, machine, sched=sched, chunk=chunk)
    return force_run(translation, nproc, **kwargs)


def _build_memory_plan(runtime: ForceRuntime) -> SharedRegionPlan | None:
    """Model the shared-page address arithmetic from observed layouts.

    The real Encore/Alliant implementations compute these addresses in
    the startup routine; we reconstruct the same layout from the COMMON
    blocks the run actually touched, then check the machine invariants.
    """
    provider = runtime.provider
    shared_specs: list[VariableSpec] = []
    private_specs: list[VariableSpec] = []
    for block, layout in sorted(provider.layouts.items()):
        target = shared_specs if runtime.registry.is_shared(block) \
            else private_specs
        for name, ftype, bounds in layout:
            elements = 1
            if bounds:
                for lo, hi in bounds:
                    elements *= hi - lo + 1
            target.append(VariableSpec(f"{block}.{name}",
                                       ftype.value, elements))
    if not shared_specs:
        return None
    plan = MemoryLayout(runtime.machine).plan(shared_specs, private_specs)
    plan.check()
    return plan
