"""Native execution: run translated Force programs for real.

``force run --backend thread|process`` executes the generated Fortran
on the host machine instead of the discrete-event simulator.  The
program is translated for the **python-host** port (the seventh
machine in the catalog — the one this reproduction actually runs on),
then every Force member becomes a worker of the runtime layer's
:class:`~repro.runtime.force.Force`: an OS thread (``thread``) or a
forked process over POSIX shared memory (``process``).

The python-host port generates software-lock code: barriers, critical
sections and selfscheduled loops are *pure Fortran* over
``SPINLK``/``SPINUN`` calls on LOGICAL variables in shared COMMON
(§4.2's machine-independent expansions), so the native runtime only
has to supply the machine-dependent externals:

* ``SPINLK``/``SPINUN``/``FRCLKI`` — blocking locks whose state *is*
  the LOGICAL lock variable (true = locked), serialised through the
  backend's condition bus;
* ``FRCAIN``/``FRCVOD``/``FRCISF`` — the two-lock full/empty protocol
  bookkeeping;
* ``FRCSHB``/``FRCPAG`` — run-time sharing registration (the shared
  block set is also recovered statically, so every forked worker knows
  it before touching COMMON);
* ``FRKALL``/``FRCJON`` — the fork/join driver protocol: worker 1
  doubles as the driver (exactly the UNIX-fork discipline where the
  original process becomes member 1), releases the force at
  ``FRKALL``, runs the main unit itself, and joins at ``FRCJON``;
* ``FRCQIN``/``FRCQPT``/``FRCQGT`` — Askfor pools over the runtime's
  :class:`~repro.runtime.askfor.AskforMonitor`;
* ``FRCTIM`` — real elapsed microseconds.

Sharing model: COMMON blocks named by ``FRCSHB`` registrations (or
``C$FORCE SHARED`` directives) are shared between members — plain
storage for the thread backend, views over the process backend's
shared-memory arena otherwise — and every other block is private per
member.  Program output is collected per member in print order and
merged by (member, sequence), which is deterministic; the simulator
orders by virtual time instead, so interleavings may differ between
``--backend sim`` and the native backends even when each member's own
output is identical.
"""

from __future__ import annotations

import itertools
import os
import re
import shutil
import tempfile
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

import numpy as np

from repro._util.errors import ForceError
from repro.fortran.interp import (
    ArrayRef,
    Cell,
    CellRef,
    CommonProvider,
    ElementRef,
    ExternalCallHandler,
    Frame,
    Interpreter,
    StopSignal,
    ValueRef,
    drain,
)
from repro.fortran.parser import parse_source
from repro.fortran.values import FArray, FType
from repro.pipeline.compile import TranslationResult
from repro.runtime.checkpoint import CheckpointPolicy
from repro.runtime.force import Force
from repro.runtime.supervisor import RetryPolicy, SupervisedRun
from repro.trace.adapter import _categorize_lock

_FRCSHB = re.compile(r'CALL\s+FRCSHB\("(\w+)"\)')
_DIRECTIVE = re.compile(r"^C\$FORCE\s+SHARED\s+(\w+)\s*$", re.MULTILINE)
_SPAWN = re.compile(r'CALL\s+FRKALL\("(\w+)"\)')

NATIVE_BACKENDS = ("thread", "process")


def shared_block_names(fortran: str) -> frozenset[str]:
    """COMMON blocks the generated code marks shared.

    Run-time binding machines register through ``CALL FRCSHB("...")``
    in the startup unit; compile-time machines emit ``C$FORCE SHARED``
    directives.  Scanning the text recovers the set statically so a
    forked worker knows it before its first COMMON access (the actual
    ``FRCSHB`` calls still execute, as registration order evidence).
    """
    return frozenset(_FRCSHB.findall(fortran)) | \
        frozenset(_DIRECTIVE.findall(fortran))


def _me_of_current_thread() -> int:
    name = threading.current_thread().name
    if name.startswith("force-"):
        try:
            return int(name[6:])
        except ValueError:
            pass
    return 0


# ----------------------------------------------------------------------
# shared COMMON storage
# ----------------------------------------------------------------------
class _SharedCell(Cell):
    """A scalar COMMON member stored in one shared-arena slot.

    Reads and writes go straight through the numpy view, so every
    forked member observes each assignment immediately — the arena is
    the storage, this object is just the per-process handle.
    """

    __slots__ = ("_view",)

    def __init__(self, ftype: FType, view: np.ndarray) -> None:
        # Deliberately not Cell.__init__: assigning the zero value here
        # would clobber a slot another member already wrote.
        self._view = view
        self.ftype = ftype
        self.full = False

    @property
    def value(self):
        raw = self._view[0]
        if self.ftype is FType.LOGICAL:
            return bool(raw)
        if self.ftype is FType.INTEGER:
            return int(raw)
        return float(raw)

    @value.setter
    def value(self, new) -> None:
        self._view[0] = new


class _ThreadCommons(CommonProvider):
    """Thread backend: shared blocks are one storage sequence; private
    blocks get a per-member sequence (keyed by the worker's me)."""

    def __init__(self, shared_names: frozenset[str]) -> None:
        super().__init__()
        self._shared_names = shared_names
        self._guard = threading.Lock()

    def get_block(self, name, layout, frame):
        with self._guard:
            if name in self._shared_names:
                return super().get_block(name, layout, frame)
            return super().get_block(
                f"{name}%{_me_of_current_thread()}", layout, frame)


class _ProcessCommons(CommonProvider):
    """Process backend: shared blocks live in the Force's shared-memory
    arena (named by block and member, so every member maps the same
    slots); private blocks are ordinary per-process storage."""

    def __init__(self, force: Force, shared_names: frozenset[str]) -> None:
        super().__init__()
        self._force = force
        self._shared_names = shared_names

    def get_block(self, name, layout, frame):
        if name not in self._shared_names:
            return super().get_block(name, layout, frame)
        block = self._blocks.get(name)
        if block is None:
            block = [self._shared_slot(name, index, member, ftype, bounds)
                     for index, (member, ftype, bounds) in enumerate(layout)]
            self._blocks[name] = block
        elif len(block) != len(layout):
            raise ForceError(
                f"COMMON /{name}/ declared with {len(layout)} members, "
                f"previously {len(block)}")
        return [self._adapt_slot(slot, ftype, bounds, name)
                for slot, (_n, ftype, bounds) in zip(block, layout)]

    def _shared_slot(self, block: str, index: int, member: str,
                     ftype: FType, bounds):
        if ftype is FType.CHARACTER:
            raise ForceError(
                f"CHARACTER member {member} of shared COMMON /{block}/ "
                "cannot live in process-backend shared memory; make the "
                "block private or use the thread backend")
        arena_name = f"cm:{block}:{index}:{member}"
        if bounds is None:
            view = self._force.shared_array(arena_name, (1,),
                                            ftype.numpy_dtype)
            return _SharedCell(ftype, view)
        lower = tuple(lo for lo, _ in bounds)
        shape = tuple(hi - lo + 1 for lo, hi in bounds)
        count = int(np.prod(shape)) if shape else 1
        flat = self._force.shared_array(arena_name, (count,),
                                        ftype.numpy_dtype)
        return FArray(ftype, lower, shape,
                      flat.reshape(shape, order="F"))


# ----------------------------------------------------------------------
# blocking lock engines over the backend's wait machinery
# ----------------------------------------------------------------------
class _ThreadSync:
    """Locks for the thread backend: one condition, cancel-aware."""

    def __init__(self, force: Force) -> None:
        self.force = force
        self.mutex = threading.Condition()
        self._once: set = set()
        force._cancel.register(self.mutex)

    def acquire(self, ref, label: str) -> None:
        with self.mutex:
            self.force._cancel.wait_for(
                self.mutex, lambda: not bool(ref.get()),
                what=f"native lock {label}")
            ref.set(True)

    def release(self, ref) -> None:
        with self.mutex:
            ref.set(False)
            self.mutex.notify_all()

    def set_state(self, ref, locked: bool) -> None:
        with self.mutex:
            ref.set(bool(locked))
            self.mutex.notify_all()

    def storage_key(self, ref) -> int:
        if isinstance(ref, CellRef):
            return id(ref.cell)
        if isinstance(ref, (ElementRef, ArrayRef)):
            return ref.farray.storage_id()
        return 0

    def once(self, key) -> bool:
        """True exactly once per key across the whole run."""
        with self.mutex:
            if key in self._once:
                return False
            self._once.add(key)
            return True


class _ProcessSync:
    """Locks for the process backend: the Force's shared bus, with
    lock state living in the arena-backed LOGICAL cells themselves."""

    def __init__(self, force) -> None:
        self.force = force
        self._base = force._arena.view(0, 1).__array_interface__["data"][0]

    @property
    def mutex(self):
        return self.force._bus

    def acquire(self, ref, label: str) -> None:
        with self.force._bus:
            self.force._await(lambda: not bool(ref.get()),
                              f"native lock {label}")
            ref.set(True)

    def release(self, ref) -> None:
        with self.force._bus:
            ref.set(False)
            self.force._bus.notify_all()

    def set_state(self, ref, locked: bool) -> None:
        with self.force._bus:
            ref.set(bool(locked))
            self.force._bus.notify_all()

    def storage_key(self, ref) -> int:
        """Arena offset of the referenced storage — identical in every
        member, unlike the per-process mapping address."""
        if isinstance(ref, CellRef):
            cell = ref.cell
            if isinstance(cell, _SharedCell):
                return cell._view.__array_interface__["data"][0] - self._base
            return id(cell)
        if isinstance(ref, (ElementRef, ArrayRef)):
            return ref.farray.storage_id() - self._base
        return 0

    def once(self, key) -> bool:
        flag = self.force.shared_array(f"zzonce:{key}", (1,), np.int64)
        with self.force._bus:
            if int(flag[0]):
                return False
            flag[0] = 1
            return True


# ----------------------------------------------------------------------
# the runtime-library externals
# ----------------------------------------------------------------------
_OTHER_MACHINE_LOCKS = frozenset({
    "SYSLCK", "SYSUNL", "CMBLCK", "CMBUNL", "HEPLKW", "HEPLKS",
    "HEPPRD", "HEPCON", "HEPCPY", "HEPVOD", "HEPVIN", "HEPSPN",
})


class _NativeRuntime(ExternalCallHandler):
    """The Force runtime library, executed for real.

    One instance is shared by every thread-backend worker (all state is
    engine-serialised); the process backend builds one per forked
    member over the same arena.
    """

    _SUBROUTINES = frozenset({
        "SPINLK", "SPINUN", "FRCLKI", "FRCVOD", "FRCAIN",
        "FRKALL", "FRCJON", "FRCSHB", "FRCPAG",
        "FRCQIN", "FRCQPT", "FRCQGT", "ZZSTRT",
    }) | _OTHER_MACHINE_LOCKS
    _FUNCTIONS = frozenset({"FRCISF", "FRCTIM"})

    def __init__(self, force, sync, program, main_name: str) -> None:
        self.force = force
        self.sync = sync
        self.program = program
        self.main_name = main_name
        self.registrations: list[str] = []
        self.page_plan_requested = False
        self.spawned = False
        self.joined = False
        #: async variable storage key -> (E lock ref, F lock ref)
        self._async_pairs: dict[int, tuple] = {}
        #: storage key -> open hold (kind, label, tid, t0, waited, contended)
        self._lock_holds: dict[int, tuple] = {}
        self._started = perf_counter()

    # -- dispatch ------------------------------------------------------
    def is_external(self, name: str) -> bool:
        return name in self._SUBROUTINES and \
            not (name == "ZZSTRT" and "ZZSTRT" in self.program.units)

    def is_external_function(self, name: str) -> bool:
        return name in self._FUNCTIONS

    def call(self, name: str, args: list, frame: Frame):
        if name in _OTHER_MACHINE_LOCKS:
            raise ForceError(
                f"lock primitive {name} is not available on the native "
                "backends (python-host generates SPINLK/SPINUN) — was "
                "this program expanded for a different machine?")
        if name == "SPINLK":
            self._one_lock_arg(name, args)
            self._locked(args[0], frame)
        elif name == "SPINUN":
            self._one_lock_arg(name, args)
            self._unlocked(args[0], frame)
        elif name == "FRCLKI":
            if len(args) != 2:
                raise ForceError("FRCLKI expects (lockvar, state)")
            self.sync.set_state(args[0], bool(args[1].get()))
        elif name == "FRCVOD":
            if len(args) != 2:
                raise ForceError("FRCVOD expects (elock, flock)")
            self._void(args[0], args[1])
        elif name == "FRCAIN":
            self._register_async(args)
        elif name == "FRKALL":
            yield from self._spawn(args, frame)
        elif name == "FRCJON":
            self.joined = True
            self.force.barrier()
        elif name == "FRCSHB":
            self.registrations.append(str(args[0].get()))
        elif name == "FRCPAG":
            self.page_plan_requested = True
        elif name == "ZZSTRT":
            pass        # startup unit absent: nothing to run
        elif name == "FRCQIN":
            self.force.askfor(str(args[0].get()))
        elif name == "FRCQPT":
            self.force.askfor(str(args[0].get())).put(args[1].get())
        elif name == "FRCQGT":
            got, item = self.force.askfor(str(args[0].get())).get()
            args[2].set(bool(got))
            if got:
                args[1].set(item)
        else:   # pragma: no cover - guarded by is_external
            raise ForceError(f"no native runtime subroutine {name}")
        return
        yield   # noqa: unreachable — makes this a generator function

    def call_function(self, name: str, args: list, frame: Frame):
        if name == "FRCISF":
            return self._isfull(args)
        if name == "FRCTIM":
            return int((perf_counter() - self._started) * 1e6)
        raise ForceError(f"no native runtime function {name}")

    # -- fork/join -----------------------------------------------------
    def _spawn(self, args, frame: Frame):
        """FRKALL: worker 1 is the driver — release the parked members
        (they run the main unit as soon as the startup writes land),
        then run the main unit as member 1 in the same interpreter."""
        name = str(args[0].get())
        unit = self.program.units.get(name)
        if unit is None:
            raise ForceError(f"FRKALL target {name} is not a program unit")
        self.spawned = True
        self.force.barrier()
        yield from frame.interpreter.run_unit(
            unit, [ValueRef(1), ValueRef(self.force.nproc)],
            depth=frame.depth + 1)

    # -- two-lock full/empty protocol ----------------------------------
    def _register_async(self, args) -> None:
        if len(args) != 3:
            raise ForceError("FRCAIN expects (var, elock, flock)")
        var, e_ref, f_ref = args
        with self.sync.mutex:
            self._async_pairs[self.sync.storage_key(var)] = (e_ref, f_ref)
        # First registration across the whole force voids the variable:
        # E locked (empty), F unlocked.  Later members must not reset
        # state a producer already flipped.
        if self.sync.once(f"zzain:{self.sync.storage_key(e_ref)}"):
            self._void(e_ref, f_ref)

    def _void(self, e_ref, f_ref) -> None:
        if isinstance(e_ref, ArrayRef):
            e_ref.array.fill(True)
            f_ref.array.fill(False)
            with self.sync.mutex:
                self.sync.mutex.notify_all()
        else:
            self.sync.set_state(e_ref, True)
            self.sync.set_state(f_ref, False)

    def _isfull(self, args) -> bool:
        if len(args) != 1:
            raise ForceError("FRCISF expects one async variable")
        ref = args[0]
        base = ref if not isinstance(ref, ElementRef) else ArrayRef(ref.farray)
        pair = self._async_pairs.get(self.sync.storage_key(base))
        if pair is None:
            raise ForceError("Isfull on an unregistered async variable")
        e_ref, f_ref = pair
        if isinstance(ref, ElementRef):
            e_val = e_ref.array.get(ref.subscripts)
            f_val = f_ref.array.get(ref.subscripts)
        else:
            e_val, f_val = e_ref.get(), f_ref.get()
        return bool(f_val) and not bool(e_val)

    # -- observability over the software locks -------------------------
    # The translated program synchronises through SPINLK/SPINUN on the
    # macro layer's LOGICAL lock variables; the variable *names* carry
    # the construct (BARWIN/BARWOT barrier gates, ZZL<label> selfsched
    # index locks, anything else a critical section) — the same
    # convention the simulator trace adapter categorises by.  When the
    # Force collects traces or metrics, each lock round is recorded as
    # wait/hold spans on the acquiring lane, so `force profile` and
    # `force tune` see pipeline-native runs exactly like simulator and
    # runtime-API runs.
    def _locked(self, ref, frame: Frame) -> None:
        label = self._label(ref, frame)
        tracer = self.force._tracer
        metrics = self.force._metrics
        if tracer is None and metrics is None:
            self.sync.acquire(ref, label)
            return
        contended = bool(ref.get())
        started = perf_counter()
        self.sync.acquire(ref, label)
        waited = perf_counter() - started if contended else 0.0
        kind = _categorize_lock(label)
        if tracer is not None and contended:
            tracer.record(kind, label, "wait", phase="X",
                          ts=tracer.now() - waited, dur=waited)
        self._lock_holds[self.sync.storage_key(ref)] = (
            kind, label, threading.get_ident(), perf_counter(),
            waited, contended)

    def _unlocked(self, ref, frame: Frame) -> None:
        self.sync.release(ref)
        tracer = self.force._tracer
        metrics = self.force._metrics
        if tracer is None and metrics is None:
            return
        key = self.sync.storage_key(ref)
        entry = self._lock_holds.get(key)
        if entry is not None and entry[2] == threading.get_ident():
            self._lock_holds.pop(key, None)
            kind, label, _tid, held_from, waited, contended = entry
            held = perf_counter() - held_from
            if tracer is not None:
                tracer.record(kind, label, "hold", phase="X",
                              ts=tracer.now() - held, dur=held)
            if metrics is not None and kind == "critical":
                metrics.critical(label, waited, contended, held)
            return
        if tracer is not None:
            # An unlock of a lock this lane never acquired — the
            # barrier macro's out-gate open (the last arriver releases
            # BARWOT without holding it).  Record the instant so the
            # trace analyzer can resolve gate waiters to this lane.
            label = self._label(ref, frame)
            tracer.record(_categorize_lock(label), label, "release")

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _one_lock_arg(name: str, args) -> None:
        if len(args) != 1:
            raise ForceError(f"{name} expects one lock variable")

    @staticmethod
    def _label(ref, frame: Frame) -> str:
        """Best-effort Fortran name for deadlock messages."""
        target = getattr(ref, "cell", None) or getattr(ref, "farray", None)
        for name, storage in frame.vars.items():
            if storage is target and not name.startswith("%"):
                if isinstance(ref, ElementRef):
                    subs = ",".join(str(s) for s in ref.subscripts)
                    return f"{name}({subs})"
                return name
        return "lock"


# ----------------------------------------------------------------------
# workers
# ----------------------------------------------------------------------
_RUN_IDS = itertools.count(1)
#: thread-backend run state, shared by the worker threads in-process
_THREAD_RUNS: dict[int, dict[str, Any]] = {}


def _native_worker(force, me: int, spec: dict) -> None:
    """One Force member: interpret the generated Fortran for real.

    Member 1 doubles as the driver (``PROGRAM FORCED``): startup unit,
    environment init, then ``FRKALL`` releases members 2..N and runs
    the main unit inline, and ``FRCJON`` joins.  Other members park at
    the go barrier, run the main unit, and join.
    """
    if spec["backend"] == "thread":
        state = _THREAD_RUNS[spec["run_id"]]
        program = state["program"]
        runtime = state["runtime"]
        commons = state["commons"]
    else:
        program = parse_source(spec["fortran"])
        commons = _ProcessCommons(force, frozenset(spec["shared"]))
        runtime = _NativeRuntime(force, _ProcessSync(force), program,
                                 spec["main"])
    lines: list[str] = []
    interp = Interpreter(program, external=runtime, commons=commons,
                         on_output=lambda line, frame: lines.append(line),
                         compiled=spec["compiled"],
                         codegen=spec.get("codegen"))
    try:
        if me == 1:
            try:
                drain(interp.run_unit(program.main, []))
            except StopSignal as stop:
                if stop.message:
                    lines.append(stop.message)
                if runtime.spawned and not runtime.joined:
                    force.barrier()     # peers still expect the join
        else:
            force.barrier()             # wait for the driver's startup
            unit = program.units[spec["main"]]
            try:
                drain(interp.run_unit(
                    unit, [ValueRef(me), ValueRef(force.nproc)]))
            except StopSignal as stop:
                if stop.message:
                    lines.append(stop.message)
            force.barrier()             # join
    finally:
        path = os.path.join(spec["outdir"], f"out-{me}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(line + "\n" for line in lines)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
@dataclass
class NativeRunResult:
    """Everything one native execution produced."""

    translation: TranslationResult
    backend: str
    nproc: int
    output: list[str]                   #: merged by (member, print order)
    wall_s: float
    force_stats: dict | None = None     #: runtime stats dict (stats=True)
    trace: list = field(default_factory=list)
    trace_dropped: int = 0              #: ring-buffer overflow count
    metrics_doc: dict | None = None     #: registry dict (metrics=True)
    #: the supervisor's attempt-by-attempt report (supervised runs)
    supervision: dict | None = None

    def stats_dict(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "native": {"backend": self.backend, "nproc": self.nproc,
                       "wall_s": round(self.wall_s, 6)},
        }
        if self.force_stats is not None:
            document.update(self.force_stats)
        return document

    def trace_events(self) -> list:
        return self.trace


def native_run(translation: TranslationResult, nproc: int, *,
               backend: str = "thread",
               stats: bool = False,
               trace: bool = False,
               metrics: bool = False,
               trace_capacity: int = 65536,
               deadline: float | None = None,
               compiled: bool = True,
               codegen: str | None = None,
               retries: int = 0,
               min_nproc: int | None = None,
               checkpoint_dir: str | None = None,
               checkpoint_every: int = 1,
               resume: bool = False,
               facts: dict | None = None) -> NativeRunResult:
    """Execute a translated Force program on the host.

    ``deadline`` bounds every blocking construct (it becomes the
    Force's ``construct_timeout``), so a deadlocked program raises a
    structured :class:`~repro._util.errors.ForceDeadlockError` instead
    of hanging.  ``trace_capacity`` sizes each member's trace ring;
    overflow drops the oldest events and the count surfaces as
    :attr:`NativeRunResult.trace_dropped`.

    Supervision (PR 9): ``retries > 0`` or a ``checkpoint_dir`` routes
    the run through a :class:`~repro.runtime.supervisor.SupervisedRun`
    — transient failures (a worker death, a structured deadlock
    verdict) are retried with capped backoff, restarting elastically
    down to ``min_nproc`` when a ``facts`` document proves every DOALL
    race-free (or no document is supplied).  Checkpointing requires
    the process backend: there shared COMMON lives in the Force's
    arena, inside the snapshot scope, while the thread backend keeps
    COMMON in interpreter storage the checkpointer cannot see.  Note
    the pipeline's own barriers are software spin-lock barriers in the
    generated Fortran, so runtime snapshots happen at the fork/join
    runtime barriers only — supervision of pipeline runs is chiefly
    *retry and elastic restart*, not mid-program resume.
    """
    if backend not in NATIVE_BACKENDS:
        raise ForceError(f"unknown native backend {backend!r}: expected "
                         f"one of {', '.join(NATIVE_BACKENDS)}")
    machine = translation.machine
    if machine.key != "python-host":
        raise ForceError(
            f"native execution runs python-host code only (this program "
            f"was translated for {machine.key}); translate with "
            "--machine python-host")
    fortran = translation.fortran
    spawn = _SPAWN.search(fortran)
    if spawn is None:
        raise ForceError("the generated code has no FRKALL driver call "
                         "(is this a Force program?)")
    main_name = spawn.group(1)
    shared = shared_block_names(fortran)
    supervised = retries > 0 or checkpoint_dir is not None or resume
    policy = None
    if checkpoint_dir is not None:
        if backend != "process":
            raise ForceError(
                "checkpointing a pipeline run needs the process "
                "backend (thread-backend COMMON lives in interpreter "
                "storage, outside the snapshot scope); rerun with "
                "--backend process or drop --checkpoint")
        policy = CheckpointPolicy(checkpoint_every, checkpoint_dir)
    elif resume:
        raise ForceError("--resume needs --checkpoint DIR to resume "
                         "from")
    outdir = tempfile.mkdtemp(prefix="force-native-")
    spec: dict[str, Any] = {
        "backend": backend,
        "main": main_name,
        "outdir": outdir,
        "compiled": compiled,
        "codegen": codegen,
    }
    run_id = None
    if backend == "thread":
        run_id = next(_RUN_IDS)
        spec["run_id"] = run_id
    else:
        spec["fortran"] = fortran
        spec["shared"] = sorted(shared)

    def build_force(width: int, restore=None) -> Force:
        """One attempt's force plus its fresh interpreter state."""
        force = Force(width, backend=backend, stats=stats, trace=trace,
                      metrics=metrics, trace_capacity=trace_capacity,
                      construct_timeout=deadline, checkpoint=policy,
                      restore=restore)
        for name in os.listdir(outdir):    # drop a prior attempt's output
            os.unlink(os.path.join(outdir, name))
        if backend == "thread":
            program = parse_source(fortran)
            _THREAD_RUNS[run_id] = {
                "program": program,
                "runtime": _NativeRuntime(force, _ThreadSync(force),
                                          program, main_name),
                "commons": _ThreadCommons(shared),
            }
        return force

    started = perf_counter()
    supervision_doc = None
    try:
        if supervised:
            run = SupervisedRun(
                _native_worker, (spec,), nproc=nproc, backend=backend,
                checkpoint=policy, min_nproc=min_nproc,
                retry=RetryPolicy(retries=retries), facts=facts,
                resume=resume,
                force_factory=lambda width, restore, inject:
                    build_force(width, restore))
            outcome = run.run()
            force = outcome.force
            final_nproc = outcome.final_nproc
            supervision_doc = outcome.as_dict()
        else:
            force = build_force(nproc)
            force.run(_native_worker, spec)
            final_nproc = nproc
        wall_s = perf_counter() - started
        output: list[str] = []
        for me in range(1, final_nproc + 1):
            path = os.path.join(outdir, f"out-{me}.txt")
            if os.path.exists(path):
                with open(path, encoding="utf-8") as handle:
                    output.extend(line.rstrip("\n")
                                  for line in handle)
    finally:
        if run_id is not None:
            _THREAD_RUNS.pop(run_id, None)
        shutil.rmtree(outdir, ignore_errors=True)
    return NativeRunResult(
        translation=translation,
        backend=backend,
        nproc=nproc,
        output=output,
        wall_s=wall_s,
        force_stats=force.stats if stats else None,
        trace=list(force.trace_events()) if trace else [],
        trace_dropped=force.trace_dropped if trace else 0,
        metrics_doc=force.metrics_registry(wall_s=wall_s).as_dict()
        if metrics else None,
        supervision=supervision_doc,
    )
