"""The Force compilation and execution pipeline (§4.3).

Compilation proceeds in three steps, as in the paper: the stream editor
translates Force syntax into parameterized function macros
(:mod:`repro.sedstage`); the m4-style processor replaces them, in two
levels, with Fortran plus runtime-library calls (:mod:`repro.macros`);
and the "manufacturer's compiler" — our F77 interpreter — executes the
result on the simulated machine (:mod:`repro.sim`).

The machine-dependent driver module is placed at the beginning of the
code, and the Sequent's two-run linker protocol is emulated faithfully:
the startup subroutine is executed first to produce linker commands,
which are applied before the real run.
"""

from repro.pipeline.compile import force_translate, TranslationResult
from repro.pipeline.native import native_run, NativeRunResult
from repro.pipeline.run import force_run, force_compile_and_run, RunResult

__all__ = [
    "force_translate",
    "TranslationResult",
    "force_run",
    "force_compile_and_run",
    "RunResult",
    "native_run",
    "NativeRunResult",
]
