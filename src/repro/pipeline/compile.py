"""Force → Fortran translation (sed stage + two-level m4 expansion)."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro._util.errors import ForceError
from repro.machines.model import MachineModel
from repro.macros import build_processor
from repro.sedstage import translate_force_source

_DRIVER_BEGIN = "C$FORCE BEGIN DRIVER"
_DRIVER_END = "C$FORCE END DRIVER"
_DIRECTIVE = re.compile(r"^C\$FORCE\s+SHARED\s+(\w+)\s*$", re.MULTILINE)


@dataclass
class TranslationResult:
    """Everything the compile step produces for one (program, machine)."""

    machine: MachineModel
    force_source: str          #: the original Force program
    sed_output: str            #: after the stream-editor stage
    fortran: str               #: final Fortran (driver relocated to top)
    shared_directives: list[str] = field(default_factory=list)

    @property
    def has_startup_unit(self) -> bool:
        return "SUBROUTINE ZZSTRT" in self.fortran


def force_translate(source: str, machine: MachineModel) -> TranslationResult:
    """Run the full preprocessing pipeline for one machine.

    Returns the translated Fortran with the machine-dependent driver
    module moved to the beginning of the code (§4.3), plus the list of
    compile-time shared-memory directives found (empty on link-/run-
    time binding machines).
    """
    sed_output = translate_force_source(source)
    m4 = build_processor(machine)
    expanded = m4.process(sed_output + "\nforce_finalize()\n")
    fortran = _relocate_driver(expanded)
    directives = _DIRECTIVE.findall(fortran)
    return TranslationResult(
        machine=machine,
        force_source=source,
        sed_output=sed_output,
        fortran=fortran,
        shared_directives=directives,
    )


def _relocate_driver(expanded: str) -> str:
    """Move the generated driver block to the top of the file."""
    begin = expanded.find(_DRIVER_BEGIN)
    end = expanded.find(_DRIVER_END)
    if begin < 0 or end < 0:
        raise ForceError("macro expansion produced no driver block "
                         "(is this a Force program?)")
    end += len(_DRIVER_END)
    driver = expanded[begin:end]
    rest = expanded[:begin] + expanded[end:]
    return driver + "\n" + rest
