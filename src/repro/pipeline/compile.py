"""Force → Fortran translation (sed stage + two-level m4 expansion)."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro._util.errors import ForceError
from repro.machines.model import MachineModel
from repro.macros import build_processor
from repro.sedstage import translate_force_source

_DRIVER_BEGIN = "C$FORCE BEGIN DRIVER"
_DRIVER_END = "C$FORCE END DRIVER"
_DIRECTIVE = re.compile(r"^C\$FORCE\s+SHARED\s+(\w+)\s*$", re.MULTILINE)


@dataclass
class TranslationResult:
    """Everything the compile step produces for one (program, machine)."""

    machine: MachineModel
    force_source: str          #: the original Force program
    sed_output: str            #: after the stream-editor stage
    fortran: str               #: final Fortran (driver relocated to top)
    shared_directives: list[str] = field(default_factory=list)

    @property
    def has_startup_unit(self) -> bool:
        return "SUBROUTINE ZZSTRT" in self.fortran


SCHEDULES = ("self", "chunked", "guided")


def scheduling_definitions(sched: str | None,
                           chunk: int | None) -> str | None:
    """Extra m4 defines selecting the selfsched dispatch policy.

    Mirrors the native runtime's normalisation: a bare ``chunk > 1``
    implies ``chunked``; ``self`` with ``chunk > 1`` is contradictory.
    Returns ``None`` when both are at their defaults, so the expansion
    stays byte-identical to the paper's §4.2 listing.
    """
    if chunk is not None and chunk < 1:
        raise ForceError("selfsched chunk must be >= 1")
    if sched is None and chunk is not None and chunk > 1:
        sched = "chunked"
    if sched is not None and sched not in SCHEDULES:
        raise ForceError(
            f"unknown selfsched schedule {sched!r}: "
            f"expected one of {', '.join(SCHEDULES)}")
    if sched == "self" and chunk is not None and chunk > 1:
        raise ForceError(
            "schedule 'self' hands out one iteration at a time; "
            "use --sched chunked with --chunk > 1")
    lines = []
    if sched is not None and sched != "self":
        lines.append(f"define(`ZZSCHED', `{sched}')dnl")
    if chunk is not None and chunk != 1:
        lines.append(f"define(`ZZCHUNK', `{chunk}')dnl")
    return "\n".join(lines) + "\n" if lines else None


def force_translate(source: str, machine: MachineModel,
                    sched: str | None = None,
                    chunk: int | None = None) -> TranslationResult:
    """Run the full preprocessing pipeline for one machine.

    Returns the translated Fortran with the machine-dependent driver
    module moved to the beginning of the code (§4.3), plus the list of
    compile-time shared-memory directives found (empty on link-/run-
    time binding machines).  ``sched``/``chunk`` select the
    selfscheduled-DOALL dispatch policy (see ``ZZSCHED`` in the
    machine-independent library); the defaults reproduce the paper's
    one-index-per-lock expansion exactly.
    """
    sed_output = translate_force_source(source)
    m4 = build_processor(machine, scheduling_definitions(sched, chunk))
    expanded = m4.process(sed_output + "\nforce_finalize()\n")
    fortran = _relocate_driver(expanded)
    directives = _DIRECTIVE.findall(fortran)
    return TranslationResult(
        machine=machine,
        force_source=source,
        sed_output=sed_output,
        fortran=fortran,
        shared_directives=directives,
    )


def _relocate_driver(expanded: str) -> str:
    """Move the generated driver block to the top of the file."""
    begin = expanded.find(_DRIVER_BEGIN)
    end = expanded.find(_DRIVER_END)
    if begin < 0 or end < 0:
        raise ForceError("macro expansion produced no driver block "
                         "(is this a Force program?)")
    end += len(_DRIVER_END)
    driver = expanded[begin:end]
    rest = expanded[:begin] + expanded[end:]
    return driver + "\n" + rest
