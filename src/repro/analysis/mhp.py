"""The may-happen-in-parallel relation over phase-partitioned accesses.

Two resolved accesses *may happen in parallel* when two different
processes can execute them concurrently.  The rules, in the order they
are applied:

* different expansion roots never co-execute (each root is a whole
  program run);
* different phases never co-execute — every process crossed the
  barrier between them;
* a Barrier body runs on exactly one process while the rest wait, so
  nothing in it runs in parallel with anything (including itself);
* one Pcase section is claimed by one process, so a section never
  runs in parallel with itself — but it *does* run in parallel with a
  different section of the same Pcase and with replicated code in the
  same phase, because ``End pcase`` does not synchronize;
* two sites guarded by the *same* canonical ME-predicate are executed
  by the same process subset selected the same way, and a guarded
  statement does not race with itself — this inherits the seed
  analyzer's reading of an ``IF (… ME …)`` guard as an ownership
  claim (a range guard like ``ME .LT. 4`` is accepted too; the
  limitation is documented in docs/LANGUAGE.md);
* everything else in the same phase of replicated code may happen in
  parallel across processes, including a statement with itself —
  every process executes it.

MHP is necessary but not sufficient for a race: the detector in
:mod:`repro.analysis.races` still subtracts lockset protection and
DOALL index-partition ownership before reporting.
"""

from __future__ import annotations

from repro.analysis.summaries import ResolvedAccess

_SECTION = "section:"


def may_happen_in_parallel(a: ResolvedAccess, b: ResolvedAccess) -> bool:
    """True when two processes can execute ``a`` and ``b`` concurrently.

    Pass the same object twice to ask whether a statement races with
    itself across the process ensemble.
    """
    if a.root != b.root:
        return False
    if a.phase != b.phase:
        return False
    if a.single_process or b.single_process:
        return False
    a_section = a.region.startswith(_SECTION)
    b_section = b.region.startswith(_SECTION)
    if a_section and b_section and a.region == b.region:
        return False        # one process claims one section
    if a is b:
        # Self-race: every process runs the statement — unless a
        # section or ME-guard pins it to one of them.
        return not (a_section or a.guard is not None)
    if a.guard is not None and b.guard is not None and a.guard == b.guard:
        return False
    return True


def no_mhp_reason(a: ResolvedAccess, b: ResolvedAccess) -> str | None:
    """Human-readable reason the pair cannot co-execute, or ``None``."""
    if a.root != b.root:
        return "different program roots"
    if a.phase != b.phase:
        return (f"separated by a barrier: phase {a.phase} vs "
                f"phase {b.phase}")
    if a.single_process or b.single_process:
        return "inside a single-process Barrier body"
    if (a.region.startswith(_SECTION) and a.region == b.region):
        return "same Pcase section, claimed by one process"
    if a is b:
        if a.region.startswith(_SECTION):
            return "same Pcase section, claimed by one process"
        if a.guard is not None:
            return f"ME-guarded ({a.guard})"
        return None
    if a.guard is not None and a.guard == b.guard:
        return f"both sites ME-guarded by '{a.guard}'"
    return None
