"""F001: may-happen-in-parallel race detection over shared storage.

The Force's ownership discipline (paper §4.2): replicated code may
touch a Shared variable only under mutual exclusion (a Critical), in
a single-process section (a Barrier body or a Pcase section), in a
region guarded on the process identifier, or — for arrays — at
subscripts partitioned by an enclosing DOALL's index variables.

The seed checker enforced that one assignment at a time.  This
detector works on the interprocedural summaries of
:mod:`repro.analysis.summaries`: every pair of accesses to the same
shared storage (at least one a write) that
:func:`repro.analysis.mhp.may_happen_in_parallel` admits is tested
for protection —

* **lockset**: the two sites hold a common Critical name;
* **address separation**: per-dimension symbolic affine analysis of
  the subscripts proves either that the dimensions are disjoint
  (distinct constants, a non-divisible stride offset, or an index
  range provably excluding the other side's term) or that a collision
  forces every DOALL index — and hence the iteration, and hence the
  process — to coincide.  Subscripts linear in the process identifier
  partition by construction: two distinct processes never share it.

Anything left is reported as a :class:`RaceReport` carrying both
sites, and rendered as an F001 diagnostic with a two-sided witness.
A statement racing with *itself* across processes (the seed's case)
keeps the seed's message wording; conflicting *pairs* are new.

Assumption, documented in docs/LANGUAGE.md: a Private scalar that is
not a DOALL index and not the process identifier is assumed to hold
the same value on every process within a phase (replicated programs
compute them in lockstep).  Such symbols may justify *disjointness*
(the LU pivot pattern ``A(I,K)`` vs ``A(K,K)`` with ``I`` ranging
over ``K+1, N``) but never *forced equality* — ``A(I+J)`` with a
private ``J`` is still a race, because nothing proves two processes
agree on ``J``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import fortranish
from repro.analysis.construct_parser import ForceProgram
from repro.analysis.diagnostics import (
    Diagnostic,
    Witness,
    WitnessSite,
    error,
)
from repro.analysis.fortranish import CONST
from repro.analysis.mhp import may_happen_in_parallel
from repro.analysis.summaries import (
    ProgramSummary,
    ResolvedAccess,
    summarize,
)
from repro.analysis.symbols import PARAM, SHARED

#: identifier classes inside a subscript dimension.
_INDEX, _IDENT, _STABLE, _PRIVATE = "index", "ident", "stable", "private"


@dataclass(frozen=True)
class RaceReport:
    """One confirmed race: the evidence the diagnostics are built from."""

    key: str                     #: shared-storage key
    name: str
    kind: str                    #: "self" | "write/write" | "read/write"
    first: ResolvedAccess
    second: ResolvedAccess

    @property
    def frame_uids(self) -> frozenset[int]:
        return frozenset(f.uid for side in (self.first, self.second)
                         for f in side.frames)


def detect(summary: ProgramSummary) -> list[RaceReport]:
    """All unprotected MHP conflicts in the program, document order."""
    idents = {r.name.upper(): (r.ident_var or "").upper()
              for r in summary.program.routines}
    groups: dict[tuple[str, str], list[ResolvedAccess]] = {}
    for access in summary.accesses:
        groups.setdefault((access.root, access.key), []).append(access)

    reports: list[RaceReport] = []
    for (root, key), accesses in groups.items():
        ident = idents.get(root, "")
        classify = _classifier(summary, ident)
        self_racy: set[int] = set()
        seen: set[tuple] = set()
        for access in accesses:
            if not access.is_write:
                continue
            if not may_happen_in_parallel(access, access):
                continue
            if access.locks:
                continue
            if _address_safe(access, access, classify):
                continue
            if access.line in self_racy:
                continue
            self_racy.add(access.line)
            reports.append(RaceReport(
                key=key, name=access.name, kind="self",
                first=access, second=access))
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if not (a.is_write or b.is_write):
                    continue
                if a.line == b.line and a.routine == b.routine:
                    continue    # a statement's own read/write halves
                if (a.is_write and b.is_write
                        and a.line in self_racy and b.line in self_racy):
                    continue    # both sides already reported singly
                if not may_happen_in_parallel(a, b):
                    continue
                if set(a.locks) & set(b.locks):
                    continue
                if _address_safe(a, b, classify):
                    continue
                first, second = _order(a, b)
                kind = ("write/write" if a.is_write and b.is_write
                        else "read/write")
                dedup = (kind, first.line, first.routine,
                         second.line, second.routine)
                if dedup in seen:
                    continue
                seen.add(dedup)
                reports.append(RaceReport(
                    key=key, name=a.name, kind=kind,
                    first=first, second=second))
    reports.sort(key=lambda r: (r.first.line, r.second.line, r.key))
    return reports


def check_races(program: ForceProgram,
                summary: ProgramSummary | None = None) -> list[Diagnostic]:
    """Render every detected race as an F001 diagnostic with witness."""
    if summary is None:
        summary = summarize(program)
    diagnostics = [_diagnose(report, summary) for report in detect(summary)]
    return diagnostics


# ----------------------------------------------------------------------
# diagnostics
# ----------------------------------------------------------------------
def _diagnose(report: RaceReport, summary: ProgramSummary) -> Diagnostic:
    first, second = report.first, report.second
    witness = Witness(kind=report.kind,
                      first=_witness_site(first),
                      second=_witness_site(second))
    if report.kind == "self":
        where = ("inside the DOALL body" if first.frames
                 else "in replicated code")
        hint = (
            "index the array with the DOALL loop variable, or wrap "
            "the update in Critical/End critical"
            if first.frames else
            "wrap the update in Critical/End critical or move it "
            "into a Barrier body")
        message = (f"assignment to Shared variable '{first.name}' {where} "
                   "— every process races on this update")
        if first.routine != first.root:
            message += (" (reached via Forcecall chain "
                        f"{' -> '.join(first.chain)})")
        return error("F001", first.line, message, hint, witness=witness)
    message = (f"conflicting accesses to Shared variable '{report.name}' "
               f"({report.kind}): {_describe(first)}; {_describe(second)}"
               " — nothing orders the two sites, so different processes "
               "can execute them at the same time")
    hint = ("make both sites hold the same Critical lock, separate them "
            "with a Barrier, or partition both subscripts by the DOALL "
            "index")
    return error("F001", first.line, message, hint, witness=witness)


def _describe(access: ResolvedAccess) -> str:
    verb = "writes" if access.is_write else "reads"
    where = (f" in {access.routine}" if access.routine != access.root
             else "")
    locks = ", ".join(access.locks)
    return (f"line {access.line}{where} {verb} {_display(access)} in "
            f"phase {access.phase} holding {{{locks}}}")


def _display(access: ResolvedAccess) -> str:
    if access.subscript is not None:
        return f"{access.name}({access.subscript})"
    return access.name


def _witness_site(access: ResolvedAccess) -> WitnessSite:
    return WitnessSite(
        routine=access.routine, line=access.line,
        access="write" if access.is_write else "read",
        variable=_display(access), phase=access.phase,
        locks=access.locks, region=access.region, guard=access.guard,
        chain=access.chain)


def _order(a: ResolvedAccess,
           b: ResolvedAccess) -> tuple[ResolvedAccess, ResolvedAccess]:
    """Write side first, then by line — stable witness ordering."""
    if a.is_write != b.is_write:
        return (a, b) if a.is_write else (b, a)
    return (a, b) if a.line <= b.line else (b, a)


# ----------------------------------------------------------------------
# address separation
# ----------------------------------------------------------------------
def _classifier(summary: ProgramSummary, ident: str):
    routines = {r.name.upper(): r for r in summary.program.routines}

    def classify(var: str, indices: frozenset[str],
                 access: ResolvedAccess) -> str:
        if var in indices:
            return _INDEX
        if ident and var == ident:
            return _IDENT
        for candidate in (access.routine, access.root):
            routine = routines.get(candidate)
            if routine is None:
                continue
            symbol = routine.symbols.lookup(var)
            if symbol is None:
                continue
            return (_STABLE if symbol.storage in (SHARED, PARAM)
                    else _PRIVATE)
        return _PRIVATE

    return classify


def _address_safe(a: ResolvedAccess, b: ResolvedAccess, classify) -> bool:
    """True when the two accesses provably never touch the same cell
    from two different processes."""
    if a.subscript is None or b.subscript is None:
        return False
    common = {f.uid for f in a.frames} & {f.uid for f in b.frames}
    indices = frozenset(
        v for f in a.frames if f.uid in common for v in f.indices)
    dims_a = fortranish.split_subscript(a.subscript)
    dims_b = fortranish.split_subscript(b.subscript)
    if len(dims_a) != len(dims_b):
        return False
    forced: set[str] = set()
    for da, db in zip(dims_a, dims_b):
        outcome, vars_ = _dim_outcome(da, db, a, b, indices, classify)
        if outcome == "disjoint":
            return True
        if outcome == "forces":
            forced.update(vars_)
    if any(classify(v, indices, a) == _IDENT for v in forced):
        return True            # distinct processes never share ME
    return bool(indices) and forced >= indices


def _dim_outcome(da: str, db: str, a: ResolvedAccess, b: ResolvedAccess,
                 indices: frozenset[str],
                 classify) -> tuple[str, tuple[str, ...]]:
    fa = fortranish.parse_affine(da)
    fb = fortranish.parse_affine(db)
    if fa is None or fb is None:
        return "nothing", ()
    partition_vars = {
        v for v in (set(fa) | set(fb)) - {CONST}
        if classify(v, indices, a) in (_INDEX, _IDENT)}
    a_idx = {v: fa.get(v, 0) for v in partition_vars}
    b_idx = {v: fb.get(v, 0) for v in partition_vars}
    symbols = (set(fa) | set(fb)) - partition_vars - {CONST}
    sym_diff_nonzero = any(fa.get(v, 0) != fb.get(v, 0) for v in symbols)
    d = fa.get(CONST, 0) - fb.get(CONST, 0)

    if a_idx == b_idx:
        if sym_diff_nonzero:
            return "nothing", ()
        nonzero = [v for v, c in a_idx.items() if c]
        if not nonzero:
            return ("disjoint", ()) if d != 0 else ("nothing", ())
        if len(nonzero) == 1:
            var, coeff = nonzero[0], a_idx[nonzero[0]]
            if d == 0:
                # Forced equality is only sound when every other term
                # is replicated-identical *by storage class*: shared
                # or parameter.  A private symbol (A(I+J)) proves
                # nothing — two processes may disagree on it.
                if all(classify(v, indices, a) == _STABLE
                       for v in symbols if fa.get(v, 0) != 0):
                    return "forces", (var,)
                return "nothing", ()
            if d % coeff != 0:
                return "disjoint", ()
            return "nothing", ()
        return "nothing", ()

    # Different index coefficients.  One tractable shape: one side is
    # linear in a single index, the other index-free — then collision
    # pins the index to a symbolic value we can test against the
    # loop bounds (the LU pivot-row pattern).
    for p, q, side in ((fa, fb, a), (fb, fa, b)):
        p_nz = [v for v in partition_vars if p.get(v, 0)]
        q_nz = [v for v in partition_vars if q.get(v, 0)]
        if len(p_nz) != 1 or q_nz:
            continue
        var = p_nz[0]
        coeff = p.get(var, 0)
        if abs(coeff) != 1 or classify(var, indices, a) != _INDEX:
            continue
        target = {v: (q.get(v, 0) - p.get(v, 0)) * coeff
                  for v in symbols | {CONST}}
        frame = next((f for f in side.frames if var in f.indices), None)
        if frame is None:
            continue
        for bound, sign in ((frame.lower_bound(var), 1),
                            (frame.upper_bound(var), -1)):
            if not bound:
                continue
            parsed = fortranish.parse_affine(bound)
            if parsed is None:
                continue
            diff = fortranish.affine_difference(parsed, target)
            if diff is not None and diff * sign > 0:
                return "disjoint", ()
    return "nothing", ()
