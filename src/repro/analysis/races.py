"""F001: shared-write race detection.

The Force's ownership discipline (paper §4.2): replicated code may
update a Shared variable only under mutual exclusion (a Critical), in
a single-process section (a Barrier body or a Pcase section), in a
region guarded on the process identifier, or — for arrays — inside a
DOALL whose own index variable partitions the iterations and appears
in the subscript.  Anything else is a data race waiting for an
unlucky interleaving.
"""

from __future__ import annotations

from repro.analysis import fortranish
from repro.analysis.construct_parser import ForceProgram, walk_statements
from repro.analysis.diagnostics import Diagnostic, error
from repro.analysis.symbols import SHARED


def check_races(program: ForceProgram) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for routine in program.routines:
        for stmt, ctx in walk_statements(routine):
            assignment = fortranish.parse_assignment(stmt.text)
            if assignment is None:
                continue
            symbol = routine.symbols.lookup(assignment.name)
            if symbol is None or symbol.storage != SHARED:
                continue
            if ctx.critical_depth or ctx.single_depth or ctx.guarded:
                continue
            if _owned_by_doall(assignment, ctx.doall_indices):
                continue
            where = ("inside the DOALL body"
                     if ctx.doall_indices else "in replicated code")
            hint = (
                "index the array with the DOALL loop variable, or wrap "
                "the update in Critical/End critical"
                if ctx.doall_indices else
                "wrap the update in Critical/End critical or move it "
                "into a Barrier body")
            diagnostics.append(error(
                "F001", stmt.line,
                f"assignment to Shared variable "
                f"'{assignment.name}' {where} — every process races on "
                "this update",
                hint))
    return diagnostics


def _owned_by_doall(assignment: fortranish.Assignment,
                    indices: tuple[str, ...]) -> bool:
    """An array write partitioned by an enclosing DOALL index is safe."""
    if not indices or assignment.subscript is None:
        return False
    return any(fortranish.mentions(index, assignment.subscript)
               for index in indices)
