"""Diagnostic objects produced by the Force static analyzer.

Every checker reports findings as :class:`Diagnostic` values — a
severity, a stable code (``F001`` …), a 1-based source line, a message
and an optional fix suggestion — so the CLI can render them as text or
JSON and gate translation on them.  The full catalogue, with a minimal
offending program per code, lives in ``docs/LANGUAGE.md`` ("Static
checking").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum


class Severity(str, Enum):
    """How bad a finding is; errors make ``force check`` exit nonzero."""

    WARNING = "warning"
    ERROR = "error"


#: code -> one-line title (kept in sync with docs/LANGUAGE.md).
CATALOG: dict[str, str] = {
    "F001": "shared-write race in replicated code",
    "F002": "unmatched or unclosed construct",
    "F003": "DOALL/Askfor label or kind mismatch",
    "F004": "Barrier or Join nested inside another construct",
    "F005": "deadlock-prone Critical nesting",
    "F006": "Consume/Copy/Void of a variable that is not Async",
    "F007": "Consume with no reachable Produce",
    "F008": "Produce into a variable that is not Async",
    "F009": "Private write inside a single-process section",
    "F010": "declaration conflict or common-block shadowing",
    "F011": "Force statement in column one parsed as a comment",
    "F012": "Askfor/Putwork queue not declared with Taskq",
}


@dataclass(frozen=True)
class WitnessSite:
    """One side of a race witness: where, and under what context."""

    routine: str
    line: int
    access: str                  #: "write" | "read"
    variable: str                #: display text, e.g. ``U(IDX)``
    phase: int
    locks: tuple[str, ...]
    region: str                  #: replicated | barrier | section:…
    guard: str | None = None
    chain: tuple[str, ...] = ()  #: Forcecall chain from the root

    def to_dict(self) -> dict:
        return {
            "routine": self.routine,
            "line": self.line,
            "access": self.access,
            "variable": self.variable,
            "phase": self.phase,
            "locks": list(self.locks),
            "region": self.region,
            "guard": self.guard,
            "chain": list(self.chain),
        }


@dataclass(frozen=True)
class Witness:
    """Two-sided evidence for a race pair (both sides equal for a
    statement racing with itself across processes)."""

    kind: str                    #: "write/write" | "read/write" | "self"
    first: WitnessSite
    second: WitnessSite

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
        }


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding, pointing back at user source."""

    code: str
    severity: Severity
    line: int
    message: str
    suggestion: str = ""
    file: str = "<source>"
    witness: Witness | None = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def promoted(self) -> "Diagnostic":
        """The same finding with warnings raised to errors (--werror)."""
        if self.is_error:
            return self
        return replace(self, severity=Severity.ERROR)

    def with_file(self, filename: str) -> "Diagnostic":
        return replace(self, file=filename)

    def to_dict(self) -> dict:
        """JSON-ready representation (``--format json``)."""
        record = {
            "code": self.code,
            "severity": self.severity.value,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "suggestion": self.suggestion,
            "title": CATALOG.get(self.code, ""),
        }
        if self.witness is not None:
            record["witness"] = self.witness.to_dict()
        return record


def error(code: str, line: int, message: str, suggestion: str = "",
          witness: Witness | None = None) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, line, message, suggestion,
                      witness=witness)


def warning(code: str, line: int, message: str, suggestion: str = "",
            witness: Witness | None = None) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, line, message, suggestion,
                      witness=witness)


def count_errors(diagnostics: list[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.is_error)


def count_warnings(diagnostics: list[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if not d.is_error)
