"""F005 (ordering half): inconsistent Critical nesting across a program.

If one code path takes lock A then lock B while another takes B then
A, two processes can each hold one lock and wait on the other — the
classic ABBA deadlock.  The construct parser records every nested
``Critical`` pair; this pass looks for a pair seen in both orders.
(The other half of F005 — a Critical nested inside itself — is
reported by the parser at the nesting site.)
"""

from __future__ import annotations

from repro.analysis.construct_parser import ForceProgram
from repro.analysis.diagnostics import Diagnostic, warning


def check_lock_order(program: ForceProgram) -> list[Diagnostic]:
    first_seen: dict[tuple[str, str], int] = {}
    reported: set[frozenset[str]] = set()
    diagnostics: list[Diagnostic] = []
    for outer, inner, line in program.lock_pairs:
        pair = (outer, inner)
        reverse = (inner, outer)
        if pair not in first_seen:
            first_seen[pair] = line
        if reverse in first_seen and frozenset(pair) not in reported:
            reported.add(frozenset(pair))
            diagnostics.append(warning(
                "F005", line,
                f"Critical '{inner}' taken inside Critical '{outer}' "
                f"here, but the opposite order appears at line "
                f"{first_seen[reverse]} — two processes can deadlock "
                "holding one lock each",
                "acquire nested locks in one global order everywhere"))
    return diagnostics
