"""F005 (ordering half): inconsistent Critical nesting across a program.

If one code path takes lock A then lock B while another takes B then
A, two processes can each hold one lock and wait on the other — the
classic ABBA deadlock.  The seed pass looked only at *lexically*
nested ``Critical`` pairs inside one routine; this version works on
the interprocedural lock acquisitions of
:mod:`repro.analysis.summaries`, where a ``Forcecall`` made while
holding a Critical carries the held set into the callee — so taking
``A`` and then calling a Forcesub that takes ``B`` orders ``A -> B``
even though the two statements sit in different routines.  (The other
half of F005 — a Critical nested inside itself — is reported by the
construct parser at the nesting site.)
"""

from __future__ import annotations

from repro.analysis.construct_parser import ForceProgram
from repro.analysis.diagnostics import (
    Diagnostic,
    Witness,
    WitnessSite,
    warning,
)
from repro.analysis.summaries import ProgramSummary, ResolvedLock, summarize


def check_lock_order(program: ForceProgram,
                     summary: ProgramSummary | None = None
                     ) -> list[Diagnostic]:
    if summary is None:
        summary = summarize(program)
    first_seen: dict[tuple[str, str], ResolvedLock] = {}
    reported: set[frozenset[str]] = set()
    diagnostics: list[Diagnostic] = []
    for acq in summary.locks:
        for outer in acq.held:
            if outer == acq.lock:
                continue        # self-nesting is the parser's half
            pair = (outer, acq.lock)
            reverse = (acq.lock, outer)
            if pair not in first_seen:
                first_seen[pair] = acq
            other = first_seen.get(reverse)
            if other is not None and frozenset(pair) not in reported:
                reported.add(frozenset(pair))
                where = ("" if acq.routine == acq.root
                         else f" (via Forcecall chain "
                              f"{' -> '.join(acq.chain)})")
                diagnostics.append(warning(
                    "F005", acq.line,
                    f"Critical '{acq.lock}' taken inside Critical "
                    f"'{outer}' here{where}, but the opposite order "
                    f"appears at line {other.line} — two processes can "
                    "deadlock holding one lock each",
                    "acquire nested locks in one global order everywhere",
                    witness=Witness(
                        kind="lock-order",
                        first=_site(acq, outer),
                        second=_site(other, acq.lock))))
    return diagnostics


def _site(acq: ResolvedLock, held: str) -> WitnessSite:
    return WitnessSite(
        routine=acq.routine, line=acq.line, access="acquire",
        variable=acq.lock, phase=acq.phase, locks=(held,),
        region="replicated", chain=acq.chain)
