"""Per-routine symbol tables for the Force static analyzer.

Built from the ``shared_decl``/``private_decl``/``async_decl``/
``taskq_decl`` (and ``*_common_decl``) macro calls the sed stage
emits.  Names are case-folded to upper case, as in Fortran.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: storage classes a name can carry.
SHARED, PRIVATE, ASYNC, TASKQ, PARAM = \
    "shared", "private", "async", "taskq", "param"

_NAME = re.compile(r"\s*([A-Za-z]\w*)")


@dataclass(frozen=True)
class Symbol:
    name: str                  #: upper-cased identifier
    storage: str               #: shared | private | async | taskq | param
    type_: str = ""            #: Fortran type text, if declared with one
    common: str | None = None  #: common-block name, if any
    line: int = 0              #: declaration line (1-based)
    is_array: bool = False

    def describe(self) -> str:
        where = f" (common /{self.common}/)" if self.common else ""
        return f"{self.storage.capitalize()} '{self.name}'{where}"


class SymbolTable:
    """Symbols of one Force routine plus any declaration conflicts."""

    def __init__(self) -> None:
        self._by_name: dict[str, Symbol] = {}
        #: (existing, redeclaration) pairs, in declaration order.
        self.conflicts: list[tuple[Symbol, Symbol]] = []

    def declare(self, symbol: Symbol) -> None:
        key = symbol.name.upper()
        existing = self._by_name.get(key)
        if existing is not None:
            self.conflicts.append((existing, symbol))
            # Routine-level declarations win over common members and
            # parameters so later checks see the local classification.
            if existing.common is not None and symbol.common is None:
                self._by_name[key] = symbol
            if existing.storage == PARAM:
                self._by_name[key] = symbol
            return
        self._by_name[key] = symbol

    def lookup(self, name: str) -> Symbol | None:
        return self._by_name.get(base_name(name).upper())

    def storage_of(self, name: str) -> str | None:
        symbol = self.lookup(name)
        return symbol.storage if symbol else None

    def with_storage(self, storage: str) -> list[Symbol]:
        return [s for s in self._by_name.values() if s.storage == storage]


def base_name(text: str) -> str:
    """The identifier of a (possibly subscripted) variable reference."""
    match = _NAME.match(text)
    return match.group(1) if match else text.strip()


def split_decl_list(text: str) -> list[tuple[str, bool]]:
    """Split ``"A(10, 10), B"`` into ``[("A", True), ("B", False)]``.

    Commas inside parenthesised dimension lists do not separate items.
    """
    items: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "," and depth == 0:
            items.append("".join(current))
            current = []
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
        current.append(ch)
    items.append("".join(current))
    out: list[tuple[str, bool]] = []
    for item in items:
        item = item.strip()
        if not item:
            continue
        out.append((base_name(item), "(" in item))
    return out
