"""Parse the sed-stage output into a construct tree with symbols.

The sed stage rewrites each Force statement into a parameterized macro
call (``barrier_begin()``, ``critical(`LCK')`` …) and passes every
other line through unchanged.  That stream is exactly the right level
for static analysis: this module rebuilds it into a tree of
synchronization constructs per routine, interleaved with the raw
Fortran statements, and fills a per-routine symbol table from the
declaration macros.

Structural problems (unmatched ends, label mismatches, a Barrier
nested inside a Critical) are reported as diagnostics *during* the
parse — the parser recovers and keeps going so the other checkers can
still run over a malformed program.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.analysis import fortranish
from repro.analysis.diagnostics import Diagnostic, error
from repro.analysis.symbols import (
    ASYNC,
    PARAM,
    PRIVATE,
    SHARED,
    TASKQ,
    Symbol,
    SymbolTable,
    split_decl_list,
)
from repro.sedstage import translate_force_source

_MACRO_CALL = re.compile(r"^\s*(\w+)\((.*)\)\s*$")

#: opener macro -> construct kind
_OPENERS = {
    "barrier_begin": "barrier",
    "critical": "critical",
    "presched_do": "doall",
    "selfsched_do": "doall",
    "blocksched_do": "doall",
    "presched_do2": "doall",
    "selfsched_do2": "doall",
    "pcase": "pcase",
    "askfor": "askfor",
}

#: closer macro -> the opener macro it must match
_CLOSERS = {
    "barrier_end": "barrier_begin",
    "end_critical": "critical",
    "end_presched_do": "presched_do",
    "end_selfsched_do": "selfsched_do",
    "end_blocksched_do": "blocksched_do",
    "end_presched_do2": "presched_do2",
    "end_selfsched_do2": "selfsched_do2",
    "end_pcase": "pcase",
    "end_askfor": "askfor",
}

_DECLS = {
    "shared_decl": (SHARED, None),
    "private_decl": (PRIVATE, None),
    "async_decl": (ASYNC, None),
    "shared_common_decl": (SHARED, "common"),
    "private_common_decl": (PRIVATE, "common"),
    "async_common_decl": (ASYNC, "common"),
}

_LEAVES = frozenset({
    "produce", "consume", "copyasync", "voidasync", "putwork",
    "forcecall", "externf", "end_declarations",
})

KNOWN_MACROS = (frozenset(_OPENERS) | frozenset(_CLOSERS) | frozenset(_DECLS)
                | _LEAVES | {"force_main", "force_sub", "join_force",
                             "taskq_decl", "usect", "csect"})

#: how a construct replicates the statements in its body.
_SINGLE_PROCESS = {"barrier", "section"}


@dataclass
class Stmt:
    """A raw Fortran line inside a routine."""

    line: int
    text: str


@dataclass
class MacroStmt:
    """A non-structural Force statement (Produce, Putwork, …)."""

    line: int
    name: str
    args: list[str]


@dataclass
class Construct:
    """A structural Force construct and its body."""

    kind: str                  #: barrier | critical | doall | pcase | section | askfor
    line: int
    macro: str = ""            #: opener macro name (distinguishes DOALL flavours)
    name: str = ""             #: Critical lock / Pcase on-variable / Askfor queue
    label: str = ""            #: DOALL / Askfor statement label
    index_vars: tuple[str, ...] = ()
    #: loop-bound text per index var (``"1, N"`` / ``"1, N, 2"``).
    bounds: tuple[str, ...] = ()
    uid: int = 0               #: program-wide construct id, document order
    body: list["Node"] = field(default_factory=list)

    def statement(self) -> str:
        """Human name of the opening statement, for messages."""
        titles = {
            "barrier": "Barrier", "critical": "Critical", "pcase": "Pcase",
            "askfor": "Askfor", "section": "Usect/Csect",
        }
        if self.kind == "doall":
            suffix = " DO2" if self.macro.endswith("2") else " DO"
            return self.macro.split("_")[0].capitalize() + suffix
        return titles.get(self.kind, self.kind)


Node = Union[Stmt, MacroStmt, Construct]


@dataclass
class Routine:
    """One Force program unit (main force or Forcesub)."""

    name: str
    kind: str                  #: 'main' | 'sub'
    np_var: str
    ident_var: str
    line: int
    body: list[Node] = field(default_factory=list)
    symbols: SymbolTable = field(default_factory=SymbolTable)


@dataclass
class ForceProgram:
    """Whole-program parse result handed to the checkers."""

    filename: str
    routines: list[Routine] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: (outer lock, inner lock, line) for every nested Critical pair.
    lock_pairs: list[tuple[str, str, int]] = field(default_factory=list)


def parse_macro_call(line: str) -> tuple[str, list[str]] | None:
    """Recognise one sed-emitted macro call, or return ``None``."""
    match = _MACRO_CALL.match(line)
    if not match:
        return None
    name, argtext = match.group(1), match.group(2)
    if not argtext:
        return name, []
    if argtext.startswith("`") and argtext.endswith("'"):
        return name, argtext[1:-1].split("',`")
    return name, [argtext]


def parse_program(source: str, filename: str = "<source>") -> ForceProgram:
    """Parse a Force source file into a construct tree per routine."""
    program = ForceProgram(filename=filename)
    parser = _Parser(program)
    sed_lines = translate_force_source(source).split("\n")
    raw_lines = source.split("\n")
    for lineno, (sed_line, raw) in enumerate(zip(sed_lines, raw_lines), 1):
        parser.feed(lineno, sed_line, raw)
    parser.finish(len(raw_lines))
    return program


class _Parser:
    def __init__(self, program: ForceProgram) -> None:
        self.program = program
        self.routine: Routine | None = None
        self.stack: list[Construct] = []
        self.next_uid = 1

    # -- helpers -------------------------------------------------------
    def _report(self, diagnostic: Diagnostic) -> None:
        self.program.diagnostics.append(diagnostic)

    def _container(self) -> list[Node] | None:
        if self.stack:
            return self.stack[-1].body
        if self.routine is not None:
            return self.routine.body
        return None

    def _append(self, node: Node) -> None:
        container = self._container()
        if container is not None:
            container.append(node)

    def _close_routine(self, lineno: int) -> None:
        for construct in reversed(self.stack):
            self._report(error(
                "F002", construct.line,
                f"{construct.statement()} opened here is never closed",
                f"add the matching End statement before line {lineno}"))
        self.stack.clear()
        if self.routine is not None:
            self.program.routines.append(self.routine)
            self.routine = None

    # -- main dispatch -------------------------------------------------
    def feed(self, lineno: int, sed_line: str, raw: str) -> None:
        call = parse_macro_call(sed_line)
        if call is None or call[0] not in KNOWN_MACROS:
            if raw.strip() and raw[:1] not in ("C", "c", "*", "!"):
                self._append(Stmt(lineno, raw))
            return
        name, args = call
        if name in ("force_main", "force_sub"):
            self._start_routine(lineno, name, args)
        elif name == "join_force":
            self._join(lineno)
        elif name in _OPENERS:
            self._open(lineno, name, args)
        elif name in ("usect", "csect"):
            self._section(lineno, name, args)
        elif name in _CLOSERS:
            self._close(lineno, name, args)
        elif name in _DECLS:
            self._declare(lineno, name, args)
        elif name == "taskq_decl":
            self._declare_symbol(Symbol(
                name=args[0].upper(), storage=TASKQ, line=lineno))
        elif name in _LEAVES:
            self._append(MacroStmt(lineno, name, args))

    def finish(self, last_line: int) -> None:
        self._close_routine(last_line)

    # -- routines ------------------------------------------------------
    def _start_routine(self, lineno: int, name: str,
                       args: list[str]) -> None:
        self._close_routine(lineno)
        args = args + [""] * (4 - len(args))
        if name == "force_main":
            routine = Routine(name=args[0], kind="main", np_var=args[1],
                              ident_var=args[2], line=lineno)
            params = ""
        else:
            routine = Routine(name=args[0], kind="sub", np_var=args[2],
                              ident_var=args[3], line=lineno)
            params = args[1]
        for var in (routine.np_var, routine.ident_var):
            if var:
                routine.symbols.declare(Symbol(var.upper(), PARAM,
                                               line=lineno))
        for pname, is_array in split_decl_list(params):
            routine.symbols.declare(Symbol(pname.upper(), PARAM,
                                           line=lineno, is_array=is_array))
        self.routine = routine

    def _join(self, lineno: int) -> None:
        if self.routine is None:
            self._report(error("F002", lineno,
                               "Join outside any Force routine"))
            return
        for construct in self.stack:
            self._report(error(
                "F004", lineno,
                f"Join nested inside {construct.statement()} "
                f"(opened at line {construct.line}): the processes inside "
                "can never all reach it",
                "close the enclosing construct before Join"))
            break
        self._append(MacroStmt(lineno, "join_force", []))

    # -- structural constructs ----------------------------------------
    def _open(self, lineno: int, name: str, args: list[str]) -> None:
        if self.routine is None:
            self._report(error(
                "F002", lineno,
                "Force construct before any Force/Forcesub header"))
            return
        kind = _OPENERS[name]
        construct = Construct(kind=kind, line=lineno, macro=name,
                              uid=self.next_uid)
        self.next_uid += 1
        if name == "critical":
            construct.name = args[0]
            self._record_lock_nesting(lineno, args[0])
        elif name in ("presched_do", "selfsched_do", "blocksched_do"):
            construct.label = args[0]
            construct.index_vars = (args[1],)
            construct.bounds = (args[2],) if len(args) > 2 else ("",)
        elif name in ("presched_do2", "selfsched_do2"):
            construct.label = args[0]
            construct.index_vars = (args[1], args[3])
            construct.bounds = (args[2] if len(args) > 2 else "",
                                args[4] if len(args) > 4 else "")
        elif name == "pcase":
            construct.name = args[0] if args else ""
        elif name == "askfor":
            construct.label = args[0]
            construct.index_vars = (args[1],)
            construct.name = args[2]
        if kind == "barrier":
            self._check_barrier_nesting(lineno)
        self._append(construct)
        self.stack.append(construct)

    def _section(self, lineno: int, name: str, args: list[str]) -> None:
        if self.stack and self.stack[-1].kind == "section":
            self.stack.pop()
        if self.stack and self.stack[-1].kind == "pcase":
            construct = Construct(kind="section", line=lineno, macro=name,
                                  name=name, uid=self.next_uid,
                                  label=args[0] if args else "")
            self.next_uid += 1
            self._append(construct)
            self.stack.append(construct)
            return
        self._report(error(
            "F002", lineno,
            f"{'Usect' if name == 'usect' else 'Csect'} outside any Pcase",
            "open a Pcase before the first section"))

    def _check_barrier_nesting(self, lineno: int) -> None:
        for construct in self.stack:
            if construct.kind in ("critical", "doall", "pcase", "section",
                                  "askfor"):
                self._report(error(
                    "F004", lineno,
                    f"Barrier nested inside {construct.statement()} "
                    f"(opened at line {construct.line}): processes holding "
                    "the construct cannot all reach the barrier — deadlock",
                    "move the Barrier outside the enclosing construct"))
                return
            if construct.kind == "barrier":
                self._report(error(
                    "F004", lineno,
                    f"Barrier nested inside the Barrier body opened at "
                    f"line {construct.line}: the body runs on one process, "
                    "which then waits for everyone — deadlock",
                    "close the enclosing Barrier first"))
                return

    def _record_lock_nesting(self, lineno: int, lock: str) -> None:
        for construct in self.stack:
            if construct.kind != "critical":
                continue
            outer = construct.name.upper()
            inner = lock.upper()
            if outer == inner:
                self._report(error(
                    "F005", lineno,
                    f"Critical '{lock}' nested inside itself (outer at "
                    f"line {construct.line}): the second acquire can "
                    "never succeed",
                    "use a second lock name or restructure the sections"))
            else:
                self.program.lock_pairs.append((outer, inner, lineno))

    def _close(self, lineno: int, name: str, args: list[str]) -> None:
        opener = _CLOSERS[name]
        statement = _end_statement(name)
        # `End pcase` implicitly closes the section in flight.
        if (name == "end_pcase" and self.stack
                and self.stack[-1].kind == "section"):
            self.stack.pop()
        if self.stack and self.stack[-1].macro == opener:
            construct = self.stack.pop()
            self._check_label(lineno, statement, construct, args)
            return
        if any(c.macro == opener for c in self.stack):
            while self.stack and self.stack[-1].macro != opener:
                dangling = self.stack.pop()
                self._report(error(
                    "F002", lineno,
                    f"{statement} closes over {dangling.statement()} "
                    f"opened at line {dangling.line}, which is never closed",
                    f"close the inner {dangling.statement()} first"))
            construct = self.stack.pop()
            self._check_label(lineno, statement, construct, args)
            return
        if (self.stack and self.stack[-1].kind == "doall"
                and _OPENERS.get(opener) == "doall"):
            construct = self.stack.pop()
            self._report(error(
                "F003", lineno,
                f"{statement} closes the {construct.statement()} opened "
                f"at line {construct.line} — the loop kinds do not match",
                f"use 'End {construct.statement()}'"))
            return
        self._report(error(
            "F002", lineno,
            f"{statement} without a matching open construct",
            "remove it or add the opening statement"))

    def _check_label(self, lineno: int, statement: str,
                     construct: Construct, args: list[str]) -> None:
        if construct.kind not in ("doall", "askfor"):
            return
        closer_label = args[0] if args else ""
        if closer_label and construct.label and \
                closer_label != construct.label:
            self._report(error(
                "F003", lineno,
                f"{statement} is labelled {closer_label} but the "
                f"{construct.statement()} at line {construct.line} is "
                f"labelled {construct.label}",
                f"relabel the End statement {construct.label}"))

    # -- declarations --------------------------------------------------
    def _declare(self, lineno: int, name: str, args: list[str]) -> None:
        storage, common_kind = _DECLS[name]
        if common_kind is None:
            type_, items, common = args[0], args[1], None
        else:
            type_, items, common = "", args[1], args[0]
        for var, is_array in split_decl_list(items):
            self._declare_symbol(Symbol(
                name=var.upper(), storage=storage, type_=type_,
                common=common, line=lineno, is_array=is_array))

    def _declare_symbol(self, symbol: Symbol) -> None:
        if self.routine is not None:
            self.routine.symbols.declare(symbol)


def _end_statement(closer: str) -> str:
    titles = {
        "barrier_end": "End barrier", "end_critical": "End critical",
        "end_pcase": "End pcase", "end_askfor": "End askfor",
        "end_presched_do": "End presched DO",
        "end_selfsched_do": "End selfsched DO",
        "end_blocksched_do": "End blocksched DO",
        "end_presched_do2": "End presched DO2",
        "end_selfsched_do2": "End selfsched DO2",
    }
    return titles.get(closer, closer)


# ----------------------------------------------------------------------
# context-aware traversal
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StmtContext:
    """Replication context of one statement inside a routine."""

    critical_depth: int = 0    #: enclosing Critical sections
    single_depth: int = 0      #: enclosing Barrier bodies / Pcase sections
    askfor_depth: int = 0
    doall_indices: tuple[str, ...] = ()
    guarded: bool = False      #: inside IF (… ident …) THEN

    @property
    def replicated(self) -> bool:
        """True when every process executes the statement."""
        return self.single_depth == 0 and not self.guarded


def walk_statements(routine: Routine) -> Iterator[tuple[Stmt, StmtContext]]:
    """Yield each Fortran statement with its replication context.

    The ``IF (ME .EQ. …) THEN`` guard stack is shared across construct
    boundaries, matching document order, so a Barrier inside a guarded
    region is handled the way the runtime sees it.
    """
    if_stack: list[bool] = []
    ident = routine.ident_var

    def visit(nodes: list[Node], critical: int, single: int, askfor: int,
              indices: tuple[str, ...]) -> Iterator[tuple[Stmt, StmtContext]]:
        for node in nodes:
            if isinstance(node, Construct):
                yield from visit(
                    node.body,
                    critical + (node.kind == "critical"),
                    single + (node.kind in _SINGLE_PROCESS),
                    askfor + (node.kind == "askfor"),
                    indices + node.index_vars
                    if node.kind == "doall" else indices)
            elif isinstance(node, Stmt):
                form = fortranish.classify_if(node.text)
                if form is not None:
                    kind = form[0]
                    if kind == "end_if":
                        if if_stack:
                            if_stack.pop()
                        continue
                    if kind == "block_if":
                        if_stack.append(
                            bool(ident)
                            and fortranish.mentions(ident, form[1]))
                        continue
                    if kind == "else_if":
                        if if_stack:
                            if_stack[-1] = (
                                bool(ident)
                                and fortranish.mentions(ident, form[1]))
                        continue
                    if kind == "else":
                        if if_stack:
                            if_stack[-1] = False
                        continue
                    # logical IF: analyse the guarded tail statement.
                    cond, tail = form[1], form[2]
                    guarded = (any(if_stack)
                               or (bool(ident)
                                   and fortranish.mentions(ident, cond)))
                    yield (Stmt(node.line, tail), StmtContext(
                        critical, single, askfor, indices, guarded))
                    continue
                yield (node, StmtContext(
                    critical, single, askfor, indices, any(if_stack)))

    yield from visit(routine.body, 0, 0, 0, ())


def iter_constructs(routine: Routine) -> Iterator[Construct]:
    """Every construct in the routine, document order, any depth."""
    def visit(nodes: list[Node]) -> Iterator[Construct]:
        for node in nodes:
            if isinstance(node, Construct):
                yield node
                yield from visit(node.body)

    yield from visit(routine.body)


def iter_macro_stmts(routine: Routine) -> Iterator[MacroStmt]:
    """Every non-structural Force statement, document order."""
    def visit(nodes: list[Node]) -> Iterator[MacroStmt]:
        for node in nodes:
            if isinstance(node, MacroStmt):
                yield node
            elif isinstance(node, Construct):
                yield from visit(node.body)

    yield from visit(routine.body)
