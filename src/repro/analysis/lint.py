"""F011: the silent-keyword lint.

Fixed-form Fortran treats ``C`` (or ``*``/``!``) in column one as a
comment, so a Force statement written flush-left — ``Critical``,
``Consume``, ``Copy``, ``Csect`` all start with *C* — silently passes
through the sed stage as a comment line.  The program still compiles;
the synchronization just never happens.  This lint replays every
comment-protected line through the translation rules and flags the
ones that would have become a construct had they been indented.
"""

from __future__ import annotations

from repro.analysis.construct_parser import KNOWN_MACROS, parse_macro_call
from repro.analysis.diagnostics import Diagnostic, warning
from repro.sedstage import compiled_force_program


def check_silent_keywords(source: str) -> list[Diagnostic]:
    program = compiled_force_program()
    diagnostics: list[Diagnostic] = []
    for lineno, line in enumerate(source.split("\n"), 1):
        if line[:1] not in ("C", "c", "*", "!"):
            continue
        edited = program.run(line + "\n").rstrip("\n")
        if edited == line:
            continue
        call = parse_macro_call(edited)
        if call is None or call[0] not in KNOWN_MACROS:
            continue
        keyword = line.split()[0]
        diagnostics.append(warning(
            "F011", lineno,
            f"'{keyword}' starts in column one, so this Force statement "
            "is treated as a Fortran comment and never translated",
            "indent the statement (Force statements must not start in "
            "column 1)"))
    return diagnostics
