"""F006/F007/F008/F012: asynchronous-variable and taskq protocol.

``Produce``/``Consume``/``Copy``/``Void`` implement the full/empty
protocol and are only meaningful on variables declared ``Async`` (the
HEP's full/empty bit, two locks elsewhere — paper §4.1.3).  Using them
on ordinary variables either deadlocks or silently skips the
synchronization.  A ``Consume`` of a variable no statement ever
``Produce``s blocks forever once reached.  Likewise ``Askfor``/
``Putwork`` only work against a declared ``Taskq``.
"""

from __future__ import annotations

from repro.analysis.construct_parser import (
    ForceProgram,
    iter_constructs,
    iter_macro_stmts,
)
from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.analysis.symbols import ASYNC, TASKQ, base_name

_STATEMENTS = {"consume": "Consume", "copyasync": "Copy",
               "voidasync": "Void"}


def check_protocol(program: ForceProgram) -> list[Diagnostic]:
    produced = set()
    program_async = set()
    taskqs = set()
    for routine in program.routines:
        program_async.update(s.name for s in
                             routine.symbols.with_storage(ASYNC))
        taskqs.update(s.name for s in routine.symbols.with_storage(TASKQ))
        for macro in iter_macro_stmts(routine):
            if macro.name == "produce" and macro.args:
                produced.add(base_name(macro.args[0]).upper())

    diagnostics: list[Diagnostic] = []
    for routine in program.routines:
        for macro in iter_macro_stmts(routine):
            if macro.name == "produce":
                diagnostics.extend(_check_produce(routine, macro,
                                                  program_async))
            elif macro.name in _STATEMENTS:
                diagnostics.extend(_check_consume_family(
                    routine, macro, program_async, produced))
            elif macro.name == "putwork":
                diagnostics.extend(_check_queue(
                    macro, base_name(macro.args[0]), "Putwork", taskqs))
        for construct in iter_constructs(routine):
            if construct.kind == "askfor":
                diagnostics.extend(_check_queue(
                    construct, construct.name, "Askfor", taskqs))
    return diagnostics


def _is_async(routine, name: str, program_async: set[str]) -> bool:
    symbol = routine.symbols.lookup(name)
    if symbol is not None and symbol.storage != "param":
        return symbol.storage == ASYNC
    return name.upper() in program_async


def _check_produce(routine, macro, program_async) -> list[Diagnostic]:
    target = base_name(macro.args[0])
    if _is_async(routine, target, program_async):
        return []
    symbol = routine.symbols.lookup(target)
    actual = (f"declared {symbol.storage.capitalize()}" if symbol
              else "never declared Async")
    return [error(
        "F008", macro.line,
        f"Produce into '{target}', which is {actual}: there is no "
        "full/empty cell to fill",
        f"declare it 'Async <type> {target}'")]


def _check_consume_family(routine, macro, program_async,
                          produced) -> list[Diagnostic]:
    var = base_name(macro.args[0])
    statement = _STATEMENTS[macro.name]
    if not _is_async(routine, var, program_async):
        symbol = routine.symbols.lookup(var)
        actual = (f"declared {symbol.storage.capitalize()}" if symbol
                  else "never declared Async")
        return [error(
            "F006", macro.line,
            f"{statement} of '{var}', which is {actual}: the full/empty "
            "wait has nothing to wait on",
            f"declare it 'Async <type> {var}'")]
    if macro.name == "consume" and var.upper() not in produced:
        return [warning(
            "F007", macro.line,
            f"Consume of '{var}' but no statement ever Produces it: "
            "the consumer blocks forever once it gets here",
            f"add a 'Produce {var} = …' on some process, or Copy an "
            "initial value in")]
    return []


def _check_queue(node, queue: str, statement: str,
                 taskqs: set[str]) -> list[Diagnostic]:
    if queue.upper() in taskqs:
        return []
    return [error(
        "F012", node.line,
        f"{statement} uses queue '{queue}', which is not declared "
        "with Taskq",
        f"add 'Taskq {queue}(<size>)' to the declarations")]
