"""Small Fortran statement classifiers used by the analyzer.

The analyzer does not need a full Fortran front end: the race and
scope checkers only have to recognise assignments (and their
left-hand-side subscripts), the ``IF``/``ELSE``/``END IF`` block forms
(to spot sections guarded on the process identifier), and statement
labels.  Everything here is case-insensitive and tolerant of the
relaxed fixed form the rest of the pipeline accepts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: statement keywords that can open a line and are never assignments.
_KEYWORDS = frozenset({
    "IF", "DO", "ELSE", "END", "ENDIF", "ENDDO", "THEN", "CONTINUE",
    "WRITE", "READ", "PRINT", "FORMAT", "CALL", "RETURN", "STOP",
    "GOTO", "GO", "DATA", "DIMENSION", "COMMON", "PARAMETER",
    "INTEGER", "REAL", "LOGICAL", "COMPLEX", "DOUBLE", "CHARACTER",
    "SUBROUTINE", "FUNCTION", "PROGRAM", "IMPLICIT", "EXTERNAL",
    "INTRINSIC", "SAVE", "WHILE",
})

_LABEL = re.compile(r"^\s*(\d+)\s+")
_IDENT = re.compile(r"\s*([A-Za-z]\w*)")
_END_IF = re.compile(r"^END\s*IF$", re.IGNORECASE)
_ELSE = re.compile(r"^ELSE\b", re.IGNORECASE)
_ELSE_IF = re.compile(r"^ELSE\s*IF\s*\(", re.IGNORECASE)
_IF = re.compile(r"^IF\s*\(", re.IGNORECASE)


@dataclass(frozen=True)
class Assignment:
    """LHS of a Fortran assignment statement."""

    name: str                   #: target identifier (original case)
    subscript: str | None       #: text inside ``NAME( ... )``, if any


def strip_label(text: str) -> str:
    """Drop a leading numeric statement label."""
    return _LABEL.sub("", text.strip(), count=1)


def _balanced(text: str, start: int) -> int:
    """Index just past the ``)`` matching the ``(`` at ``start``."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def parse_assignment(text: str) -> Assignment | None:
    """Recognise ``NAME = expr`` / ``NAME(subs) = expr`` statements.

    ``DO`` headers, I/O statements and other keyword statements return
    ``None`` — a ``DO`` loop's index update is the loop's own business.
    """
    body = strip_label(text)
    match = _IDENT.match(body)
    if not match:
        return None
    name = match.group(1)
    if name.upper() in _KEYWORDS:
        return None
    rest = body[match.end():].lstrip()
    subscript: str | None = None
    if rest.startswith("("):
        end = _balanced(rest, 0)
        if end < 0:
            return None
        subscript = rest[1:end - 1]
        rest = rest[end:].lstrip()
    if not rest.startswith("=") or rest.startswith("=="):
        return None
    return Assignment(name=name, subscript=subscript)


# IF-form classification results: ("block_if", cond) | ("else_if", cond)
# | ("else",) | ("end_if",) | ("logical_if", cond, tail) | None.
def classify_if(text: str) -> tuple | None:
    body = strip_label(text)
    if _END_IF.match(body):
        return ("end_if",)
    if _ELSE_IF.match(body):
        cond, _tail = _extract_condition(body[body.upper().index("IF") + 2:])
        return ("else_if", cond)
    if _ELSE.match(body):
        return ("else",)
    if _IF.match(body):
        cond, tail = _extract_condition(body[2:])
        if cond is None:
            return None
        if tail.upper() == "THEN":
            return ("block_if", cond)
        return ("logical_if", cond, tail)
    return None


def _extract_condition(text: str) -> tuple[str | None, str]:
    """Split ``"(cond) tail"`` into the condition and the tail."""
    text = text.lstrip()
    if not text.startswith("("):
        return None, ""
    end = _balanced(text, 0)
    if end < 0:
        return None, ""
    return text[1:end - 1], text[end:].strip()


def mentions(identifier: str, text: str) -> bool:
    """Whole-word, case-insensitive occurrence test."""
    return re.search(rf"\b{re.escape(identifier)}\b", text,
                     re.IGNORECASE) is not None
