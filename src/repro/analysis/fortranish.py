"""Small Fortran statement classifiers used by the analyzer.

The analyzer does not need a full Fortran front end: the race and
scope checkers only have to recognise assignments (and their
left-hand-side subscripts), the ``IF``/``ELSE``/``END IF`` block forms
(to spot sections guarded on the process identifier), and statement
labels.  Everything here is case-insensitive and tolerant of the
relaxed fixed form the rest of the pipeline accepts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: statement keywords that can open a line and are never assignments.
_KEYWORDS = frozenset({
    "IF", "DO", "ELSE", "END", "ENDIF", "ENDDO", "THEN", "CONTINUE",
    "WRITE", "READ", "PRINT", "FORMAT", "CALL", "RETURN", "STOP",
    "GOTO", "GO", "DATA", "DIMENSION", "COMMON", "PARAMETER",
    "INTEGER", "REAL", "LOGICAL", "COMPLEX", "DOUBLE", "CHARACTER",
    "SUBROUTINE", "FUNCTION", "PROGRAM", "IMPLICIT", "EXTERNAL",
    "INTRINSIC", "SAVE", "WHILE",
})

_LABEL = re.compile(r"^\s*(\d+)\s+")
_IDENT = re.compile(r"\s*([A-Za-z]\w*)")
_END_IF = re.compile(r"^END\s*IF$", re.IGNORECASE)
_ELSE = re.compile(r"^ELSE\b", re.IGNORECASE)
_ELSE_IF = re.compile(r"^ELSE\s*IF\s*\(", re.IGNORECASE)
_IF = re.compile(r"^IF\s*\(", re.IGNORECASE)


@dataclass(frozen=True)
class Assignment:
    """LHS of a Fortran assignment statement."""

    name: str                   #: target identifier (original case)
    subscript: str | None       #: text inside ``NAME( ... )``, if any
    rhs: str = ""               #: the expression after ``=``
    #: conjunction of logical-IF conditions wrapping the assignment
    #: (``IF (P .EQ. ME) X = 1`` parses with ``guard="P .EQ. ME"``)
    guard: str | None = None


def strip_label(text: str) -> str:
    """Drop a leading numeric statement label."""
    return _LABEL.sub("", text.strip(), count=1)


def _balanced(text: str, start: int) -> int:
    """Index just past the ``)`` matching the ``(`` at ``start``."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def parse_assignment(text: str) -> Assignment | None:
    """Recognise ``NAME = expr`` / ``NAME(subs) = expr`` statements.

    Logical-IF one-liners unwrap: ``IF (P .EQ. ME) X = 1`` parses as
    the embedded assignment with the predicate recorded in ``guard``
    (several nested logical IFs conjoin their conditions).  ``DO``
    headers, I/O statements and other keyword statements return
    ``None`` — a ``DO`` loop's index update is the loop's own business.
    """
    body = strip_label(text)
    guards: list[str] = []
    # Unwrap logical-IF one-liners: the guarded tail may itself be an
    # assignment (the common ME-guard idiom) or another logical IF.
    while True:
        form = classify_if(body)
        if form is None or form[0] != "logical_if":
            break
        guards.append(form[1])
        body = form[2]
    match = _IDENT.match(body)
    if not match:
        return None
    name = match.group(1)
    if name.upper() in _KEYWORDS:
        return None
    rest = body[match.end():].lstrip()
    subscript: str | None = None
    if rest.startswith("("):
        end = _balanced(rest, 0)
        if end < 0:
            return None
        subscript = rest[1:end - 1]
        rest = rest[end:].lstrip()
    if not rest.startswith("=") or rest.startswith("=="):
        return None
    return Assignment(name=name, subscript=subscript,
                      rhs=rest[1:].strip(),
                      guard=" .AND. ".join(guards) if guards else None)


# IF-form classification results: ("block_if", cond) | ("else_if", cond)
# | ("else",) | ("end_if",) | ("logical_if", cond, tail) | None.
def classify_if(text: str) -> tuple | None:
    body = strip_label(text)
    if _END_IF.match(body):
        return ("end_if",)
    if _ELSE_IF.match(body):
        cond, _tail = _extract_condition(body[body.upper().index("IF") + 2:])
        return ("else_if", cond)
    if _ELSE.match(body):
        return ("else",)
    if _IF.match(body):
        cond, tail = _extract_condition(body[2:])
        if cond is None:
            return None
        if tail.upper() == "THEN":
            return ("block_if", cond)
        return ("logical_if", cond, tail)
    return None


def _extract_condition(text: str) -> tuple[str | None, str]:
    """Split ``"(cond) tail"`` into the condition and the tail."""
    text = text.lstrip()
    if not text.startswith("("):
        return None, ""
    end = _balanced(text, 0)
    if end < 0:
        return None, ""
    return text[1:end - 1], text[end:].strip()


def mentions(identifier: str, text: str) -> bool:
    """Whole-word, case-insensitive occurrence test."""
    return re.search(rf"\b{re.escape(identifier)}\b", text,
                     re.IGNORECASE) is not None


def substitute(text: str, mapping: dict) -> str:
    """Whole-word replace each ``mapping`` key (case-insensitive).

    Used to rewrite a Forcesub's formal parameters to the caller's
    actual arguments inside subscripts and guard predicates.
    """
    if not mapping or not text:
        return text
    folded = {key.upper(): value for key, value in mapping.items()}
    pattern = "|".join(re.escape(key) for key in folded)
    return re.sub(rf"\b(?:{pattern})\b",
                  lambda m: folded[m.group(0).upper()], text,
                  flags=re.IGNORECASE)


# ----------------------------------------------------------------------
# affine subscript arithmetic
# ----------------------------------------------------------------------
#: key used for the constant term of an affine form.
CONST = ""

_AFFINE_TOKEN = re.compile(r"\s*(\d+|[A-Za-z]\w*|[()+\-*])")


class _NotAffine(Exception):
    pass


def parse_affine(text: str) -> dict[str, int] | None:
    """Parse an integer expression into ``{identifier: coeff}`` form.

    The constant term lives under the :data:`CONST` key; identifiers
    are upper-cased.  ``"2*I + J - 1"`` gives ``{"I": 2, "J": 1,
    "": -1}``.  Anything non-linear (products of identifiers,
    division, function calls) returns ``None``.
    """
    tokens: list[str] = []
    pos = 0
    text = text.strip()
    while pos < len(text):
        match = _AFFINE_TOKEN.match(text, pos)
        if not match:
            return None
        tokens.append(match.group(1))
        pos = match.end()
    try:
        form, rest = _affine_sum(tokens)
    except _NotAffine:
        return None
    if rest:
        return None
    return form


def _affine_sum(tokens: list[str]) -> tuple[dict[str, int], list[str]]:
    sign = 1
    while tokens and tokens[0] in "+-":
        sign = -sign if tokens[0] == "-" else sign
        tokens = tokens[1:]
    total, tokens = _affine_term(tokens)
    total = _affine_scale(total, sign)
    while tokens and tokens[0] in "+-":
        sign = 1 if tokens[0] == "+" else -1
        term, tokens = _affine_term(tokens[1:])
        for key, coeff in term.items():
            total[key] = total.get(key, 0) + sign * coeff
    return total, tokens


def _affine_term(tokens: list[str]) -> tuple[dict[str, int], list[str]]:
    factors: list[dict[str, int]] = []
    factor, tokens = _affine_factor(tokens)
    factors.append(factor)
    while tokens and tokens[0] == "*":
        factor, tokens = _affine_factor(tokens[1:])
        factors.append(factor)
    product = {CONST: 1}
    for factor in factors:
        # A product is linear only when at most one side carries ids.
        if set(product) != {CONST} and set(factor) != {CONST}:
            raise _NotAffine()
        if set(factor) == {CONST}:
            product = _affine_scale(product, factor[CONST])
        else:
            product = _affine_scale(factor, product.get(CONST, 0))
    return product, tokens


def _affine_factor(tokens: list[str]) -> tuple[dict[str, int], list[str]]:
    if not tokens:
        raise _NotAffine()
    head, rest = tokens[0], tokens[1:]
    if head == "-":
        form, rest = _affine_factor(rest)
        return _affine_scale(form, -1), rest
    if head == "(":
        form, rest = _affine_sum(rest)
        if not rest or rest[0] != ")":
            raise _NotAffine()
        return form, rest[1:]
    if head.isdigit():
        return {CONST: int(head)}, rest
    if head[0].isalpha():
        if rest and rest[0] == "(":      # array ref / function call
            raise _NotAffine()
        return {head.upper(): 1}, rest
    raise _NotAffine()


def _affine_scale(form: dict[str, int], factor: int) -> dict[str, int]:
    return {key: coeff * factor for key, coeff in form.items()}


def affine_difference(a: dict[str, int],
                      b: dict[str, int]) -> int | None:
    """``a - b`` when it reduces to a constant, else ``None``."""
    keys = set(a) | set(b)
    for key in keys:
        if key != CONST and a.get(key, 0) != b.get(key, 0):
            return None
    return a.get(CONST, 0) - b.get(CONST, 0)


def split_subscript(subscript: str) -> list[str]:
    """Split a subscript into dimension expressions (top-level commas)."""
    dims: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in subscript:
        if ch == "," and depth == 0:
            dims.append("".join(current).strip())
            current = []
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
        current.append(ch)
    dims.append("".join(current).strip())
    return dims


# ----------------------------------------------------------------------
# read/write access extraction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccessRef:
    """One variable reference inside a statement."""

    name: str                   #: identifier (original case)
    subscript: str | None       #: text inside ``NAME( ... )``, if any
    is_write: bool


_STRING = re.compile(r"'[^']*'|\"[^\"]*\"")
_DOTOP = re.compile(r"\.[A-Za-z]+\.")
_REF = re.compile(r"([A-Za-z]\w*)\s*(\()?")

_DO_HEADER = re.compile(
    r"^DO\s+\d+\s+[A-Za-z]\w*\s*=\s*(.*)$", re.IGNORECASE)
_WRITE_STMT = re.compile(r"^(?:WRITE|PRINT)\s*(.*)$", re.IGNORECASE)
_READ_STMT = re.compile(r"^READ\s*(.*)$", re.IGNORECASE)
_CALL_STMT = re.compile(r"^CALL\s+\w+\s*\((.*)\)\s*$", re.IGNORECASE)
_IO_UNIT = re.compile(r"^\s*\([^)]*\)")

#: statements that reference no user variables at all.
_INERT = re.compile(
    r"^(?:CONTINUE|RETURN|STOP|END(?:\s*IF|\s*DO)?|GO\s*TO\s+\d+|"
    r"GOTO\s+\d+|FORMAT\b.*|IMPLICIT\b.*|DATA\b.*|DIMENSION\b.*|"
    r"COMMON\b.*|INTEGER\b.*|REAL\b.*|LOGICAL\b.*|COMPLEX\b.*|"
    r"DOUBLE\b.*|CHARACTER\b.*|PARAMETER\b.*|EXTERNAL\b.*|"
    r"INTRINSIC\b.*|SAVE\b.*|SUBROUTINE\b.*|FUNCTION\b.*|"
    r"PROGRAM\b.*)$", re.IGNORECASE)


def expression_reads(expr: str) -> list[AccessRef]:
    """Every variable reference in an expression, as read accesses.

    Array references keep their subscript text (and the subscript's
    own identifiers are reported as scalar reads too).  String
    literals and ``.EQ.``-style operators are ignored; intrinsic
    function "calls" surface as array-style reads and are filtered
    out later by the symbol table (``NINT`` is never declared).
    """
    expr = _DOTOP.sub(" ", _STRING.sub(" ", expr))
    reads: list[AccessRef] = []
    pos = 0
    while pos < len(expr):
        match = _REF.search(expr, pos)
        if not match:
            break
        name = match.group(1)
        if match.group(2):      # NAME ( ... ) — array ref or call
            end = _balanced(expr, match.end() - 1)
            if end < 0:
                subscript = expr[match.end():]
                pos = len(expr)
            else:
                subscript = expr[match.end():end - 1]
                pos = end
            reads.append(AccessRef(name, subscript, False))
            reads.extend(expression_reads(subscript))
        else:
            reads.append(AccessRef(name, None, False))
            pos = match.end()
    return reads


def statement_accesses(text: str) -> tuple[list[AccessRef], str | None]:
    """Classify one Fortran statement into variable accesses.

    Returns ``(accesses, guard)`` where ``guard`` is the logical-IF
    predicate wrapping the statement, if any.  Handles assignments
    (including logical-IF one-liners), ``DO`` headers, ``IF``/
    ``ELSE IF`` conditions, I/O statements and ``CALL`` argument
    lists; declaration-like statements yield nothing.
    """
    body = strip_label(text)
    accesses: list[AccessRef] = []

    form = classify_if(body)
    if form is not None:
        if form[0] in ("end_if", "else"):
            return [], None
        if form[0] in ("block_if", "else_if"):
            return expression_reads(form[1]), None
        # logical IF: condition reads plus the guarded tail.
        cond, tail = form[1], form[2]
        inner, nested_guard = statement_accesses(tail)
        guard = (f"{cond} .AND. {nested_guard}" if nested_guard
                 else cond)
        return expression_reads(cond) + inner, guard

    if _INERT.match(body):
        return [], None

    assignment = parse_assignment(body)
    if assignment is not None:
        accesses.append(AccessRef(assignment.name, assignment.subscript,
                                  True))
        if assignment.subscript is not None:
            accesses.extend(expression_reads(assignment.subscript))
        accesses.extend(expression_reads(assignment.rhs))
        return accesses, None

    do_header = _DO_HEADER.match(body)
    if do_header:
        return expression_reads(do_header.group(1)), None

    read_stmt = _READ_STMT.match(body)
    if read_stmt:
        items = _IO_UNIT.sub("", read_stmt.group(1))
        return [AccessRef(ref.name, ref.subscript, True)
                for ref in expression_reads(items)], None

    write_stmt = _WRITE_STMT.match(body)
    if write_stmt:
        items = _IO_UNIT.sub("", write_stmt.group(1))
        return expression_reads(items), None

    call_stmt = _CALL_STMT.match(body)
    if call_stmt:
        # Plain CALL arguments are modelled as reads; by-reference
        # writes through non-Force subroutines are out of scope
        # (Forcecall argument binding is handled interprocedurally).
        return expression_reads(call_stmt.group(1)), None

    return expression_reads(body), None
