"""Static analysis for Force programs (``force check``).

The pipeline happily *translates* programs that misuse the Force
constructs — a Shared write outside any Critical, a Barrier nested
inside a Critical, a Consume of a variable nothing ever Produces — and
the bug only surfaces as a nondeterministic run or a deadlock at
simulation time.  This package catches that whole class at compile
time: it parses the sed-stage output into a construct tree with a
symbol table and runs a diagnostic suite over it.

Checker families and their codes:

=====  ================================================================
F001   shared-write race in replicated code (``races``)
F002   unmatched/unclosed construct (``construct_parser``)
F003   DOALL/Askfor label or kind mismatch (``construct_parser``)
F004   Barrier/Join nested inside another construct (``construct_parser``)
F005   deadlock-prone Critical nesting (``construct_parser``+``locks``)
F006   Consume/Copy/Void of a non-Async variable (``protocol``)
F007   Consume with no reachable Produce (``protocol``)
F008   Produce into a non-Async variable (``protocol``)
F009   Private write in a single-process section (``scope``)
F010   declaration conflict / common shadowing (``scope``)
F011   Force statement in column one parsed as comment (``lint``)
F012   Askfor/Putwork queue not declared with Taskq (``protocol``)
=====  ================================================================

Usage::

    from repro.analysis import check_source
    diagnostics = check_source(source, filename="prog.frc")
"""

from __future__ import annotations

from repro.analysis.construct_parser import ForceProgram, parse_program
from repro.analysis.diagnostics import (
    CATALOG,
    Diagnostic,
    Severity,
    count_errors,
    count_warnings,
    error,
)
from repro.analysis.lint import check_silent_keywords
from repro.analysis.locks import check_lock_order
from repro.analysis.protocol import check_protocol
from repro.analysis.races import check_races
from repro.analysis.renderer import render_json, render_text
from repro.analysis.scope import check_scope
from repro.analysis.summaries import ProgramSummary, summarize

__all__ = [
    "CATALOG",
    "Diagnostic",
    "ForceProgram",
    "ProgramSummary",
    "Severity",
    "analyze_source",
    "check_file",
    "check_source",
    "count_errors",
    "count_warnings",
    "parse_program",
    "render_json",
    "render_text",
    "summarize",
]


def analyze_source(source: str, filename: str = "<source>"
                   ) -> tuple[list[Diagnostic], ProgramSummary | None]:
    """Run every checker over one Force source.

    Returns the sorted diagnostics together with the interprocedural
    :class:`ProgramSummary` (``None`` when no program unit parsed) so
    callers that also want analysis facts — the ``--facts`` emitter,
    the compiled layer's kernel gate — reuse one summary instead of
    re-partitioning every routine.
    """
    diagnostics = list(check_silent_keywords(source))
    program = parse_program(source, filename)
    diagnostics.extend(program.diagnostics)
    summary: ProgramSummary | None = None
    if not program.routines:
        diagnostics.append(error(
            "F002", 1,
            "no Force program unit found (no Force/Forcesub header)",
            "start the program with 'Force NAME of NP ident ME'"))
    else:
        summary = summarize(program)
        diagnostics.extend(check_races(program, summary))
        diagnostics.extend(check_scope(program))
        diagnostics.extend(check_protocol(program))
        diagnostics.extend(check_lock_order(program, summary))
    diagnostics.sort(key=lambda d: (d.line, d.code))
    return [d.with_file(filename) for d in diagnostics], summary


def check_source(source: str,
                 filename: str = "<source>") -> list[Diagnostic]:
    """Run every checker over one Force source; sorted diagnostics."""
    return analyze_source(source, filename)[0]


def check_file(path: str) -> list[Diagnostic]:
    """Check one ``.frc`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return check_source(handle.read(), filename=path)
