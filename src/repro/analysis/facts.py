"""Machine-readable analysis facts (``force check --facts FILE``).

The race engine's verdicts are useful beyond diagnostics: the
compiled layer can only lower a DOALL body to an array kernel when
something has *proven* it race-free (ROADMAP item 2), and the planned
differential fuzzer needs analysis verdicts as its oracle (item 4).
This module distils a :class:`~repro.analysis.summaries.ProgramSummary`
into a JSON document the rest of the system can trust:

* per-DOALL ``race_free`` — no detected race touches an access inside
  that loop's body (matched by construct uid);
* per-variable ``privatizable`` — a shared scalar whose every phase of
  use *starts* with an unconditional replicated write, so the value
  never crosses a synchronization point or a process boundary and each
  process could keep a private copy (the standard fix for a racy
  temporary);
* per-critical-name contention — every acquisition site and every
  shared variable accessed under the lock, the input for lock-split
  or adaptive-lock decisions;
* the confirmed races themselves, as two-sided witness records.

:func:`validate_facts` is the schema check CI runs; keep it in sync
with :data:`FACTS_VERSION` and the builders below.
"""

from __future__ import annotations

import json

from repro.analysis.construct_parser import iter_constructs
from repro.analysis.races import RaceReport, detect
from repro.analysis.summaries import ProgramSummary

FACTS_VERSION = 1


def build_file_facts(filename: str, summary: ProgramSummary,
                     reports: list[RaceReport] | None = None) -> dict:
    """Facts for one checked file."""
    if reports is None:
        reports = detect(summary)
    racy_uids = {uid for report in reports for uid in report.frame_uids}
    racy_keys = {report.key for report in reports}

    routines = []
    doalls = []
    for routine in summary.program.routines:
        name = routine.name.upper()
        rp = summary.phases.get(name)
        routines.append({
            "name": name,
            "kind": routine.kind,
            "phases": rp.phase_count if rp else 1,
            "statements": rp.statement_count if rp else 0,
        })
        for construct in iter_constructs(routine):
            if construct.kind != "doall":
                continue
            doalls.append({
                "uid": construct.uid,
                "routine": name,
                "label": construct.label,
                "line": construct.line,
                "macro": construct.macro,
                "indices": [v.upper() for v in construct.index_vars],
                "race_free": construct.uid not in racy_uids,
            })

    return {
        "file": filename,
        "statements": summary.statement_count,
        "routines": routines,
        "doalls": doalls,
        "privatizable": _privatizable(summary),
        "criticals": _criticals(summary),
        "races": [_race_record(report) for report in reports],
        "notes": list(summary.notes),
        "racy_variables": sorted(racy_keys),
    }


def build_facts(per_file: list[tuple[str, ProgramSummary]]) -> dict:
    """The whole ``--facts`` document for one ``force check`` run.

    The document is stamped with the checkout's git revision so
    consumers (``force run --facts``) can refuse stale verdicts —
    race-freedom proven against different source must not gate kernel
    lowering.  ``git_revision`` is ``None`` outside a git checkout.
    """
    from repro._util.gitrev import git_revision
    return {
        "version": FACTS_VERSION,
        "generator": "force check",
        "git_revision": git_revision(warn=False),
        "files": [build_file_facts(filename, summary)
                  for filename, summary in per_file],
    }


def write_facts(path: str,
                per_file: list[tuple[str, ProgramSummary]]) -> dict:
    doc = build_facts(per_file)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    return doc


def load_facts(path: str) -> dict:
    """Load and validate a facts document; raises ``ValueError``."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    problems = validate_facts(doc)
    if problems:
        raise ValueError(
            f"{path} is not a valid facts document: {problems[0]}")
    return doc


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _privatizable(summary: ProgramSummary) -> list[str]:
    by_key: dict[str, list] = {}
    subscripted: set[str] = set()
    for access in summary.accesses:
        by_key.setdefault(access.key, []).append(access)
        if access.subscript is not None:
            subscripted.add(access.key)
    out = []
    for key, accesses in by_key.items():
        if key in subscripted:
            continue
        if not any(a.is_write for a in accesses):
            continue
        phases: dict[tuple[str, int], list] = {}
        for access in accesses:      # expansion (document) order
            phases.setdefault((access.root, access.phase), []).append(access)
        if all(_phase_starts_with_private_write(group)
               for group in phases.values()):
            out.append(key)
    return sorted(out)


def _phase_starts_with_private_write(group: list) -> bool:
    first = group[0]
    return (first.is_write and not first.conditional
            and first.guard is None and not first.single_process)


def _criticals(summary: ProgramSummary) -> list[dict]:
    sites: dict[str, list[dict]] = {}
    protects: dict[str, set[str]] = {}
    for acq in summary.locks:
        sites.setdefault(acq.lock, []).append({
            "routine": acq.routine,
            "line": acq.line,
            "phase": acq.phase,
            "root": acq.root,
        })
    for access in summary.accesses:
        for lock in access.locks:
            protects.setdefault(lock, set()).add(access.key)
    out = []
    for lock in sorted(set(sites) | set(protects)):
        unique = []
        seen = set()
        for site in sites.get(lock, []):
            fingerprint = (site["routine"], site["line"])
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            unique.append(site)
        out.append({
            "name": lock,
            "sites": unique,
            "protects": sorted(protects.get(lock, ())),
        })
    return out


def _race_record(report: RaceReport) -> dict:
    return {
        "variable": report.key,
        "kind": report.kind,
        "first": _side(report.first),
        "second": _side(report.second),
    }


def _side(access) -> dict:
    return {
        "routine": access.routine,
        "line": access.line,
        "access": "write" if access.is_write else "read",
        "phase": access.phase,
        "locks": list(access.locks),
        "region": access.region,
        "chain": list(access.chain),
    }


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def validate_facts(doc) -> list[str]:
    """Structural schema check; returns a list of problems (empty=ok)."""
    problems: list[str] = []

    def expect(cond: bool, what: str) -> bool:
        if not cond:
            problems.append(what)
        return cond

    if not expect(isinstance(doc, dict), "document is not an object"):
        return problems
    expect(doc.get("version") == FACTS_VERSION,
           f"version != {FACTS_VERSION}")
    if not expect(isinstance(doc.get("files"), list), "files is not a list"):
        return problems
    for i, entry in enumerate(doc["files"]):
        where = f"files[{i}]"
        if not expect(isinstance(entry, dict), f"{where} not an object"):
            continue
        expect(isinstance(entry.get("file"), str), f"{where}.file")
        expect(isinstance(entry.get("statements"), int),
               f"{where}.statements")
        for field, item_fields in (
                ("routines", ("name", "kind", "phases", "statements")),
                ("doalls", ("uid", "routine", "label", "line", "macro",
                            "indices", "race_free")),
                ("criticals", ("name", "sites", "protects")),
                ("races", ("variable", "kind", "first", "second"))):
            items = entry.get(field)
            if not expect(isinstance(items, list), f"{where}.{field}"):
                continue
            for j, item in enumerate(items):
                if not expect(isinstance(item, dict),
                              f"{where}.{field}[{j}]"):
                    continue
                for name in item_fields:
                    expect(name in item, f"{where}.{field}[{j}].{name}")
        for field in ("privatizable", "notes", "racy_variables"):
            expect(isinstance(entry.get(field), list), f"{where}.{field}")
        for doall in entry.get("doalls", []):
            if isinstance(doall, dict):
                expect(isinstance(doall.get("race_free"), bool),
                       "doalls[].race_free not a bool")
        for race in entry.get("races", []):
            if not isinstance(race, dict):
                continue
            for side in ("first", "second"):
                witness = race.get(side)
                if not expect(isinstance(witness, dict),
                              f"races[].{side}"):
                    continue
                for name in ("routine", "line", "access", "phase",
                             "locks", "region", "chain"):
                    expect(name in witness, f"races[].{side}.{name}")
    return problems


def race_free_doalls(doc: dict) -> dict[str, list[dict]]:
    """Map routine name -> its proven race-free DOALL records."""
    out: dict[str, list[dict]] = {}
    for entry in doc.get("files", []):
        for doall in entry.get("doalls", []):
            if doall.get("race_free"):
                out.setdefault(doall["routine"], []).append(doall)
    return out
