"""Interprocedural read/write summaries over the Forcecall graph.

:mod:`repro.analysis.phases` gives each routine its local event
stream.  This module makes the streams whole-program: every
``Forcecall`` is virtually inlined, with

* **phase shifting** — a callee whose body crosses *k* barrier
  boundaries shifts every later event in the caller by *k* phases
  (Forcesubs may contain barriers; all processes enter the call, so
  the callee's barriers synchronize the caller's stream too),
* **parameter substitution** — the callee's formals are rewritten to
  the caller's actual arguments (transitively, so a formal passed down
  two levels resolves to the root's name) in variable names,
  subscripts, guard predicates and DOALL bound text,
* **context composition** — a callee event inherits the call site's
  lockset prefix, ME-guard, enclosing DOALL frames, and single-process
  region (a call made from a barrier body runs on one process), and
* **cycle handling** — a recursive Forcecall chain is cut at the
  back-edge and recorded as an analysis note; the first expansion of
  each routine still contributes its accesses.

The result is a flat list of :class:`ResolvedAccess` records over
*shared storage only* (Shared declarations are per-name COMMON blocks,
so identity is global by name), plus :class:`ResolvedLock`
acquisitions whose held-before sets cross routine boundaries — the
inputs to the race detector, the interprocedural lock-order pass and
the facts emitter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis import fortranish
from repro.analysis.construct_parser import ForceProgram, Routine
from repro.analysis.phases import (
    REPLICATED,
    AccessEvent,
    BARRIER,
    CallEvent,
    DoallFrame,
    LockEvent,
    RoutinePhases,
    Site,
    partition,
)
from repro.analysis.symbols import ASYNC, PARAM, SHARED, TASKQ

_IDENT_PREFIX = re.compile(r"^\s*([A-Za-z]\w*)\s*(?:\((.*)\))?\s*$")


@dataclass(frozen=True)
class ResolvedAccess:
    """One shared-storage access, in root-relative coordinates."""

    key: str                     #: storage key (``NAME`` or ``/BLK/NAME``)
    name: str                    #: resolved display name
    subscript: str | None        #: after parameter substitution
    is_write: bool
    conditional: bool
    root: str                    #: root routine of this expansion
    routine: str                 #: routine the access appears in textually
    line: int
    phase: int                   #: absolute phase within the root
    region: str
    locks: tuple[str, ...]
    guard: str | None
    frames: tuple[DoallFrame, ...]
    chain: tuple[str, ...]       #: call chain, root first

    @property
    def single_process(self) -> bool:
        return self.region == BARRIER


@dataclass(frozen=True)
class ResolvedLock:
    """One Critical acquisition with its interprocedural held-set."""

    lock: str
    held: tuple[str, ...]        #: locks already held, outermost first
    root: str
    routine: str
    line: int
    phase: int
    chain: tuple[str, ...]


@dataclass
class ProgramSummary:
    """Whole-program analysis state shared by every summary client."""

    program: ForceProgram
    phases: dict[str, RoutinePhases] = field(default_factory=dict)
    accesses: list[ResolvedAccess] = field(default_factory=list)
    locks: list[ResolvedLock] = field(default_factory=list)
    roots: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    statement_count: int = 0

    def phase_count(self, root: str) -> int:
        """Absolute phases the whole expansion of ``root`` crosses."""
        highest = 0
        for access in self.accesses:
            if access.root == root:
                highest = max(highest, access.phase)
        rp = self.phases.get(root)
        local = rp.phase_count if rp else 1
        return max(local, highest + 1)


def summarize(program: ForceProgram) -> ProgramSummary:
    """Partition every routine and expand the Forcecall graph."""
    summary = ProgramSummary(program)
    routines: dict[str, Routine] = {}
    for routine in program.routines:
        name = routine.name.upper()
        routines[name] = routine
        summary.phases[name] = partition(routine)
        summary.statement_count += summary.phases[name].statement_count

    called = {call.callee
              for rp in summary.phases.values() for call in rp.calls}
    summary.roots = [r.name.upper() for r in program.routines
                     if r.kind == "main" or r.name.upper() not in called]

    expander = _Expander(summary, routines)
    for root in summary.roots:
        expander.expand_root(root)
    return summary


class _Expander:
    def __init__(self, summary: ProgramSummary,
                 routines: dict[str, Routine]) -> None:
        self.summary = summary
        self.routines = routines

    def expand_root(self, root: str) -> None:
        self._walk(root, root, phase_offset=0, subst={},
                   locks=(), region=REPLICATED, guard=None, frames=(),
                   chain=(root,), stack=frozenset({root}))

    def _walk(self, root: str, name: str, phase_offset: int,
              subst: dict[str, tuple[str, str]], locks: tuple[str, ...],
              region: str, guard: str | None,
              frames: tuple[DoallFrame, ...], chain: tuple[str, ...],
              stack: frozenset[str]) -> int:
        """Replay one routine's stream; return boundaries consumed."""
        rp = self.summary.phases.get(name)
        if rp is None:
            return 0
        mapping = {formal: text for formal, (text, _own) in subst.items()}
        shift = 0
        for event in rp.events:
            phase = phase_offset + event.site.phase + shift
            if isinstance(event, CallEvent):
                shift += self._call(root, name, event, phase, subst,
                                    mapping, locks, region, guard, frames,
                                    chain, stack)
            elif isinstance(event, LockEvent):
                self.summary.locks.append(ResolvedLock(
                    lock=event.lock,
                    held=locks + event.site.locks,
                    root=root, routine=name, line=event.site.line,
                    phase=phase, chain=chain))
            elif isinstance(event, AccessEvent):
                self._access(root, name, event, phase, subst, mapping,
                             locks, region, guard, frames, chain)
        return rp.boundary_count + shift

    # -- calls ---------------------------------------------------------
    def _call(self, root: str, caller: str, event: CallEvent, phase: int,
              subst: dict[str, tuple[str, str]], mapping: dict[str, str],
              locks: tuple[str, ...], region: str, guard: str | None,
              frames: tuple[DoallFrame, ...], chain: tuple[str, ...],
              stack: frozenset[str]) -> int:
        callee = self.routines.get(event.callee)
        if callee is None:
            return 0        # external subroutine: no summary, no shift
        if event.callee in stack:
            note = (f"recursive Forcecall chain "
                    f"{' -> '.join(chain + (event.callee,))} cut at "
                    f"line {event.site.line}; accesses past the first "
                    f"expansion are not re-analysed")
            if note not in self.summary.notes:
                self.summary.notes.append(note)
            return 0
        implicit = {callee.np_var.upper(), callee.ident_var.upper()}
        formals = [s.name for s in callee.symbols.with_storage(PARAM)
                   if s.name not in implicit]
        new_subst = self._implicit_param_map(callee, caller, mapping)
        for formal, actual in zip(formals, event.args):
            resolved = fortranish.substitute(actual, mapping)
            owner = self._owner_of(resolved, caller, subst)
            new_subst[formal] = (resolved, owner)
        site = event.site
        return self._walk(
            root, event.callee,
            phase_offset=phase,
            subst=new_subst,
            locks=locks + site.locks,
            region=_merge_region(region, site.region),
            guard=_merge_guard(guard,
                               _substitute_guard(site.guard, mapping)),
            frames=frames + _substitute_frames(site.frames, mapping),
            chain=chain + (event.callee,),
            stack=stack | {event.callee})

    def _implicit_param_map(self, callee: Routine, caller: str,
                            mapping: dict[str, str]
                            ) -> dict[str, tuple[str, str]]:
        """Map the callee's NP/ident formals to the caller's own.

        The runtime passes NP and the process identifier implicitly;
        a sub that names its ident ``ID`` while the caller says ``ME``
        still guards on the same value, so ``ID`` must resolve to
        ``ME`` for guard texts to compare equal across the call.
        """
        out: dict[str, tuple[str, str]] = {}
        caller_routine = self.routines.get(caller)
        if caller_routine is None:
            return out
        pairs = ((callee.np_var, caller_routine.np_var),
                 (callee.ident_var, caller_routine.ident_var))
        for formal, actual in pairs:
            if formal and actual:
                out[formal.upper()] = (
                    fortranish.substitute(actual, mapping), caller)
        return out

    def _owner_of(self, resolved: str, caller: str,
                  subst: dict[str, tuple[str, str]]) -> str:
        match = _IDENT_PREFIX.match(resolved)
        if not match:
            return caller
        base = match.group(1).upper()
        for _formal, (text, owner) in subst.items():
            inner = _IDENT_PREFIX.match(text)
            if inner and inner.group(1).upper() == base:
                return owner
        return caller

    # -- accesses ------------------------------------------------------
    def _access(self, root: str, name: str, event: AccessEvent,
                phase: int, subst: dict[str, tuple[str, str]],
                mapping: dict[str, str], locks: tuple[str, ...],
                region: str, guard: str | None,
                frames: tuple[DoallFrame, ...],
                chain: tuple[str, ...]) -> None:
        routine = self.routines[name]
        var = event.name
        subscript = event.subscript
        owner = name
        if var in mapping:
            resolved, owner = subst[var]
            match = _IDENT_PREFIX.match(resolved)
            if match is None:
                return          # actual was an expression: a by-value temp
            var = match.group(1).upper()
            actual_sub = match.group(2)
            if actual_sub is not None:
                # formal bound to an array element: the callee's own
                # subscript (if any) is relative to that element — keep
                # the caller's element subscript as the storage index.
                subscript = actual_sub
        symbol = self._classify(var, owner, routine)
        if symbol is None or symbol.storage != SHARED:
            return
        if subscript is not None:
            subscript = fortranish.substitute(subscript, mapping)
        key = (f"/{symbol.common.upper()}/{var}" if symbol.common
               else var)
        self.summary.accesses.append(ResolvedAccess(
            key=key, name=var, subscript=subscript,
            is_write=event.is_write, conditional=event.conditional,
            root=root, routine=name, line=event.site.line, phase=phase,
            region=_merge_region(region, event.site.region),
            locks=locks + event.site.locks,
            guard=_merge_guard(guard,
                               _substitute_guard(event.site.guard,
                                                 mapping)),
            frames=frames + _substitute_frames(event.site.frames, mapping),
            chain=chain))

    def _classify(self, var: str, owner: str, routine: Routine):
        for candidate in (owner, routine.name.upper()):
            owner_routine = self.routines.get(candidate)
            if owner_routine is None:
                continue
            symbol = owner_routine.symbols.lookup(var)
            if symbol is not None and symbol.storage != PARAM:
                return symbol
        # Shared storage is global by name: a declaration anywhere in
        # the program makes every unqualified use of the name shared.
        for other in self.routines.values():
            symbol = other.symbols.lookup(var)
            if symbol is not None and symbol.storage in (SHARED, ASYNC,
                                                         TASKQ):
                return symbol
        return None


# ----------------------------------------------------------------------
# context composition helpers
# ----------------------------------------------------------------------
def _merge_region(outer: str, inner: str) -> str:
    """The effective region of an inlined event."""
    if inner != REPLICATED:
        return inner
    return outer


def _merge_guard(outer: str | None, inner: str | None) -> str | None:
    if outer and inner:
        return f"{outer} .AND. {inner}"
    return outer or inner


def _substitute_guard(guard: str | None,
                      mapping: dict[str, str]) -> str | None:
    if guard is None:
        return None
    return " ".join(fortranish.substitute(guard, mapping).upper().split())


def _substitute_frames(frames: tuple[DoallFrame, ...],
                       mapping: dict[str, str]) -> tuple[DoallFrame, ...]:
    if not mapping:
        return frames
    return tuple(
        DoallFrame(uid=f.uid, macro=f.macro, label=f.label,
                   indices=f.indices,
                   bounds=tuple(fortranish.substitute(b, mapping)
                                for b in f.bounds),
                   line=f.line)
        for f in frames)


def site_of(access: ResolvedAccess) -> Site:
    """Rebuild a :class:`Site` view of a resolved access (for MHP)."""
    return Site(line=access.line, phase=access.phase,
                region=access.region, locks=access.locks,
                guard=access.guard, frames=access.frames)
