"""F009/F010: variable-scope checks.

A Barrier body or Pcase section runs on exactly one process, so an
update to a *Private* variable there is visible to that one process
only — the other processes keep their stale copies (F009).  And a
name declared both at routine level and inside a common block (or with
two conflicting storage classes) silently shadows itself (F010).
"""

from __future__ import annotations

from repro.analysis import fortranish
from repro.analysis.construct_parser import ForceProgram, walk_statements
from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.analysis.symbols import PARAM, PRIVATE


def check_scope(program: ForceProgram) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for routine in program.routines:
        diagnostics.extend(_private_writes_in_single_sections(routine))
        diagnostics.extend(_declaration_conflicts(routine))
    return diagnostics


def _private_writes_in_single_sections(routine) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for stmt, ctx in walk_statements(routine):
        if ctx.single_depth == 0:
            continue
        assignment = fortranish.parse_assignment(stmt.text)
        if assignment is None:
            continue
        symbol = routine.symbols.lookup(assignment.name)
        if symbol is None or symbol.storage != PRIVATE:
            continue
        out.append(warning(
            "F009", stmt.line,
            f"Private variable '{assignment.name}' is written inside a "
            "single-process section: the update is lost to the other "
            "processes",
            "declare it Shared, or move the update outside the "
            "Barrier/Pcase section"))
    return out


def _declaration_conflicts(routine) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for existing, redecl in routine.symbols.conflicts:
        if PARAM in (existing.storage, redecl.storage):
            continue      # routine arguments may be re-classified
        if (existing.common is None) != (redecl.common is None):
            local, member = ((existing, redecl) if redecl.common
                             else (redecl, existing))
            out.append(warning(
                "F010", redecl.line,
                f"{local.describe()} shadows {member.describe()} declared "
                f"at line {existing.line}",
                "rename one of the two; references will silently bind to "
                "the routine-level variable"))
        elif existing.storage != redecl.storage:
            out.append(error(
                "F010", redecl.line,
                f"'{redecl.name}' declared {redecl.storage.capitalize()} "
                f"here but {existing.storage.capitalize()} at line "
                f"{existing.line}",
                "keep exactly one storage class per variable"))
    return out
