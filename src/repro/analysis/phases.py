"""Barrier-phase partitioning of a Force routine.

The Force synchronizes with barriers: every statement of a routine
falls into a *phase* — a maximal run of the statement stream free of
synchronization points.  Phase boundaries are the entry and exit of a
``Barrier``/``End barrier`` body and ``Join``.  Two statements in
different phases of the same routine can never execute concurrently
(every process crossed the intervening barrier); two statements in the
same phase of replicated code may — that is the raw material of the
may-happen-in-parallel relation in :mod:`repro.analysis.mhp`.

This module walks one routine and produces its ordered *event stream*:
every Shared/private variable access, every ``Forcecall``, and every
``Critical`` acquisition, each stamped with

* the local ``phase`` ordinal,
* the ``region`` kind (``replicated``, single-process ``barrier``
  body, or ``section:<uid>:<n>`` for a Pcase section — ``End pcase``
  does **not** synchronize, so sections stay inside their phase),
* the ``locks`` tuple of enclosing Critical names,
* the enclosing DOALL ``frames`` (construct uid, index variables and
  loop-bound text — the partition evidence), and
* the canonical ME-``guard`` text, when every path to the statement
  runs under conditions naming the routine's process identifier.

Known limitation, by design: phases are assigned in document order, so
a barrier inside a sequential ``DO`` loop separates the loop's earlier
and later statements even though iterations re-enter both sides.  The
corpus does not write that shape; the renderer documents it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import fortranish
from repro.analysis.construct_parser import (
    Construct,
    MacroStmt,
    Node,
    Routine,
    Stmt,
)

#: region kinds a statement can live in.
REPLICATED = "replicated"
BARRIER = "barrier"


@dataclass(frozen=True)
class DoallFrame:
    """One enclosing DOALL loop: the index-partition evidence."""

    uid: int
    macro: str
    label: str
    indices: tuple[str, ...]     #: upper-cased index variables
    bounds: tuple[str, ...]      #: raw bound text per index (``"1, N"``)
    line: int

    def lower_bound(self, index: str) -> str | None:
        """Text of the loop's lower bound for ``index``, if recorded."""
        for var, bound in zip(self.indices, self.bounds):
            if var == index and bound:
                parts = fortranish.split_subscript(bound)
                if parts:
                    return parts[0]
        return None

    def upper_bound(self, index: str) -> str | None:
        for var, bound in zip(self.indices, self.bounds):
            if var == index and bound:
                parts = fortranish.split_subscript(bound)
                if len(parts) > 1:
                    return parts[1]
        return None


@dataclass(frozen=True)
class Site:
    """Shared event coordinates: where and under what context."""

    line: int
    phase: int
    region: str                  #: replicated | barrier | section:<uid>:<n>
    locks: tuple[str, ...]       #: enclosing Critical names, outermost first
    guard: str | None            #: canonical ME-guard text, or None
    frames: tuple[DoallFrame, ...] = ()

    @property
    def single_process(self) -> bool:
        """True when at most one process executes this site."""
        return self.region == BARRIER


@dataclass(frozen=True)
class AccessEvent:
    """One variable reference."""

    site: Site
    name: str                    #: upper-cased variable name
    subscript: str | None
    is_write: bool
    conditional: bool = False    #: under any non-ME branch condition


@dataclass(frozen=True)
class CallEvent:
    """One ``Forcecall NAME(args)``."""

    site: Site
    callee: str                  #: upper-cased subroutine name
    args: tuple[str, ...]        #: actual argument expressions


@dataclass(frozen=True)
class LockEvent:
    """One ``Critical NAME`` acquisition; ``site.locks`` is held-before."""

    site: Site
    lock: str


@dataclass
class RoutinePhases:
    """The phase-partitioned event stream of one routine."""

    routine: Routine
    accesses: list[AccessEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    lock_events: list[LockEvent] = field(default_factory=list)
    #: all of the above interleaved in document order — the stream the
    #: interprocedural expansion replays to compute phase shifts.
    events: list = field(default_factory=list)
    boundary_count: int = 0      #: barrier edges + Joins crossed
    statement_count: int = 0     #: Fortran statements analysed

    @property
    def phase_count(self) -> int:
        return self.boundary_count + 1


def partition(routine: Routine) -> RoutinePhases:
    """Slice ``routine`` into phases and extract its event stream."""
    return _Partitioner(routine).run()


class _Partitioner:
    def __init__(self, routine: Routine) -> None:
        self.routine = routine
        self.out = RoutinePhases(routine)
        self.phase = 0
        self.ident = routine.ident_var.upper() if routine.ident_var else ""
        #: (condition text, mentions ident) per open IF level.
        self.if_stack: list[tuple[str, bool]] = []

    def run(self) -> RoutinePhases:
        self._visit(self.routine.body, locks=(), region=REPLICATED,
                    frames=())
        return self.out

    # -- context -------------------------------------------------------
    def _site(self, line: int, region: str, locks: tuple[str, ...],
              frames: tuple[DoallFrame, ...]) -> Site:
        ident_conds = [cond for cond, is_guard in self.if_stack if is_guard]
        guard = (" .AND. ".join(_canonical(c) for c in ident_conds)
                 if ident_conds else None)
        return Site(line=line, phase=self.phase, region=region,
                    locks=locks, guard=guard, frames=frames)

    def _conditional(self) -> bool:
        return any(not is_guard for _, is_guard in self.if_stack)

    def _boundary(self) -> None:
        self.phase += 1
        self.out.boundary_count += 1

    # -- emission ------------------------------------------------------
    def _emit_access(self, event: AccessEvent) -> None:
        self.out.accesses.append(event)
        self.out.events.append(event)

    def _emit_call(self, event: CallEvent) -> None:
        self.out.calls.append(event)
        self.out.events.append(event)

    def _emit_lock(self, event: LockEvent) -> None:
        self.out.lock_events.append(event)
        self.out.events.append(event)

    # -- traversal -----------------------------------------------------
    def _visit(self, nodes: list[Node], locks: tuple[str, ...],
               region: str, frames: tuple[DoallFrame, ...]) -> None:
        section_ordinal = 0
        for node in nodes:
            if isinstance(node, Construct):
                if node.kind == "barrier":
                    self._boundary()
                    self._visit(node.body, locks, BARRIER, frames)
                    self._boundary()
                elif node.kind == "critical":
                    lock = node.name.upper()
                    self._emit_lock(LockEvent(
                        self._site(node.line, region, locks, frames), lock))
                    self._visit(node.body, locks + (lock,), region, frames)
                elif node.kind == "doall":
                    frame = DoallFrame(
                        uid=node.uid, macro=node.macro, label=node.label,
                        indices=tuple(v.upper() for v in node.index_vars),
                        bounds=node.bounds, line=node.line)
                    self._bound_reads(node, region, locks, frames)
                    self._visit(node.body, locks, region, frames + (frame,))
                elif node.kind == "pcase":
                    self._visit(node.body, locks, region, frames)
                elif node.kind == "section":
                    section_ordinal += 1
                    if node.label:   # Csect condition, evaluated by all
                        self._reads(node.label, node.line, region, locks,
                                    frames)
                    self._visit(node.body, locks,
                                f"section:{node.uid}:{section_ordinal}",
                                frames)
                else:   # askfor: work items run on whichever process asks
                    self._visit(node.body, locks, region, frames)
            elif isinstance(node, MacroStmt):
                self._macro(node, locks, region, frames)
            else:
                self._statement(node, locks, region, frames)

    def _bound_reads(self, node: Construct, region: str,
                     locks: tuple[str, ...],
                     frames: tuple[DoallFrame, ...]) -> None:
        for bound in node.bounds:
            if bound:
                self._reads(bound, node.line, region, locks, frames)

    def _statement(self, stmt: Stmt, locks: tuple[str, ...],
                   region: str, frames: tuple[DoallFrame, ...]) -> None:
        form = fortranish.classify_if(stmt.text)
        if form is not None and form[0] in ("block_if", "else_if",
                                            "else", "end_if"):
            kind = form[0]
            if kind == "end_if":
                if self.if_stack:
                    self.if_stack.pop()
                return
            if kind in ("block_if", "else_if"):
                cond = form[1]
                self._reads(cond, stmt.line, region, locks, frames)
                entry = (cond, bool(self.ident)
                         and fortranish.mentions(self.ident, cond))
                if kind == "block_if":
                    self.if_stack.append(entry)
                elif self.if_stack:
                    self.if_stack[-1] = entry
                self.out.statement_count += 1
                return
            if self.if_stack:   # bare ELSE: branch no longer ME-selected
                self.if_stack[-1] = (self.if_stack[-1][0], False)
            return
        self.out.statement_count += 1
        accesses, guard = fortranish.statement_accesses(stmt.text)
        extra = None
        if guard and self.ident and fortranish.mentions(self.ident, guard):
            extra = _canonical(guard)
        for ref in accesses:
            site = self._site(stmt.line, region, locks, frames)
            if extra:
                merged = (f"{site.guard} .AND. {extra}" if site.guard
                          else extra)
                site = Site(site.line, site.phase, site.region, site.locks,
                            merged, site.frames)
            self._emit_access(AccessEvent(
                site=site, name=ref.name.upper(), subscript=ref.subscript,
                is_write=ref.is_write,
                conditional=self._conditional() or (guard is not None
                                                    and extra is None)))

    def _macro(self, node: MacroStmt, locks: tuple[str, ...],
               region: str, frames: tuple[DoallFrame, ...]) -> None:
        self.out.statement_count += 1
        args = node.args
        if node.name == "join_force":
            self._boundary()
        elif node.name == "forcecall":
            callee = (args[0] if args else "").upper()
            actuals = tuple(
                a.strip() for a in
                fortranish.split_subscript(args[1]) if a.strip()
            ) if len(args) > 1 and args[1] else ()
            self._emit_call(CallEvent(
                self._site(node.line, region, locks, frames),
                callee, actuals))
            for actual in actuals:
                # A plain NAME actual passes an address — no data read.
                # Subscripts (A(I)) and value expressions (I+1) are
                # evaluated at the call site.
                parsed = fortranish.parse_assignment(f"{actual} = 0")
                if parsed is not None and parsed.subscript is None:
                    continue
                if parsed is not None and parsed.subscript is not None:
                    self._reads(parsed.subscript, node.line, region, locks,
                                frames)
                else:
                    self._reads(actual, node.line, region, locks, frames)
        elif node.name == "produce" and len(args) > 1:
            # Produce VAR = EXPR: VAR is Async (full/empty-synchronized,
            # excluded from race analysis); EXPR reads count.
            self._reads(args[1], node.line, region, locks, frames)
            self._async_subscript_reads(args[0], node.line, region, locks,
                                        frames)
        elif node.name in ("consume", "copyasync") and len(args) > 1:
            # ... into DEST writes DEST.
            dest = fortranish.parse_assignment(f"{args[1]} = 0")
            if dest is not None:
                site = self._site(node.line, region, locks, frames)
                self._emit_access(AccessEvent(
                    site=site, name=dest.name.upper(),
                    subscript=dest.subscript, is_write=True,
                    conditional=self._conditional()))
                if dest.subscript:
                    self._reads(dest.subscript, node.line, region, locks,
                                frames)
            self._async_subscript_reads(args[0], node.line, region, locks,
                                        frames)
        elif node.name == "putwork" and len(args) > 1:
            self._reads(args[1], node.line, region, locks, frames)

    def _async_subscript_reads(self, target: str, line: int, region: str,
                               locks: tuple[str, ...],
                               frames: tuple[DoallFrame, ...]) -> None:
        """``Produce V(I) = …``: V is Async, but I is an ordinary read."""
        parsed = fortranish.parse_assignment(f"{target} = 0")
        if parsed is not None and parsed.subscript:
            self._reads(parsed.subscript, line, region, locks, frames)

    def _reads(self, expr: str, line: int, region: str,
               locks: tuple[str, ...],
               frames: tuple[DoallFrame, ...]) -> None:
        site = self._site(line, region, locks, frames)
        for ref in fortranish.expression_reads(expr):
            self._emit_access(AccessEvent(
                site=site, name=ref.name.upper(), subscript=ref.subscript,
                is_write=False, conditional=self._conditional()))


def _canonical(condition: str) -> str:
    """Canonical text of a guard condition for cross-site comparison."""
    return " ".join(condition.upper().split())
