"""Render diagnostics as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.diagnostics import (
    Diagnostic,
    count_errors,
    count_warnings,
)


def render_text(diagnostics: list[Diagnostic], *,
                summary: bool = True) -> str:
    """One finding per line, compiler style, plus a count summary."""
    lines: list[str] = []
    for diag in diagnostics:
        lines.append(f"{diag.file}:{diag.line}: "
                     f"{diag.severity.value}[{diag.code}]: {diag.message}")
        if diag.suggestion:
            lines.append(f"    help: {diag.suggestion}")
    if summary:
        errors = count_errors(diagnostics)
        warnings = count_warnings(diagnostics)
        if errors or warnings:
            lines.append(f"{errors} error(s), {warnings} warning(s)")
        else:
            lines.append("no problems found")
    return "\n".join(lines)


def render_json(per_file: list[tuple[str, list[Diagnostic]]]) -> str:
    """``--format json`` payload for one or more checked files."""
    files = []
    errors = 0
    warnings = 0
    for filename, diagnostics in per_file:
        errors += count_errors(diagnostics)
        warnings += count_warnings(diagnostics)
        files.append({
            "file": filename,
            "diagnostics": [d.to_dict() for d in diagnostics],
        })
    payload = {
        "version": 1,
        "files": files,
        "errors": errors,
        "warnings": warnings,
    }
    return json.dumps(payload, indent=2)
