"""Render diagnostics as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.diagnostics import (
    Diagnostic,
    WitnessSite,
    count_errors,
    count_warnings,
)


def render_text(diagnostics: list[Diagnostic], *,
                summary: bool = True, explain: bool = False) -> str:
    """One finding per line, compiler style, plus a count summary.

    With ``explain`` (the CLI's ``--explain``), findings that carry a
    two-sided witness get an indented evidence block naming both
    sites, their barrier phase, and the locks each holds.
    """
    lines: list[str] = []
    for diag in diagnostics:
        lines.append(f"{diag.file}:{diag.line}: "
                     f"{diag.severity.value}[{diag.code}]: {diag.message}")
        if diag.suggestion:
            lines.append(f"    help: {diag.suggestion}")
        if explain and diag.witness is not None:
            witness = diag.witness
            lines.append(f"    witness ({witness.kind}):")
            lines.append(f"      - {_witness_line(witness.first)}")
            if witness.second != witness.first:
                lines.append(f"      - {_witness_line(witness.second)}")
            else:
                lines.append("      - the same statement on every "
                             "other process")
    if summary:
        errors = count_errors(diagnostics)
        warnings = count_warnings(diagnostics)
        if errors or warnings:
            lines.append(f"{errors} error(s), {warnings} warning(s)")
        else:
            lines.append("no problems found")
    return "\n".join(lines)


def _witness_line(site: WitnessSite) -> str:
    locks = ", ".join(site.locks)
    parts = [f"line {site.line} in {site.routine}: "
             f"{site.access}s {site.variable}",
             f"phase {site.phase}", f"holding {{{locks}}}", site.region]
    if site.guard:
        parts.append(f"guarded by {site.guard}")
    if len(site.chain) > 1:
        parts.append(f"via {' -> '.join(site.chain)}")
    return "  ".join(parts)


def render_json(per_file: list[tuple[str, list[Diagnostic]]]) -> str:
    """``--format json`` payload for one or more checked files."""
    files = []
    errors = 0
    warnings = 0
    for filename, diagnostics in per_file:
        errors += count_errors(diagnostics)
        warnings += count_warnings(diagnostics)
        files.append({
            "file": filename,
            "diagnostics": [d.to_dict() for d in diagnostics],
        })
    payload = {
        "version": 1,
        "files": files,
        "errors": errors,
        "warnings": warnings,
    }
    return json.dumps(payload, indent=2)
