"""The two-level Force macro library (§4 of the paper).

* :mod:`repro.macros.machdep` — one module per machine defining the
  **machine-dependent** macros: ``mi_lock``/``mi_unlock``,
  produce/consume/void/async-init, shared-block registration, and the
  driver/process-creation fragments.  These are the *only* macros that
  change between ports.
* :mod:`repro.macros.machindep` — the **machine-independent** macros:
  utility macros (list processing, label generation), statement macros
  (``barrier_begin``, ``selfsched_do``, ``pcase`` …) and internal
  macros, all written against the ``mi_*`` interface.

``build_processor(machine)`` returns an m4 engine loaded with the right
layering for a machine, ready to expand a sed-translated Force program.
"""

from repro.macros.loader import (
    build_processor,
    machdep_definitions,
    machindep_definitions,
    MACHDEP_INTERFACE,
)

__all__ = [
    "build_processor",
    "machdep_definitions",
    "machindep_definitions",
    "MACHDEP_INTERFACE",
]
