"""Layering the two macro levels onto an m4 engine.

``build_processor(machine)`` loads the machine-dependent definitions
for one machine, then the machine-independent library on top — exactly
the two-step replacement of §4.3 — and validates that the machdep set
provides the complete ``mi_*`` interface.
"""

from __future__ import annotations

from repro._util.errors import MacroError
from repro.m4 import M4Processor
from repro.machines.model import MachineModel
from repro.macros.machdep import MACHDEP_MODULES
from repro.macros.machindep import MACHINE_INDEPENDENT_DEFS

#: The complete machine-dependent macro interface.  A port of the Force
#: to a new machine must define exactly these (plus whatever helpers it
#: wants); ``build_processor`` enforces it.
MACHDEP_INTERFACE = (
    "mi_lock",
    "mi_unlock",
    "mi_init_lock",
    "mi_produce",
    "mi_consume",
    "mi_copy",
    "mi_void",
    "mi_async_extra",
    "mi_register_shared",
    "mi_driver_startup",
    "mi_emit_startup_unit",
    "mi_spawn_processes",
    "force_environment",
)


def machdep_definitions(machine: MachineModel) -> str:
    """The machine-dependent m4 definition file for ``machine``."""
    try:
        module = MACHDEP_MODULES[machine.key]
    except KeyError as exc:
        raise MacroError(
            f"no machine-dependent macro set for {machine.name}") from exc
    return module.DEFINITIONS


def machindep_definitions() -> str:
    """The machine-independent m4 definition file (same for all)."""
    return MACHINE_INDEPENDENT_DEFS


def build_processor(machine: MachineModel,
                    extra_definitions: str | None = None) -> M4Processor:
    """An m4 engine ready to expand a sed-translated Force program.

    ``extra_definitions`` is loaded *after* the machine-independent
    library, so it can override tunable defaults (``ZZSCHED`` /
    ``ZZCHUNK`` for the selfscheduled-DOALL dispatch policy) the same
    way a site-local m4 file would in the original toolchain.
    """
    m4 = M4Processor()
    m4.load_definitions(machdep_definitions(machine))
    missing = [name for name in MACHDEP_INTERFACE if not m4.is_defined(name)]
    if missing:
        raise MacroError(
            f"{machine.name} machine-dependent macros incomplete: "
            f"missing {', '.join(missing)}")
    m4.load_definitions(machindep_definitions())
    if extra_definitions:
        m4.load_definitions(extra_definitions)
    return m4
