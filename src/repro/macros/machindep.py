r"""The machine-independent Force macro layer (§4.2 of the paper).

These m4 definitions implement every Force statement in terms of the
``mi_*`` machine-dependent interface (locks, produce/consume, shared
registration, driver fragments).  They are loaded unchanged for all six
machines — the paper's central portability claim, measured by
experiment E7.

The three categories from the paper:

* **utility macros** — list processing (``zz_first`` …), dimension
  stripping for COMMON declarations (``zz_base``/``zz_subs``), label
  generation (``zz_newlabel``);
* **statement macros** — one per Force statement, translating it into
  Fortran plus low-level machine-dependent macro calls (the
  ``selfsched_do`` expansion follows the paper's §4.2 listing, which
  experiment E2 checks structurally);
* **internal macros** — entry/exit synchronization fragments shared by
  several statement macros.

Conventions:

* ``mi_lock(var)`` / ``mi_unlock(var)`` expand to the bare machine CALL
  (no indentation) — this layer supplies column position and labels;
* ``mi_register_shared(block)`` occupies a line of its own: it expands
  to a compiler directive on compile-time-sharing machines and to
  nothing (the registration goes to diversion 3, the startup routine
  body) on link/run-time machines;
* generated identifiers are prefixed ``ZZ``; generated statement labels
  count up from 90001; generated string literals use double quotes so
  they cannot collide with the m4 quote characters.
"""

MACHINE_INDEPENDENT_DEFS = r"""dnl --- Force machine-independent macro library ----------------------
dnl
dnl === utility macros ================================================
define(`zz_first', `$1')dnl
define(`zz_second', `$2')dnl
define(`zz_third', `ifelse(`$3', `', `1', `$3')')dnl
define(`zz_parenpos', `index(`$1', `(')')dnl
define(`zz_base', `ifelse(zz_parenpos(`$1'), -1, `$1', `substr(`$1', 0, zz_parenpos(`$1'))')')dnl
define(`zz_subs', `ifelse(zz_parenpos(`$1'), -1, `', `substr(`$1', zz_parenpos(`$1'))')')dnl
define(`ZZLBLC', `90000')dnl
define(`zz_newlabel', `define(`ZZLBLC', incr(ZZLBLC))ZZLBLC')dnl
define(`zz_endlabel', `ifelse(`$1', `', `ZZDOL', `$1')')dnl
dnl === program structure =============================================
define(`force_main', `define(`ZZUNIT', `$1')define(`ZZMAIN', `$1')define(`ZZNPID', `$2')define(`ZZMEID', `$3')dnl
      SUBROUTINE $1($3, $2)
      INTEGER $3, $2
force_environment')dnl
define(`force_sub', `define(`ZZUNIT', `$1')define(`ZZNPID', `$3')define(`ZZMEID', `$4')dnl
      SUBROUTINE $1($4, $3`'ifelse(`$2', `', `', `, $2'))
      INTEGER $4, $3
force_environment')dnl
define(`forcecall', `      CALL $1(ZZMEID, ZZNPID`'ifelse(`$2', `', `', `, $2'))')dnl
define(`externf', `C Force external subroutine: $1')dnl
define(`end_declarations', `C --- end of Force declarations ---')dnl
define(`join_force', `barrier_begin()
barrier_end()
      RETURN')dnl
dnl === barrier =======================================================
define(`barrier_begin', `pushdef(`ZZBLBL', zz_newlabel)dnl
C barrier entry
      mi_lock(`BARWIN')
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .LT. ZZNPID) THEN
      mi_unlock(`BARWIN')
      mi_lock(`BARWOT')
      ZZNBAR = ZZNBAR - 1
      IF (ZZNBAR .EQ. 0) THEN
      mi_unlock(`BARWIN')
      ELSE
      mi_unlock(`BARWOT')
      END IF
      GO TO ZZBLBL
      END IF
C barrier section (one process)')dnl
define(`barrier_end', `C barrier exit
      ZZNBAR = ZZNBAR - 1
      IF (ZZNBAR .EQ. 0) THEN
      mi_unlock(`BARWIN')
      ELSE
      mi_unlock(`BARWOT')
      END IF
ZZBLBL CONTINUE`'popdef(`ZZBLBL')')dnl
dnl === critical sections =============================================
define(`critical', `pushdef(`ZZCRIT', `$1')dnl
      LOGICAL $1
      COMMON /ZZK$1/ $1
mi_register_shared(`ZZK$1')
      mi_lock(`$1')')dnl
define(`end_critical', `      mi_unlock(ZZCRIT)`'popdef(`ZZCRIT')')dnl
dnl === declarations ==================================================
define(`shared_decl', `zz_shr_each(`$1', $2)')dnl
define(`zz_shr_each', `zz_shr_one(`$1', `$2')`'ifelse(`$3', `', `', `
zz_shr_each(`$1', shift(shift($@)))')')dnl
define(`zz_shr_one', `      $1 $2
      COMMON /ZZS`'zz_base(`$2')/ zz_base(`$2')
mi_register_shared(`ZZS`'zz_base(`$2')')')dnl
define(`private_decl', `      $1 $2')dnl
define(`async_decl', `zz_asy_each(`$1', $2)')dnl
define(`zz_asy_each', `zz_asy_one(`$1', `$2')`'ifelse(`$3', `', `', `
zz_asy_each(`$1', shift(shift($@)))')')dnl
define(`zz_asy_one', `      $1 $2
      COMMON /ZZA`'zz_base(`$2')/ zz_base(`$2')
mi_register_shared(`ZZA`'zz_base(`$2')')
mi_async_extra(zz_base(`$2'), zz_subs(`$2'))')dnl
define(`shared_common_decl', `      COMMON /$1/ $2
mi_register_shared(`$1')')dnl
define(`private_common_decl', `C Force private common block $1
      COMMON /$1/ $2')dnl
define(`async_common_decl', `      COMMON /$1/ $2
mi_register_shared(`$1')
zz_asyc_each($2)')dnl
define(`zz_asyc_each', `mi_async_extra(zz_base(`$1'), `')`'ifelse(`$2', `', `', `
zz_asyc_each(shift($@))')')dnl
dnl === data synchronization ==========================================
define(`produce', `mi_produce(`$1', `$2')')dnl
define(`consume', `mi_consume(`$1', `$2')')dnl
define(`copyasync', `mi_copy(`$1', `$2')')dnl
define(`voidasync', `mi_void(`$1')')dnl
dnl === prescheduled DOALL ============================================
define(`presched_do', `pushdef(`ZZDOL', `$1')dnl
C prescheduled loop ($1): cyclic `index' distribution
      DO $1 $2 = (zz_first($3)) + (ZZMEID - 1) * (zz_third($3)),
     & zz_second($3), ZZNPID * (zz_third($3))')dnl
define(`end_presched_do', `zz_endlabel(`$1') CONTINUE`'popdef(`ZZDOL')')dnl
dnl --- blocked variant (scheduling ablation; not in the paper) -------
define(`blocksched_do', `pushdef(`ZZDOL', `$1')dnl
      INTEGER ZZT$1, ZZA$1, ZZZ$1, ZZP$1
C prescheduled loop ($1): blocked `index' distribution
      ZZT$1 = ((zz_second($3)) - (zz_first($3)) + (zz_third($3)))
     & / (zz_third($3))
      ZZA$1 = ((ZZMEID - 1) * ZZT$1) / ZZNPID
      ZZZ$1 = (ZZMEID * ZZT$1) / ZZNPID - 1
      DO $1 ZZP$1 = ZZA$1, ZZZ$1
      $2 = (zz_first($3)) + ZZP$1 * (zz_third($3))')dnl
define(`end_blocksched_do', `zz_endlabel(`$1') CONTINUE`'popdef(`ZZDOL')')dnl
dnl === selfscheduled DOALL (the paper's section 4.2 expansion) =======
dnl ZZSCHED selects the dispatch policy: `self' (one index per lock
dnl round, the paper's listing), `chunked' (ZZCHUNK indices per round)
dnl or `guided' (remaining/ZZNPID, min 1).  Overridden by loading
dnl extra definitions after this library (force translate --sched).
define(`ZZSCHED', `self')dnl
define(`ZZCHUNK', `1')dnl
define(`selfsched_do', `pushdef(`ZZDOL', `$1')dnl
      INTEGER ZZI$1
      COMMON /ZZC$1/ ZZI$1
      LOGICAL ZZL$1
      COMMON /ZZD$1/ ZZL$1
mi_register_shared(`ZZC$1')
mi_register_shared(`ZZD$1')
C loop entry code
      mi_lock(`BARWIN')
      IF (ZZNBAR .EQ. 0) THEN
C initialize loop `index'
        ZZI$1 = (zz_first($3))
      END IF
C report arrival of processes
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. ZZNPID) THEN
      mi_unlock(`BARWOT')
      ELSE
      mi_unlock(`BARWIN')
      END IF
ifelse(ZZSCHED, `self', `C self scheduled loop `index' distribution
$1 mi_lock(`ZZL$1')
C get next `index' value
      $2 = ZZI$1
      ZZI$1 = $2 + (zz_third($3))
      mi_unlock(`ZZL$1')
C test for completion
      IF (((zz_third($3)) .GT. 0 .AND. $2 .LE. (zz_second($3))) .OR. ((zz_third($3)) .LT. 0 .AND. $2 .GE. (zz_second($3)))) THEN', `pushdef(`ZZCLB', zz_newlabel)dnl
C self scheduled loop `index' distribution (ZZSCHED)
      INTEGER ZZV$1, ZZH$1, ZZN$1
$1 mi_lock(`ZZL$1')
C claim a chunk of `index' values
      ZZV$1 = ZZI$1
ifelse(ZZSCHED, `guided', `      ZZH$1 = ((zz_second($3)) - ZZV$1 + (zz_third($3)))
     & / (zz_third($3)) / ZZNPID
      IF (ZZH$1 .LT. 1) ZZH$1 = 1', `      ZZH$1 = ZZCHUNK')
      ZZI$1 = ZZV$1 + ZZH$1 * (zz_third($3))
      mi_unlock(`ZZL$1')
C test for completion
      IF (((zz_third($3)) .GT. 0 .AND. ZZV$1 .LE. (zz_second($3))) .OR. ((zz_third($3)) .LT. 0 .AND. ZZV$1 .GE. (zz_second($3)))) THEN
C iterate over the claimed chunk
      DO ZZCLB ZZN$1 = 0, ZZH$1 - 1
      $2 = ZZV$1 + ZZN$1 * (zz_third($3))
      IF (((zz_third($3)) .GT. 0 .AND. $2 .LE. (zz_second($3))) .OR. ((zz_third($3)) .LT. 0 .AND. $2 .GE. (zz_second($3)))) THEN')')dnl
define(`end_selfsched_do', `ifelse(ZZSCHED, `self', `      GO TO zz_endlabel(`$1')
      END IF', `      END IF
ZZCLB CONTINUE
      GO TO zz_endlabel(`$1')
      END IF`'popdef(`ZZCLB')')
C loop exit code
      mi_lock(`BARWOT')
C report exit of processes
      ZZNBAR = ZZNBAR - 1
      IF (ZZNBAR .EQ. 0) THEN
      mi_unlock(`BARWIN')
      ELSE
      mi_unlock(`BARWOT')
      END IF`'popdef(`ZZDOL')')dnl
dnl === doubly nested DOALLs (linearized index pairs) =================
define(`presched_do2', `pushdef(`ZZDOL', `$1')dnl
      INTEGER ZZP$1, ZZW$1, ZZQ$1
C prescheduled doubly nested loop ($1)
      ZZW$1 = ((zz_second($5)) - (zz_first($5)) + (zz_third($5)))
     & / (zz_third($5))
      ZZQ$1 = ZZW$1 * (((zz_second($3)) - (zz_first($3))
     & + (zz_third($3))) / (zz_third($3)))
      DO $1 ZZP$1 = ZZMEID - 1, ZZQ$1 - 1, ZZNPID
      $2 = (zz_first($3)) + (ZZP$1 / ZZW$1) * (zz_third($3))
      $4 = (zz_first($5)) + MOD(ZZP$1, ZZW$1) * (zz_third($5))')dnl
define(`end_presched_do2', `zz_endlabel(`$1') CONTINUE`'popdef(`ZZDOL')')dnl
define(`selfsched_do2', `pushdef(`ZZDOL', `$1')dnl
      INTEGER ZZI$1, ZZT$1, ZZW$1, ZZP$1
      COMMON /ZZC$1/ ZZI$1, ZZT$1, ZZW$1
      LOGICAL ZZL$1
      COMMON /ZZD$1/ ZZL$1
mi_register_shared(`ZZC$1')
mi_register_shared(`ZZD$1')
C loop entry code
      mi_lock(`BARWIN')
      IF (ZZNBAR .EQ. 0) THEN
        ZZW$1 = ((zz_second($5)) - (zz_first($5)) + (zz_third($5)))
     & / (zz_third($5))
        ZZT$1 = ZZW$1 * (((zz_second($3)) - (zz_first($3))
     & + (zz_third($3))) / (zz_third($3)))
        ZZI$1 = 0
      END IF
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. ZZNPID) THEN
      mi_unlock(`BARWOT')
      ELSE
      mi_unlock(`BARWIN')
      END IF
C self scheduled `index' pair distribution
$1 mi_lock(`ZZL$1')
      ZZP$1 = ZZI$1
      ZZI$1 = ZZP$1 + 1
      mi_unlock(`ZZL$1')
      IF (ZZP$1 .LT. ZZT$1) THEN
      $2 = (zz_first($3)) + (ZZP$1 / ZZW$1) * (zz_third($3))
      $4 = (zz_first($5)) + MOD(ZZP$1, ZZW$1) * (zz_third($5))')dnl
define(`end_selfsched_do2', `      GO TO zz_endlabel(`$1')
      END IF
C loop exit code
      mi_lock(`BARWOT')
      ZZNBAR = ZZNBAR - 1
      IF (ZZNBAR .EQ. 0) THEN
      mi_unlock(`BARWIN')
      ELSE
      mi_unlock(`BARWOT')
      END IF`'popdef(`ZZDOL')')dnl
dnl === Pcase =========================================================
define(`ZZPCC', `0')dnl
define(`pcase', `define(`ZZPCC', incr(ZZPCC))pushdef(`ZZPCID', ZZPCC)pushdef(`ZZPCN', `0')pushdef(`ZZPCOPEN', `0')pushdef(`ZZPCVAR', `$1')dnl
ifelse(`$1', `', `C prescheduled `pcase'', `C selfscheduled `pcase' on $1
      LOGICAL ZZK$1
      COMMON /ZZKC$1/ ZZK$1
mi_register_shared(`ZZKC$1')
      INTEGER ZZMY`'ZZPCID
      ZZMY`'ZZPCID = 0')')dnl
define(`zz_close_sect', `ifelse(ZZPCOPEN, `1', `      END IF
')define(`ZZPCOPEN', `1')')dnl
define(`zz_cond_and', `ifelse(`$1', `', `', ` .AND. ($1)')')dnl
define(`zz_sect_header', `ifelse(ZZPCVAR, `', `      IF (MOD(ZZPCN - 1, ZZNPID) .EQ. ZZMEID - 1`'zz_cond_and(`$1')) THEN', `      IF (ZZMY`'ZZPCID .LT. ZZPCN) THEN
      mi_lock(`ZZK`'ZZPCVAR')
      ZZPCVAR = ZZPCVAR + 1
      ZZMY`'ZZPCID = ZZPCVAR
      mi_unlock(`ZZK`'ZZPCVAR')
      END IF
      IF (ZZMY`'ZZPCID .EQ. ZZPCN`'zz_cond_and(`$1')) THEN')')dnl
define(`usect', `zz_close_sect`'define(`ZZPCN', incr(ZZPCN))dnl
C `pcase' section ZZPCN
zz_sect_header(`')')dnl
define(`csect', `zz_close_sect`'define(`ZZPCN', incr(ZZPCN))dnl
C `pcase' conditional section ZZPCN
zz_sect_header(`$1')')dnl
define(`end_pcase', `zz_close_sect`'dnl
C end `pcase'
popdef(`ZZPCID')popdef(`ZZPCN')popdef(`ZZPCOPEN')popdef(`ZZPCVAR')dnl')dnl
dnl === Askfor ========================================================
define(`taskq_decl', `      CALL FRCQIN("$1", $2)')dnl
define(`askfor', `      LOGICAL ZZG$1
$1 CALL FRCQGT("$3", $2, ZZG$1)
      IF (ZZG$1) THEN')dnl
define(`putwork', `      CALL FRCQPT("$1", $2)')dnl
define(`end_askfor', `      GO TO $1
      END IF')dnl
dnl === driver generation =============================================
define(`force_finalize', `C$FORCE BEGIN DRIVER
      PROGRAM FORCED
mi_driver_startup
      CALL ZZENVI
mi_spawn_processes
      CALL FRCJON
      END
C$FORCE END DRIVER
      SUBROUTINE ZZENVI
force_environment
      ZZNBAR = 0
      mi_init_lock(`BARWIN', `0')
      mi_init_lock(`BARWOT', `1')
      END
mi_emit_startup_unit')dnl
"""
