r"""Machine-dependent macros: Cray-2.

Locks are operating-system calls (``SYSLCK``/``SYSUNL``) — the OS
handles a list of locked processes in cooperation with the scheduler —
and locks are a scarce resource.  Shared memory is identified at
compile time via directives.
"""

from repro.macros.machdep.common import (
    directive_registration,
    environment_macro,
    fork_driver,
    two_lock_async_macros,
)

DEFINITIONS = (
    "dnl --- Cray-2 machine-dependent Force macros ---------------------\n"
    + two_lock_async_macros("SYSLCK", "SYSUNL")
    + directive_registration()
    + fork_driver()
    + environment_macro()
)
