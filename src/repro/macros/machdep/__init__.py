"""Machine-dependent macro definition sets, one module per port.

Each module exposes ``DEFINITIONS`` — an m4 definition file (a string)
providing the macros listed in
:data:`repro.macros.loader.MACHDEP_INTERFACE`.  Porting the Force to a
new machine means writing one of these files; experiment E7 counts how
small they are relative to the shared machine-independent layer.
"""

from repro.macros.machdep import (
    alliant,
    cray2,
    encore,
    flex32,
    hep,
    python_host,
    sequent,
)

#: machine key -> machine-dependent m4 definitions
MACHDEP_MODULES = {
    "hep": hep,
    "flex32": flex32,
    "encore-multimax": encore,
    "sequent-balance": sequent,
    "alliant-fx8": alliant,
    "cray-2": cray2,
    "python-host": python_host,
}

__all__ = ["MACHDEP_MODULES"]
