r"""Machine-dependent macros: the Python host itself.

The seventh port applies the paper's own methodology to the machine
this reproduction runs on: a multi-core POSIX host driven from
CPython.  Its process model is real ``fork``ed OS processes and its
shared memory is identified at **run time** — COMMON blocks become
views over a POSIX shared-memory segment, exactly the Encore's
shared-page discipline with ``/dev/shm`` standing in for the shared
pages.  Software spinlocks, run-time startup registration.

The driver carries a ``C$FORCE HOST PYTHON`` marker comment so the
generated Fortran is distinguishable from the Encore/Alliant output
(the pipeline's directive scanner ignores it — only ``C$FORCE SHARED``
lines bind).
"""

from repro.macros.machdep.common import (
    environment_macro,
    fork_driver,
    two_lock_async_macros,
)


def _host_startup_registration() -> str:
    """Run-time sharing, Encore-style, plus the host marker line."""
    return r"""define(`mi_register_shared', `divert(3)      CALL FRCSHB("$1")
divert(0)')dnl
define(`mi_driver_startup', `C$FORCE HOST PYTHON
      CALL ZZSTRT')dnl
define(`mi_emit_startup_unit', `      SUBROUTINE ZZSTRT
undivert(3)      CALL FRCPAG
      END')dnl
"""


DEFINITIONS = (
    "dnl --- Python host machine-dependent Force macros ----------------\n"
    + two_lock_async_macros("SPINLK", "SPINUN")
    + _host_startup_registration()
    + fork_driver()
    + environment_macro()
)
