r"""Machine-dependent macros: Sequent Balance.

Software test&set spinlocks (``SPINLK``/``SPINUN``); processes created
with UNIX fork (full copy of data and stack); shared variables bound at
**link time**: the generated startup subroutine registers every shared
block, and the program is run twice — the first run executes only the
startup routines to produce linker commands (emulated by the pipeline's
two-run protocol).
"""

from repro.macros.machdep.common import (
    environment_macro,
    fork_driver,
    startup_registration,
    two_lock_async_macros,
)

DEFINITIONS = (
    "dnl --- Sequent Balance machine-dependent Force macros ------------\n"
    + two_lock_async_macros("SPINLK", "SPINUN")
    + startup_registration(driver_calls_startup=False)
    + fork_driver()
    + environment_macro()
)
