r"""Machine-dependent macros: Flex/32.

A combined lock — spin for a limited time, then make an operating
system call (``CMBLCK``/``CMBUNL``).  Shared variables are declared at
compile time, as on the HEP, via directives.
"""

from repro.macros.machdep.common import (
    directive_registration,
    environment_macro,
    fork_driver,
    two_lock_async_macros,
)

DEFINITIONS = (
    "dnl --- Flex/32 machine-dependent Force macros --------------------\n"
    + two_lock_async_macros("CMBLCK", "CMBUNL")
    + directive_registration()
    + fork_driver()
    + environment_macro()
)
