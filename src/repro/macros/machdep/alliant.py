r"""Machine-dependent macros: Alliant FX/8.

Like the Encore, sharing is established at run time, except that all
sharing must start at the beginning of a page; the fork variant shares
all data segments and copies only the stack, so process creation is
lighter than a full UNIX fork.
"""

from repro.macros.machdep.common import (
    environment_macro,
    fork_driver,
    startup_registration,
    two_lock_async_macros,
)

DEFINITIONS = (
    "dnl --- Alliant FX/8 machine-dependent Force macros ---------------\n"
    + two_lock_async_macros("SPINLK", "SPINUN")
    + startup_registration(driver_calls_startup=True)
    + fork_driver()
    + environment_macro()
)
