r"""Shared fragments for software-lock machine-dependent macro sets.

Machines whose locks are software mutual exclusion (spin, syscall or
combined — everything except the HEP) implement the Force full/empty
state with the paper's two-lock protocol (§4.2): each asynchronous
variable V gets locks ZZE<V> and ZZF<V>; empty ⇔ E locked ∧ F unlocked,
full ⇔ F locked ∧ E unlocked.

Each machine's module composes these fragments with its own lock call
names and driver/startup strategy, so the resulting DEFINITIONS string
remains the complete per-machine artifact the paper describes (and E7
measures).
"""

from __future__ import annotations


def two_lock_async_macros(lock_call: str, unlock_call: str) -> str:
    """Produce/Consume/Copy/Void via the two-lock protocol."""
    return rf"""dnl --- two-lock full/empty protocol (paper section 4.2) --------------
define(`mi_lock', `CALL {lock_call}($1)')dnl
define(`mi_unlock', `CALL {unlock_call}($1)')dnl
define(`mi_init_lock', `CALL FRCLKI($1, $2)')dnl
define(`mi_produce', `C `produce' $1
      CALL {lock_call}(ZZF`'zz_base(`$1')`'zz_subs(`$1'))
      $1 = $2
      CALL {unlock_call}(ZZE`'zz_base(`$1')`'zz_subs(`$1'))')dnl
define(`mi_consume', `C `consume' $1
      CALL {lock_call}(ZZE`'zz_base(`$1')`'zz_subs(`$1'))
      $2 = $1
      CALL {unlock_call}(ZZF`'zz_base(`$1')`'zz_subs(`$1'))')dnl
define(`mi_copy', `C `copy' $1 (read leaving full)
      CALL {lock_call}(ZZE`'zz_base(`$1')`'zz_subs(`$1'))
      $2 = $1
      CALL {unlock_call}(ZZE`'zz_base(`$1')`'zz_subs(`$1'))')dnl
define(`mi_void', `      CALL FRCVOD(ZZE`'zz_base(`$1')`'zz_subs(`$1'), ZZF`'zz_base(`$1')`'zz_subs(`$1'))')dnl
define(`mi_async_extra', `      LOGICAL ZZE$1`'$2, ZZF$1`'$2
      COMMON /ZZB$1/ ZZE$1, ZZF$1
mi_register_shared(`ZZB$1')
      CALL FRCAIN($1, ZZE$1, ZZF$1)')dnl
"""


def environment_macro() -> str:
    """The Force parallel-environment declarations (barrier state)."""
    return r"""define(`force_environment', `      COMMON /FRCENV/ ZZNBAR, BARWIN, BARWOT
      INTEGER ZZNBAR
      LOGICAL BARWIN, BARWOT
mi_register_shared(`FRCENV')')dnl
"""


def directive_registration() -> str:
    """Compile-time sharing: emit a compiler directive (HEP/Flex/Cray)."""
    return r"""define(`mi_register_shared', `C$FORCE SHARED $1')dnl
define(`mi_driver_startup', `C compile-time shared memory: no startup call')dnl
define(`mi_emit_startup_unit', `')dnl
"""


def startup_registration(*, driver_calls_startup: bool) -> str:
    """Link/run-time sharing: registrations collect into the startup
    subroutine (diversion 3); optionally the driver calls it at run
    time (Encore/Alliant) — on the Sequent the linker pass runs it."""
    driver = ("      CALL ZZSTRT" if driver_calls_startup
              else "C startup executed by the two-run linker protocol")
    return rf"""define(`mi_register_shared', `divert(3)      CALL FRCSHB("$1")
divert(0)')dnl
define(`mi_driver_startup', `{driver}')dnl
define(`mi_emit_startup_unit', `      SUBROUTINE ZZSTRT
undivert(3)      CALL FRCPAG
      END')dnl
"""


def fork_driver(spawn_call: str = "FRKALL") -> str:
    """Driver fragments for fork-model machines."""
    return rf"""define(`mi_spawn_processes', `      CALL {spawn_call}("ZZMAIN")')dnl
"""
