r"""Machine-dependent macros: Denelcor HEP.

The HEP provides a hardware full/empty access-state bit on every memory
cell, so locks and Produce/Consume map directly onto asynchronous
memory operations (``HEPLKW``/``HEPLKS`` wait-lock/set-unlock,
``HEPPRD``/``HEPCON``/``HEPCPY``/``HEPVOD``) — no two-lock protocol.
Processes are created by subroutine call (``HEPSPN``) and shared memory
is identified at compile time via directives.
"""

from repro.macros.machdep.common import environment_macro

DEFINITIONS = r"""dnl --- HEP machine-dependent Force macros ----------------------------
define(`mi_lock', `CALL HEPLKW($1)')dnl
define(`mi_unlock', `CALL HEPLKS($1)')dnl
define(`mi_init_lock', `CALL FRCLKI($1, $2)')dnl
define(`mi_produce', `C `produce' $1 (hardware full/empty)
      CALL HEPPRD($1, $2)')dnl
define(`mi_consume', `C `consume' $1 (hardware full/empty)
      CALL HEPCON($1, $2)')dnl
define(`mi_copy', `C `copy' $1 (hardware full/empty)
      CALL HEPCPY($1, $2)')dnl
define(`mi_void', `      CALL HEPVOD($1)')dnl
define(`mi_async_extra', `      CALL HEPVIN($1)')dnl
define(`mi_register_shared', `C$FORCE SHARED $1')dnl
define(`mi_driver_startup', `C compile-time shared memory: no startup call')dnl
define(`mi_emit_startup_unit', `')dnl
define(`mi_spawn_processes', `      CALL HEPSPN("ZZMAIN")')dnl
""" + environment_macro()
