r"""Machine-dependent macros: Encore Multimax.

Software spinlocks like the Sequent, but shared memory is identified at
**run time**: the driver calls the generated startup subroutine before
creating the force, and the runtime computes shared-page addresses with
padding at both ends of the shared area (``FRCPAG``).
"""

from repro.macros.machdep.common import (
    environment_macro,
    fork_driver,
    startup_registration,
    two_lock_async_macros,
)

DEFINITIONS = (
    "dnl --- Encore Multimax machine-dependent Force macros ------------\n"
    + two_lock_async_macros("SPINLK", "SPINUN")
    + startup_registration(driver_calls_startup=True)
    + fork_driver()
    + environment_macro()
)
