"""``force profile`` rendering: contention, timeline, folded stacks.

Three views over one :class:`~repro.obsv.analyze.TraceAnalysis`:

* :func:`render_profile` — the human report: contention ranking,
  barrier-episode wait spread, selfsched dispatch balance, a
  per-lane utilization timeline, and the critical-path attribution;
* :func:`folded_stacks` — ``lane;category;name <weight>`` lines, the
  folded-stack format flamegraph.pl and speedscope load directly
  (weights are integer µs for native traces, cycles for simulated
  ones);
* :func:`utilization_timeline` — the fixed-resolution busy/wait
  character matrix the report embeds (exposed for tests).
"""

from __future__ import annotations

from repro.obsv.analyze import Span, TraceAnalysis

#: timeline resolution (characters across the makespan)
_TIMELINE_COLS = 60

#: timeline glyphs: busy / waiting / outside the lane's lifetime
_BUSY, _WAIT, _IDLE = "#", ".", " "


def _fmt(value: float, clock: str) -> str:
    if clock == "cycles":
        return str(int(round(value)))
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def utilization_timeline(analysis: TraceAnalysis,
                         cols: int = _TIMELINE_COLS
                         ) -> dict[str, str]:
    """lane -> one row of busy/wait/idle glyphs across the makespan."""
    makespan = analysis.makespan
    if makespan <= 0 or not analysis.lanes:
        return {lane: _IDLE * cols for lane in analysis.lanes}
    t_start = analysis.t_start
    step = makespan / cols
    waits_by_lane: dict[str, list[Span]] = {}
    for span in analysis.spans:
        if span.op == "wait":
            waits_by_lane.setdefault(span.lane, []).append(span)
    rows: dict[str, str] = {}
    for lane, row in analysis.lanes.items():
        first, last = row["first"], row["last"]
        waits = waits_by_lane.get(lane, [])
        glyphs = []
        for col in range(cols):
            a = t_start + col * step
            b = a + step
            if b <= first or a >= last:
                glyphs.append(_IDLE)
                continue
            waited = sum(min(b, s.t1) - max(a, s.t0)
                         for s in waits if s.t0 < b and s.t1 > a)
            glyphs.append(_WAIT if waited > (b - a) / 2 else _BUSY)
        rows[lane] = "".join(glyphs)
    return rows


def folded_stacks(analysis: TraceAnalysis) -> str:
    """Folded-stack lines (``frame;frame;... weight``).

    One stack per lane and attribution bucket: waits and holds fold
    as ``lane;wait|hold;kind;name``; the remaining active time folds
    as ``lane;compute``.  Weights are integers (µs native, cycles
    simulated), and zero-weight stacks are dropped — both required by
    flamegraph.pl.
    """
    scale = 1.0 if analysis.clock == "cycles" else 1e6
    weights: dict[str, float] = {}
    for span in analysis.spans:
        frames = f"{span.lane};{span.op};{span.kind}"
        if span.name:
            frames += f";{span.name}"
        weights[frames] = weights.get(frames, 0.0) + span.dur
    for lane, row in analysis.lanes.items():
        weights[f"{lane};compute"] = \
            weights.get(f"{lane};compute", 0.0) + row["compute"]
    lines = []
    for frames in sorted(weights):
        weight = int(round(weights[frames] * scale))
        if weight > 0:
            lines.append(f"{frames} {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_profile(analysis: TraceAnalysis, *,
                   max_rows: int = 12) -> str:
    """The ``force profile`` text report."""
    clock = analysis.clock
    unit = "cycles" if clock == "cycles" else "wall"
    lines = [
        "=== force profile ===",
        f"clock: {clock}   makespan: {_fmt(analysis.makespan, clock)}"
        f"   lanes: {len(analysis.lanes)}",
    ]
    source = analysis.meta.get("source")
    if source:
        lines[-1] += f"   source: {source}"
    dropped = analysis.meta.get("dropped_events")
    if dropped:
        lines.append(f"WARNING: {dropped} event(s) were dropped by the "
                     "ring buffer; attribution is a lower bound "
                     "(re-run with a larger --trace-buffer)")

    lines.append("")
    lines.append(f"--- contention ranking (by total {unit} wait) ---")
    ranked = [row for row in analysis.constructs
              if row["kind"] != "sched"][:max_rows]
    if ranked:
        lines.append(f"{'construct':<26s} {'acq':>6s} {'waiters':>8s} "
                     f"{'wait':>10s} {'wait_max':>10s} {'hold':>10s}")
        for row in ranked:
            label = f"{row['kind']}:{row['name']}" if row["name"] \
                else row["kind"]
            lines.append(
                f"{label:<26s} {row['acquisitions']:>6d} "
                f"{row['waiters']:>8d} "
                f"{_fmt(row['wait_total'], clock):>10s} "
                f"{_fmt(row['wait_max'], clock):>10s} "
                f"{_fmt(row['hold_total'], clock):>10s}")
    else:
        lines.append("(no construct activity recorded)")

    if analysis.barrier_episodes:
        lines.append("")
        lines.append("--- barrier episodes (wait spread) ---")
        lines.append(f"{'t':>12s} {'waiters':>8s} {'mean':>10s} "
                     f"{'max':>10s} {'spread':>10s}")
        for row in analysis.barrier_episodes[:max_rows]:
            lines.append(
                f"{_fmt(row['t'], clock):>12s} {row['waiters']:>8d} "
                f"{_fmt(row['wait_mean'], clock):>10s} "
                f"{_fmt(row['wait_max'], clock):>10s} "
                f"{_fmt(row['spread'], clock):>10s}")

    if analysis.chunks:
        lines.append("")
        lines.append("--- selfsched dispatch ---")
        for label, row in sorted(analysis.chunks.items()):
            shares = row["per_lane"]
            imbalance = (max(shares.values()) / max(1, min(
                shares.values()))) if shares else 1.0
            lines.append(
                f"{label}: {row['chunks']} chunk(s), "
                f"{row['indices']} index(es), "
                f"per-lane imbalance {imbalance:.2f}x")

    lines.append("")
    lines.append("--- utilization timeline "
                 f"({_BUSY}=busy {_WAIT}=waiting) ---")
    for lane, glyphs in sorted(
            utilization_timeline(analysis).items()):
        row = analysis.lanes[lane]
        busy = row["active"] - row["wait"]
        ratio = busy / analysis.makespan if analysis.makespan else 0.0
        lines.append(f"{lane:<14s} |{glyphs}| {ratio * 100:5.1f}%")

    path = analysis.critical_path
    lines.append("")
    lines.append("--- critical path ---")
    lines.append(f"coverage: {path['coverage'] * 100:.1f}% of makespan "
                 f"explained by {len(path['segments'])} segment(s)")
    for category, share in sorted(path["shares"].items(),
                                  key=lambda kv: -kv[1]):
        lines.append(f"  {category:<12s} {share * 100:5.1f}%")
    named = sorted(path["by_name"].items(), key=lambda kv: -kv[1])
    if named:
        lines.append("by construct:")
        for key, share in named[:max_rows]:
            lines.append(f"  {key:<24s} {share * 100:5.1f}%")
    return "\n".join(lines)
