"""The metrics registry: counters, gauges, bounded histograms.

One :class:`MetricsRegistry` holds every metric of one run, keyed by
``(name, sorted label items)``.  Three metric types cover the runtime's
needs:

* :class:`Counter` — monotonically increasing totals (episodes,
  acquisitions, chunks);
* :class:`Gauge` — last-value-wins measurements (process count, pool
  depth, wall clock);
* :class:`Histogram` — wait/hold duration distributions with fixed
  cumulative buckets (the Prometheus contract) **and** a bounded
  reservoir for quantiles: while fewer than ``reservoir`` samples have
  arrived every observation is kept; on overflow the reservoir is
  decimated (every second sample kept, sampling stride doubled), so
  memory stays bounded, the kept samples spread across the whole run,
  and the process is deterministic — no RNG in the hot path.

Cost model (same contract as :mod:`repro.runtime.stats`): a Force
constructed without ``metrics=True`` keeps no registry at all and each
interception point pays one ``is None`` test; an enabled registry's
record path is one dict lookup + a few float ops under a lock.

Exports: :meth:`MetricsRegistry.to_prometheus` (text exposition
format) and :meth:`MetricsRegistry.as_dict` (JSON document, schema
checked by :func:`validate_metrics`).  Registries pickle (the process
backend ships each worker's registry to the parent) and
:meth:`MetricsRegistry.merge` folds them together.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

#: JSON export schema version
METRICS_SCHEMA = 1

#: default histogram buckets for native (seconds) observations
SECONDS_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)
#: default histogram buckets for simulated (cycle) observations
CYCLES_BUCKETS = (1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7)

#: quantiles reported by histogram exports
QUANTILES = (0.5, 0.9, 0.95, 0.99)


def _fmt_float(value: float) -> str:
    """Prometheus-friendly number rendering (no trailing zeros)."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> dict[str, Any]:
        return {"value": self.value}

    def load(self, data: dict[str, Any]) -> None:
        self.value = float(data.get("value", 0.0))


class Gauge:
    __slots__ = ("value", "_mode")

    kind = "gauge"

    def __init__(self, mode: str = "last") -> None:
        #: merge discipline: "last" | "max" | "sum"
        self._mode = mode
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def merge(self, other: "Gauge") -> None:
        if self._mode == "sum":
            self.value += other.value
        elif self._mode == "max":
            self.value = max(self.value, other.value)
        else:
            self.value = other.value

    def as_dict(self) -> dict[str, Any]:
        return {"value": self.value}

    def load(self, data: dict[str, Any]) -> None:
        self.value = float(data.get("value", 0.0))


class Histogram:
    """Cumulative-bucket histogram with a bounded reservoir."""

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min",
                 "max", "reservoir", "capacity", "stride")

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = SECONDS_BUCKETS,
                 reservoir: int = 512) -> None:
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.capacity = max(8, int(reservoir))
        self.reservoir: list[float] = []
        self.stride = 1

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        # Deterministic bounded reservoir: keep every stride-th sample;
        # on overflow decimate (drop every other kept sample) and
        # double the stride, so retention spreads over the whole run.
        if self.count % self.stride == 0:
            self.reservoir.append(value)
            if len(self.reservoir) >= self.capacity:
                self.reservoir = self.reservoir[::2]
                self.stride *= 2

    def quantile(self, q: float) -> float:
        if not self.reservoir:
            return 0.0
        ordered = sorted(self.reservoir)
        index = min(len(ordered) - 1,
                    max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def merge(self, other: "Histogram") -> None:
        if other.count == 0:
            return
        if other.buckets != self.buckets:
            # Re-bucket through the reservoir: approximate but bounded.
            for value in other.reservoir:
                self.observe(value)
            self.count += other.count - len(other.reservoir)
            self.sum += other.sum - sum(other.reservoir)
            return
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, n in enumerate(other.bucket_counts):
            self.bucket_counts[index] += n
        for value in other.reservoir:
            self.reservoir.append(value)
            if len(self.reservoir) >= self.capacity:
                self.reservoir = self.reservoir[::2]
                self.stride *= 2

    def as_dict(self) -> dict[str, Any]:
        cumulative: dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            cumulative[_fmt_float(bound)] = running
        cumulative["+Inf"] = self.count
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": cumulative,
            "quantiles": {f"p{int(q * 100)}": self.quantile(q)
                          for q in QUANTILES},
        }

    def load(self, data: dict[str, Any]) -> None:
        self.count = int(data.get("count", 0))
        self.sum = float(data.get("sum", 0.0))
        if self.count:
            self.min = float(data.get("min", 0.0))
            self.max = float(data.get("max", 0.0))
        cumulative = data.get("buckets", {})
        bounds = [float("inf") if key == "+Inf" else float(key)
                  for key in cumulative]
        self.buckets = tuple(b for b in sorted(bounds)
                             if b != float("inf"))
        counts = [cumulative[_fmt_float(b)] for b in self.buckets]
        self.bucket_counts = []
        previous = 0
        for running in counts:
            self.bucket_counts.append(int(running) - previous)
            previous = int(running)
        self.bucket_counts.append(self.count - previous)
        # Quantile detail is approximated from the exported quantiles.
        self.reservoir = [float(v)
                          for v in data.get("quantiles", {}).values()
                          if self.count]


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge,
                 "histogram": Histogram}


class MetricsRegistry:
    """All metrics of one run, keyed by (name, labels)."""

    def __init__(self, namespace: str = "force") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        #: (name, labelitems) -> metric
        self._metrics: dict[tuple[str, tuple], Any] = {}
        #: name -> (kind, help, constructor kwargs)
        self._families: dict[str, tuple[str, str, dict]] = {}

    # ------------------------------------------------------------------
    # registration / lookup
    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, help_text: str,
             labels: dict[str, str] | None, **kwargs: Any) -> Any:
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None and metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, requested {kind}")
            if metric is None:
                family = self._families.get(name)
                if family is None:
                    self._families[name] = (kind, help_text, kwargs)
                elif family[0] != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family[0]}, requested {kind}")
                else:
                    kwargs = family[2]
                metric = _METRIC_TYPES[kind](**kwargs)
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, labels: dict[str, str] | None = None,
                help: str = "") -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, labels: dict[str, str] | None = None,
              help: str = "", mode: str = "last") -> Gauge:
        return self._get("gauge", name, help, labels, mode=mode)

    def histogram(self, name: str,
                  labels: dict[str, str] | None = None, help: str = "",
                  buckets: Iterable[float] = SECONDS_BUCKETS,
                  reservoir: int = 512) -> Histogram:
        return self._get("histogram", name, help, labels,
                         buckets=tuple(buckets), reservoir=reservoir)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _snapshot(self) -> list[tuple[str, dict[str, str], Any]]:
        with self._lock:
            items = [(name, dict(labelitems), metric)
                     for (name, labelitems), metric
                     in self._metrics.items()]
        return sorted(items, key=lambda item: (item[0],
                                               sorted(item[1].items())))

    def as_dict(self) -> dict[str, Any]:
        """The JSON export (see :func:`validate_metrics`)."""
        metrics = []
        for name, labels, metric in self._snapshot():
            entry: dict[str, Any] = {
                "name": f"{self.namespace}_{name}",
                "type": metric.kind,
                "help": self._families.get(name, ("", "", {}))[1],
                "labels": labels,
            }
            entry.update(metric.as_dict())
            metrics.append(entry)
        return {"schema": METRICS_SCHEMA, "namespace": self.namespace,
                "metrics": metrics}

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: list[str] = []
        seen_families: set[str] = set()
        for name, labels, metric in self._snapshot():
            full = f"{self.namespace}_{name}"
            if full not in seen_families:
                seen_families.add(full)
                kind, help_text, _ = self._families.get(
                    name, (metric.kind, "", {}))
                if help_text:
                    lines.append(f"# HELP {full} {help_text}")
                lines.append(f"# TYPE {full} {metric.kind}")
            label_text = _labels_text(labels)
            if metric.kind in ("counter", "gauge"):
                lines.append(
                    f"{full}{label_text} {_fmt_float(metric.value)}")
                continue
            data = metric.as_dict()
            for bound, running in data["buckets"].items():
                bucket_labels = _labels_text({**labels, "le": bound})
                lines.append(f"{full}_bucket{bucket_labels} {running}")
            lines.append(f"{full}_sum{label_text} "
                         f"{_fmt_float(data['sum'])}")
            lines.append(f"{full}_count{label_text} {data['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # merge / transport
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        with other._lock:
            items = list(other._metrics.items())
            families = dict(other._families)
        with self._lock:
            for name, family in families.items():
                self._families.setdefault(name, family)
        for (name, labelitems), metric in items:
            kind, help_text, kwargs = families.get(
                name, (metric.kind, "", {}))
            mine = self._get(kind, name, help_text, dict(labelitems),
                             **kwargs)
            mine.merge(metric)

    def load_dict(self, document: dict[str, Any]) -> None:
        """Merge a :meth:`as_dict` document back into this registry."""
        prefix = f"{document.get('namespace', self.namespace)}_"
        for entry in document.get("metrics", []):
            name = entry["name"]
            if name.startswith(prefix):
                name = name[len(prefix):]
            kind = entry.get("type", "gauge")
            kwargs: dict[str, Any] = {}
            if kind == "histogram":
                bounds = [float(k) for k in entry.get("buckets", {})
                          if k != "+Inf"]
                if bounds:
                    kwargs["buckets"] = tuple(sorted(bounds))
            fresh = _METRIC_TYPES[kind](**kwargs)
            fresh.load(entry)
            mine = self._get(kind, name, entry.get("help", ""),
                             entry.get("labels") or {}, **kwargs)
            mine.merge(fresh)

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(value)}"'
        for key, value in sorted(labels.items()))
    return "{" + body + "}"


def _escape(value: Any) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"") \
        .replace("\n", r"\n")


def validate_metrics(document: Any) -> list[str]:
    """Schema-check a metrics JSON export; ``[]`` means valid."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["top level must be a JSON object"]
    if document.get("schema") != METRICS_SCHEMA:
        errors.append(f"schema must be {METRICS_SCHEMA}")
    metrics = document.get("metrics")
    if not isinstance(metrics, list):
        return errors + ["'metrics' must be a list"]
    for index, entry in enumerate(metrics):
        where = f"metrics[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            errors.append(f"{where}: missing string 'name'")
        kind = entry.get("type")
        if kind not in _METRIC_TYPES:
            errors.append(f"{where}: unknown type {kind!r}")
            continue
        if not isinstance(entry.get("labels"), dict):
            errors.append(f"{where}: missing 'labels' object")
        if kind in ("counter", "gauge"):
            if not isinstance(entry.get("value"), (int, float)):
                errors.append(f"{where}: missing numeric 'value'")
            continue
        for key in ("count", "sum", "min", "max"):
            if not isinstance(entry.get(key), (int, float)):
                errors.append(f"{where}: missing numeric {key!r}")
        buckets = entry.get("buckets")
        if not isinstance(buckets, dict) or "+Inf" not in buckets:
            errors.append(f"{where}: histogram needs cumulative "
                          "'buckets' ending at '+Inf'")
        else:
            # JSON writers may reorder keys (sort_keys puts "+Inf"
            # first and sorts bounds as strings); cumulativeness is a
            # property of the *numeric* bound order.
            try:
                in_order = sorted(
                    buckets.items(),
                    key=lambda item: float("inf") if item[0] == "+Inf"
                    else float(item[0]))
            except ValueError:
                errors.append(f"{where}: bucket bounds must be "
                              "numbers or '+Inf'")
                in_order = []
            running = -1
            for _bound, value in in_order:
                if not isinstance(value, int) or value < running:
                    errors.append(f"{where}: bucket counts must be "
                                  "cumulative non-decreasing ints")
                    break
                running = value
            if isinstance(entry.get("count"), int) \
                    and buckets["+Inf"] != entry["count"]:
                errors.append(f"{where}: +Inf bucket must equal count")
        if not isinstance(entry.get("quantiles"), dict):
            errors.append(f"{where}: histogram needs 'quantiles'")
    return errors


# ----------------------------------------------------------------------
# the runtime facade
# ----------------------------------------------------------------------
class ForceMetrics:
    """The runtime's metric surface over one registry.

    One small object so the interception points in
    :mod:`repro.runtime.force` / :mod:`repro.runtime.procforce` stay a
    single attribute test + one method call, and the metric names and
    label conventions live here, in exactly one place:

    ========================================  ======================
    metric                                    labels
    ========================================  ======================
    ``force_barrier_episodes_total``          —
    ``force_barrier_wait_seconds``            —
    ``force_critical_acquisitions_total``     ``name``
    ``force_critical_contended_total``        ``name``
    ``force_critical_wait_seconds``           ``name``
    ``force_critical_hold_seconds``           ``name``
    ``force_selfsched_chunks_total``          ``label``
    ``force_selfsched_indices_total``         ``label``
    ``force_askfor_put_total``                ``pool``
    ``force_askfor_got_total``                ``pool``
    ``force_askfor_depth_max``                ``pool``
    ``force_asyncvar_blocked_seconds``        ``name``
    ``force_processes``                       —
    ``force_run_wall_seconds``                —
    ``force_checkpoints_written_total``       —
    ``force_checkpoint_bytes_total``          —
    ``force_recoveries_total``                —
    ``force_retries_total``                   —
    ``force_degraded_restarts_total``         —
    ========================================  ======================
    """

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry()

    # -- barriers ------------------------------------------------------
    def barrier(self, waited: float, released: bool) -> None:
        self.barrier_wait(waited)
        if released:
            self.barrier_episode()

    def barrier_wait(self, waited: float) -> None:
        self.registry.histogram(
            "barrier_wait_seconds",
            help="Time blocked at the barrier").observe(waited)

    def barrier_episode(self) -> None:
        self.registry.counter(
            "barrier_episodes_total",
            help="Barrier episodes completed").inc()

    # -- critical sections ---------------------------------------------
    def critical(self, name: str, waited: float, contended: bool,
                 held: float) -> None:
        reg = self.registry
        labels = {"name": name}
        reg.counter("critical_acquisitions_total", labels,
                    help="Critical-section acquisitions").inc()
        if contended:
            reg.counter("critical_contended_total", labels,
                        help="Contended critical entries").inc()
            reg.histogram("critical_wait_seconds", labels,
                          help="Time blocked entering a critical "
                               "section").observe(waited)
        reg.histogram("critical_hold_seconds", labels,
                      help="Time the critical section was "
                           "held").observe(held)

    # -- selfscheduled loops -------------------------------------------
    def selfsched_chunk(self, label: str, size: int) -> None:
        reg = self.registry
        labels = {"label": label}
        reg.counter("selfsched_chunks_total", labels,
                    help="Chunk dispatches (one lock round "
                         "each)").inc()
        reg.counter("selfsched_indices_total", labels,
                    help="Loop indices handed out").inc(size)

    # -- askfor / asyncvar ---------------------------------------------
    def askfor(self, pool: str, *, total_put: int, total_got: int,
               max_depth: int) -> None:
        reg = self.registry
        labels = {"pool": pool}
        reg.gauge("askfor_put_total", labels,
                  help="Work items put", mode="max").set(total_put)
        reg.gauge("askfor_got_total", labels,
                  help="Work items got", mode="max").set(total_got)
        reg.gauge("askfor_depth_max", labels,
                  help="Maximum pool depth", mode="max").set(max_depth)

    def asyncvar_block(self, name: str, seconds: float) -> None:
        self.registry.histogram(
            "asyncvar_blocked_seconds", {"name": name},
            help="Time blocked on a full/empty "
                 "variable").observe(seconds)

    # -- recovery ------------------------------------------------------
    def checkpoint_written(self, nbytes: int) -> None:
        reg = self.registry
        reg.counter("checkpoints_written_total",
                    help="Snapshots serialized at barrier "
                         "episodes").inc()
        reg.counter("checkpoint_bytes_total",
                    help="Bytes of snapshot documents "
                         "written").inc(nbytes)

    def recovery(self, *, degraded: bool) -> None:
        reg = self.registry
        reg.counter("recoveries_total",
                    help="Runs resumed from a checkpoint").inc()
        if degraded:
            reg.counter("degraded_restarts_total",
                        help="Elastic restarts at reduced "
                             "nproc").inc()

    def retry(self) -> None:
        self.registry.counter(
            "retries_total",
            help="Supervised attempts after a transient "
                 "failure").inc()

    # -- run-level -----------------------------------------------------
    def run_info(self, nproc: int, wall_s: float | None = None) -> None:
        reg = self.registry
        reg.gauge("processes", help="Force width", mode="max").set(nproc)
        if wall_s is not None:
            reg.gauge("run_wall_seconds",
                      help="Wall-clock of the run",
                      mode="max").set(wall_s)


def registry_from_sim(machine_key: str, nproc: int,
                      stats_dict: dict[str, Any],
                      events: list | None = None) -> MetricsRegistry:
    """Build a registry from a simulated run.

    The simulator already aggregates its interception points into
    :class:`~repro.sim.scheduler.SimStats`; this ingests that document
    (the ``sim`` section of ``stats_dict``) plus, when a trace was
    collected, the per-lock wait/hold spans recovered by the analysis
    engine — so simulated runs export through the same registry/format
    as native ones (histograms in cycles, buckets
    :data:`CYCLES_BUCKETS`).
    """
    registry = MetricsRegistry()
    sim = stats_dict.get("sim", stats_dict)
    registry.gauge("processes", help="Force width",
                   mode="max").set(nproc)
    registry.gauge("sim_makespan_cycles",
                   help="Simulated makespan").set(sim.get("makespan", 0))
    registry.gauge("sim_utilization_ratio",
                   help="Busy fraction across "
                        "processes").set(sim.get("utilization", 0.0))
    registry.counter("sim_lock_acquisitions_total",
                     help="Lock acquisitions").inc(
        sim.get("lock_acquisitions", 0))
    registry.counter("sim_contended_acquisitions_total",
                     help="Contended lock acquisitions").inc(
        sim.get("contended_acquisitions", 0))
    registry.counter("sim_spin_cycles_total",
                     help="Cycles burned spinning").inc(
        sim.get("spin_cycles", 0))
    registry.counter("sim_context_switches_total",
                     help="Context switches").inc(
        sim.get("context_switches", 0))
    if events:
        from repro.obsv.analyze import normalize_spans
        spans, _ = normalize_spans(events)
        for span in spans:
            if span.op == "hold":
                registry.histogram(
                    f"{span.kind}_hold_cycles", {"name": span.name},
                    help="Cycles a lock was held",
                    buckets=CYCLES_BUCKETS).observe(span.t1 - span.t0)
            elif span.op == "wait":
                registry.histogram(
                    f"{span.kind}_wait_cycles", {"name": span.name},
                    help="Cycles blocked waiting",
                    buckets=CYCLES_BUCKETS).observe(span.t1 - span.t0)
    return registry
