"""Replay a trace into attribution, histograms and the critical path.

Every consumer here works on the unified
:class:`~repro.trace.events.TraceEvent` stream, so one engine serves
both execution paths:

* **native** traces carry measured spans directly (``phase="X"`` with
  a duration): barrier/critical/askfor waits, critical holds,
  asyncvar blocks — plus instants for barrier episodes and
  selfscheduled chunk dispatches;
* **simulator** traces are instant lock verbs (``waiting on`` /
  ``granted`` / ``acquired`` / ``released``) and ``block``/``woken``
  pairs; :func:`normalize_spans` pairs them back into wait and hold
  spans per lane.

On the normalized spans the engine computes per-lane
wait/hold/compute attribution, a contention ranking per construct,
per-critical-name hold-time histograms, barrier-episode wait spread,
and the **critical path**: the dependent chain of spans that bounds
the makespan.  The path is found by walking *backwards* from the lane
that finishes last: active time is attributed to compute (or to the
lock being held); at a lock wait the walk jumps to the lane that held
that lock until the wait ended (critical sections serialize holders —
the same rule covers the simulator's barrier gate locks and
selfsched index locks); at a native barrier wait it jumps to the last
arriver of that episode (barrier episodes order phases); at a
``join``-style sched wait it jumps to the lane whose activity ended at
the wake (the joined worker); waits with no observable resolver
(askfor, asyncvar) stay on the path as wait segments.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any

from repro.trace.events import TraceEvent

from repro.obsv.metrics import CYCLES_BUCKETS, SECONDS_BUCKETS, Histogram

#: simulator ops that open/close spans (everything is an instant there)
_SIM_LOCK_OPS = frozenset(["wait", "grant", "acquire", "release"])

#: native span ops that mean "this lane was blocked"
_WAIT_OPS = frozenset(["wait", "produce", "consume", "copy"])

#: categories whose waits can be resolved to a holding lane
_LOCK_KINDS = frozenset(["critical", "selfsched", "barrier"])

#: cap on backward-walk steps (a guard, not a tuning knob)
_MAX_PATH_STEPS = 100_000


@dataclass(frozen=True, slots=True)
class Span:
    """One closed interval of lane time: a wait or a hold."""

    lane: str
    kind: str
    name: str
    op: str           #: "wait" | "hold" | "unlock" (point release)
    t0: float
    t1: float

    @property
    def dur(self) -> float:
        return self.t1 - self.t0


@dataclass(slots=True)
class SpanMeta:
    clock: str                       #: "seconds" | "cycles"
    t_start: float
    t_end: float
    #: lane -> (first event ts, last event ts)
    lane_bounds: dict[str, tuple[float, float]]

    @property
    def makespan(self) -> float:
        return max(0.0, self.t_end - self.t_start)


def _detect_clock(events: list[TraceEvent]) -> str:
    if events and all(isinstance(e.ts, int) for e in events):
        return "cycles"
    return "seconds"


def normalize_spans(
        events: list[TraceEvent]) -> tuple[list[Span], SpanMeta]:
    """Pair instants into spans; pass native spans through.

    Simulator lanes run a small state machine: ``waiting on X`` opens
    a wait closed by ``granted X``; ``granted``/``acquired`` opens a
    hold closed by ``released X``; ``block KEY`` opens a wait closed
    by the lane's next ``woken``.  Unclosed opens at end of trace are
    closed at the lane's last timestamp (the run ended mid-wait).
    """
    spans: list[Span] = []
    bounds: dict[str, tuple[float, float]] = {}
    #: (lane) -> list of open (kind, name, t) block waits
    open_wait: dict[str, tuple[str, str, float]] = {}
    #: (lane, name) -> (kind, t) open hold
    open_hold: dict[tuple[str, str], tuple[str, float]] = {}
    for event in events:
        ts = float(event.ts)
        first, last = bounds.get(event.proc, (ts, ts))
        bounds[event.proc] = (min(first, ts), max(last, ts))
        if event.phase == "X":
            t0 = float(event.ts)
            t1 = t0 + float(event.dur)
            op = "wait" if event.op in _WAIT_OPS else "hold"
            spans.append(Span(event.proc, event.kind, event.name, op,
                              t0, t1))
            prev = bounds[event.proc]
            bounds[event.proc] = (min(prev[0], t0), max(prev[1], t1))
            continue
        op = event.op
        if op in _SIM_LOCK_OPS:
            lane, name = event.proc, event.name
            if op == "wait":
                open_wait[lane] = (event.kind, name, ts)
            elif op in ("grant", "acquire"):
                pending = open_wait.pop(lane, None)
                if pending is not None and pending[1] == name:
                    spans.append(Span(lane, pending[0], name, "wait",
                                      pending[2], ts))
                elif pending is not None:
                    open_wait[lane] = pending
                open_hold[(lane, name)] = (event.kind, ts)
            elif op == "release":
                held = open_hold.pop((lane, name), None)
                if held is not None:
                    spans.append(Span(lane, held[0], name, "hold",
                                      held[1], ts))
                else:
                    # An unlock with no matching acquire: the barrier
                    # macro's last arriver opens an out-gate it never
                    # held.  Record a point span so the critical-path
                    # walk can resolve gate waiters to this lane.
                    spans.append(Span(lane, event.kind, name,
                                      "unlock", ts, ts))
        elif op == "block":
            open_wait[event.proc] = (event.kind, event.name, ts)
        elif op == "woken":
            pending = open_wait.pop(event.proc, None)
            if pending is not None:
                spans.append(Span(event.proc, pending[0], pending[1],
                                  "wait", pending[2], ts))
    # Close dangling opens at the lane's end (run finished mid-state).
    for lane, (kind, name, t0) in open_wait.items():
        end = bounds.get(lane, (t0, t0))[1]
        if end > t0:
            spans.append(Span(lane, kind, name, "wait", t0, end))
    for (lane, name), (kind, t0) in open_hold.items():
        end = bounds.get(lane, (t0, t0))[1]
        if end > t0:
            spans.append(Span(lane, kind, name, "hold", t0, end))
    spans.sort(key=lambda s: (s.t0, s.lane))
    t_start = min((b[0] for b in bounds.values()), default=0.0)
    t_end = max((b[1] for b in bounds.values()), default=0.0)
    return spans, SpanMeta(clock=_detect_clock(events),
                           t_start=t_start, t_end=t_end,
                           lane_bounds=bounds)


# ----------------------------------------------------------------------
# the analysis document
# ----------------------------------------------------------------------
@dataclass(slots=True)
class TraceAnalysis:
    """Everything :func:`analyze_trace` recovers from one trace."""

    clock: str
    t_start: float
    makespan: float
    #: lane -> {"active","wait","hold","compute","first","last"}
    lanes: dict[str, dict[str, float]]
    #: contention ranking rows, most wait-burdened first
    constructs: list[dict[str, Any]]
    #: critical-section name -> hold-time histogram
    hold_histograms: dict[str, Histogram]
    #: one row per native barrier episode (empty for simulator traces)
    barrier_episodes: list[dict[str, Any]]
    #: selfsched label -> dispatch statistics
    chunks: dict[str, dict[str, Any]]
    #: {"segments": [...], "shares": {...}, "by_name": {...},
    #:  "coverage": float}
    critical_path: dict[str, Any]
    spans: list[Span] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "clock": self.clock,
            "makespan": self.makespan,
            "lanes": self.lanes,
            "constructs": self.constructs,
            "hold_histograms": {name: hist.as_dict() for name, hist
                                in self.hold_histograms.items()},
            "barrier_episodes": self.barrier_episodes,
            "chunks": self.chunks,
            "critical_path": {
                key: value for key, value in self.critical_path.items()
                if key != "segments"
            } | {"segments": [
                {"lane": lane, "t0": t0, "t1": t1,
                 "category": category, "name": name}
                for lane, t0, t1, category, name
                in self.critical_path["segments"]]},
            "meta": self.meta,
        }


def _tolerance(meta: SpanMeta) -> float:
    if meta.clock == "cycles":
        return 1.5
    return max(1e-6, meta.makespan * 1e-3)


def analyze_trace(events: list[TraceEvent], *,
                  meta: dict[str, Any] | None = None) -> TraceAnalysis:
    """Replay ``events`` into a full :class:`TraceAnalysis`."""
    spans, span_meta = normalize_spans(events)
    tol = _tolerance(span_meta)
    lanes = _lane_attribution(spans, span_meta)
    constructs = _contention_ranking(spans)
    hold_hists = _hold_histograms(spans, span_meta)
    episodes = _barrier_episodes(events, spans, tol)
    chunks = _chunk_stats(events, spans, span_meta)
    path = _critical_path(spans, span_meta, tol)
    return TraceAnalysis(
        clock=span_meta.clock,
        t_start=span_meta.t_start,
        makespan=span_meta.makespan,
        lanes=lanes,
        constructs=constructs,
        hold_histograms=hold_hists,
        barrier_episodes=episodes,
        chunks=chunks,
        critical_path=path,
        spans=spans,
        meta=dict(meta or {}),
    )


def _lane_attribution(spans: list[Span],
                      meta: SpanMeta) -> dict[str, dict[str, float]]:
    lanes: dict[str, dict[str, float]] = {}
    for lane, (first, last) in sorted(meta.lane_bounds.items()):
        lanes[lane] = {"first": first, "last": last,
                       "active": last - first,
                       "wait": 0.0, "hold": 0.0, "compute": 0.0}
    for span in spans:
        row = lanes.get(span.lane)
        if row is None:
            continue
        row["wait" if span.op == "wait" else "hold"] += span.dur
    for row in lanes.values():
        row["compute"] = max(
            0.0, row["active"] - row["wait"] - row["hold"])
    return lanes


def _contention_ranking(spans: list[Span]) -> list[dict[str, Any]]:
    rows: dict[tuple[str, str], dict[str, Any]] = {}
    for span in spans:
        row = rows.get((span.kind, span.name))
        if row is None:
            row = {"kind": span.kind, "name": span.name,
                   "acquisitions": 0, "waiters": 0,
                   "wait_total": 0.0, "wait_max": 0.0,
                   "hold_total": 0.0, "hold_max": 0.0}
            rows[(span.kind, span.name)] = row
        if span.op == "wait":
            row["waiters"] += 1
            row["wait_total"] += span.dur
            row["wait_max"] = max(row["wait_max"], span.dur)
        elif span.op == "hold":    # point "unlock" spans don't count
            row["acquisitions"] += 1
            row["hold_total"] += span.dur
            row["hold_max"] = max(row["hold_max"], span.dur)
    return sorted(rows.values(),
                  key=lambda r: (-r["wait_total"], -r["hold_total"],
                                 r["kind"], r["name"]))


def _hold_histograms(spans: list[Span],
                     meta: SpanMeta) -> dict[str, Histogram]:
    buckets = CYCLES_BUCKETS if meta.clock == "cycles" \
        else SECONDS_BUCKETS
    hists: dict[str, Histogram] = {}
    for span in spans:
        if span.kind != "critical" or span.op != "hold":
            continue
        hist = hists.get(span.name)
        if hist is None:
            hist = Histogram(buckets=buckets)
            hists[span.name] = hist
        hist.observe(span.dur)
    return hists


def _barrier_episodes(events: list[TraceEvent], spans: list[Span],
                      tol: float) -> list[dict[str, Any]]:
    """Native barrier episodes with their wait spread.

    Episode instants mark each release; every barrier wait span ends
    at (about) the release time of its episode, so waits bucket to the
    first episode instant at or after their end.  Simulator barriers
    are gate locks (no episode instants) and rank as constructs
    instead.
    """
    marks = sorted(float(e.ts) for e in events
                   if e.kind == "barrier" and e.op == "episode")
    if not marks:
        return []
    episodes: list[dict[str, Any]] = [
        {"t": mark, "waiters": 0, "wait_min": float("inf"),
         "wait_max": 0.0, "wait_total": 0.0}
        for mark in marks]
    for span in spans:
        if span.kind != "barrier" or span.op != "wait":
            continue
        index = bisect_left(marks, span.t1 - tol)
        if index >= len(episodes):
            index = len(episodes) - 1
        row = episodes[index]
        row["waiters"] += 1
        row["wait_total"] += span.dur
        row["wait_min"] = min(row["wait_min"], span.dur)
        row["wait_max"] = max(row["wait_max"], span.dur)
    for row in episodes:
        if row["waiters"] == 0:
            row["wait_min"] = 0.0
        row["wait_mean"] = row["wait_total"] / row["waiters"] \
            if row["waiters"] else 0.0
        #: the imbalance signal: how much longer the first arriver
        #: waited than the last
        row["spread"] = row["wait_max"] - row["wait_min"]
    return episodes


def _chunk_stats(events: list[TraceEvent], spans: list[Span],
                 meta: SpanMeta) -> dict[str, dict[str, Any]]:
    """Per-label selfsched dispatch statistics.

    Native chunk instants carry ``index``/``size`` args; simulator
    dispatches are reconstructed from the index-lock (``ZZL<label>``)
    hold spans — one hold per dispatch round.
    """
    labels: dict[str, dict[str, Any]] = {}
    for event in events:
        if event.kind != "selfsched" or event.op != "chunk":
            continue
        row = labels.setdefault(
            event.name, {"chunks": 0, "indices": 0, "per_lane": {}})
        row["chunks"] += 1
        row["indices"] += int(event.args.get("size", 1))
        per_lane = row["per_lane"]
        per_lane[event.proc] = per_lane.get(event.proc, 0) \
            + int(event.args.get("size", 1))
    if labels:
        return labels
    for span in spans:
        if span.kind != "selfsched" or span.op != "hold":
            continue
        row = labels.setdefault(
            span.name, {"chunks": 0, "indices": 0, "per_lane": {}})
        row["chunks"] += 1
        row["indices"] += 1
        per_lane = row["per_lane"]
        per_lane[span.lane] = per_lane.get(span.lane, 0) + 1
    return labels


# ----------------------------------------------------------------------
# critical-path extraction
# ----------------------------------------------------------------------
def _critical_path(spans: list[Span], meta: SpanMeta,
                   tol: float) -> dict[str, Any]:
    """Backward walk from the last-finishing lane to the start.

    Returns path segments ``(lane, t0, t1, category, name)`` (newest
    first reversed to oldest-first), the share of makespan per
    category, a per-construct breakdown, and the fraction of makespan
    the path explains.
    """
    if not meta.lane_bounds:
        return {"segments": [], "shares": {}, "by_name": {},
                "coverage": 0.0}
    waits_by_lane: dict[str, list[Span]] = {}
    holds_by_lane: dict[str, list[Span]] = {}
    holds_by_name: dict[str, list[Span]] = {}
    barrier_waits: list[Span] = []
    for span in spans:
        if span.op == "wait":
            waits_by_lane.setdefault(span.lane, []).append(span)
            if span.kind == "barrier":
                barrier_waits.append(span)
        else:
            holds_by_lane.setdefault(span.lane, []).append(span)
            holds_by_name.setdefault(span.name, []).append(span)
    for seq in waits_by_lane.values():
        seq.sort(key=lambda s: s.t1)
    for seq in holds_by_lane.values():
        seq.sort(key=lambda s: s.t0)
    for seq in holds_by_name.values():
        seq.sort(key=lambda s: s.t1)
    barrier_waits.sort(key=lambda s: s.t1)
    barrier_ends = [s.t1 for s in barrier_waits]

    lane = max(meta.lane_bounds,
               key=lambda la: meta.lane_bounds[la][1])
    cursor = meta.lane_bounds[lane][1]
    segments: list[tuple[str, float, float, str, str]] = []

    for _ in range(_MAX_PATH_STEPS):
        lane_start = meta.lane_bounds.get(lane, (meta.t_start,))[0]
        wait = _latest_wait_before(waits_by_lane.get(lane, []), cursor,
                                   tol)
        boundary = wait.t1 if wait is not None else lane_start
        boundary = min(boundary, cursor)
        if boundary < cursor:
            # the walk builds newest-first; keep the split's internal
            # order consistent so the final reverse() yields oldest-first
            segments.extend(reversed(_split_active(
                lane, boundary, cursor, holds_by_lane.get(lane, []))))
        if wait is None:
            # Reached the lane's first event: the lane exists because
            # another lane spawned it — continue on the spawner.
            spawner = _spawner_lane(meta.lane_bounds, lane, boundary,
                                    tol)
            if spawner is None or boundary <= meta.t_start + tol:
                break
            lane, cursor = spawner, boundary
            continue
        next_lane, next_cursor = lane, wait.t0
        on_path = False
        if wait.kind in _LOCK_KINDS:
            hold = _blocking_hold(holds_by_name.get(wait.name, []),
                                  wait, tol)
            if hold is not None:
                next_lane, next_cursor = hold.lane, min(hold.t1,
                                                        wait.t1)
            elif wait.kind == "barrier":
                arriver = _last_arriver(barrier_waits, barrier_ends,
                                        wait, tol)
                if arriver is not None and arriver is not wait:
                    next_lane, next_cursor = arriver.lane, arriver.t0
                # else: we were the last arriver — the wait is the
                # episode bookkeeping itself; stay and step past it.
            else:
                on_path = True
                segments.append((lane, wait.t0, wait.t1, wait.kind,
                                 wait.name))
        else:
            waker = _waker_lane(meta.lane_bounds, wait, tol) \
                if wait.kind == "sched" else None
            if waker is not None:
                # A join-style wait resolves when another lane finishes:
                # jump to the lane whose activity ended at the wake.
                next_lane, next_cursor = waker[0], min(waker[1], wait.t1)
            else:
                # askfor/asyncvar waits have no recorded resolver:
                # the wait itself is on the path.
                on_path = True
                segments.append((lane, wait.t0, wait.t1, wait.kind,
                                 wait.name))
        if next_cursor >= cursor and next_lane != lane:
            # The resolver jumped *forward* — tolerance slop picked a
            # later event (micro-spans on the native clock are far
            # shorter than the tolerance window).  Recover by treating
            # the wait as unresolved: it goes on the path and the walk
            # steps past it on this lane, always toward the start.
            next_lane, next_cursor = lane, wait.t0
            if not on_path:
                clipped = min(wait.t1, cursor)
                if clipped > wait.t0:
                    segments.append((lane, wait.t0, clipped,
                                     wait.kind, wait.name))
        if next_cursor >= cursor:       # still no progress: stop
            break
        lane, cursor = next_lane, next_cursor
        if cursor <= meta.t_start:
            break

    segments.reverse()
    shares: dict[str, float] = {}
    by_name: dict[str, float] = {}
    total = 0.0
    for _, t0, t1, category, name in segments:
        dur = t1 - t0
        total += dur
        shares[category] = shares.get(category, 0.0) + dur
        if name:
            key = f"{category}:{name}"
            by_name[key] = by_name.get(key, 0.0) + dur
    makespan = meta.makespan or 1.0
    return {
        "segments": segments,
        "shares": {k: round(v / makespan, 4)
                   for k, v in sorted(shares.items())},
        "by_name": {k: round(v / makespan, 4)
                    for k, v in sorted(by_name.items())},
        "coverage": round(total / makespan, 4),
    }


def _spawner_lane(lane_bounds: dict[str, tuple[float, float]],
                  lane: str, lane_start: float,
                  tol: float) -> str | None:
    """The lane that plausibly spawned ``lane``.

    Candidates were already running strictly before the child's first
    event and still alive at it; the latest-starting one is the
    closest ancestor.  Consecutive jumps therefore visit lanes with
    strictly earlier starts, so the walk terminates.
    """
    best: tuple[str, float] | None = None
    for other, (first, last) in lane_bounds.items():
        if other == lane or first >= lane_start:
            continue
        if last < lane_start - tol:
            continue
        if best is None or first > best[1]:
            best = (other, first)
    return best[0] if best is not None else None


def _waker_lane(lane_bounds: dict[str, tuple[float, float]],
                wait: Span, tol: float) -> tuple[str, float] | None:
    """The lane whose completion plausibly resolved a sched wait.

    A ``join``-style wait ends when some other lane finishes; among
    lanes whose last recorded activity falls inside the wait window,
    the latest-finishing one is the waker.  Lanes that outlive the
    wait keep running for other reasons and are not candidates.
    """
    best: tuple[str, float] | None = None
    for lane, (_, last) in lane_bounds.items():
        if lane == wait.lane:
            continue
        if last < wait.t0 - tol or last > wait.t1 + tol:
            continue
        if best is None or last > best[1]:
            best = (lane, last)
    return best


def _latest_wait_before(waits: list[Span], cursor: float,
                        tol: float) -> Span | None:
    """The wait span on this lane that most recently ended by cursor."""
    best = None
    for span in waits:
        if span.t1 <= cursor + tol and span.t0 < cursor:
            if best is None or span.t1 > best.t1:
                best = span
    return best


def _blocking_hold(holds: list[Span], wait: Span,
                   tol: float) -> Span | None:
    """The other-lane hold whose release resolved this wait."""
    best = None
    for span in holds:
        if span.lane == wait.lane:
            continue
        if span.t1 < wait.t0 - tol or span.t1 > wait.t1 + tol:
            continue
        if span.t0 > wait.t1:
            # causally impossible: a hold that began after the wait
            # already ended cannot be its blocker (the tolerance
            # window can be wide relative to micro-spans on the
            # native clock — do not let slop pick a later hold).
            continue
        if best is None or span.t1 > best.t1:
            best = span
    return best


def _last_arriver(barrier_waits: list[Span], ends: list[float],
                  wait: Span, tol: float) -> Span | None:
    """Among the episode's waiters, the one that arrived last.

    The episode's waits all end at (about) the same release time; the
    span with the latest start belongs to the last arriver — the lane
    whose arrival released everyone.
    """
    lo = bisect_left(ends, wait.t1 - tol)
    hi = bisect_right(ends, wait.t1 + tol)
    group = barrier_waits[lo:hi]
    if not group:
        return None
    return max(group, key=lambda s: s.t0)


def _split_active(lane: str, t0: float, t1: float,
                  holds: list[Span]
                  ) -> list[tuple[str, float, float, str, str]]:
    """Split a lane's active interval into hold and compute segments.

    Compute done while holding a lock is attributed to the lock (its
    kind and name): that time is serialized against every other
    would-be holder, which is exactly what a contention report needs
    to surface.
    """
    segments: list[tuple[str, float, float, str, str]] = []
    cursor = t0
    for hold in holds:
        if hold.t1 <= t0 or hold.t0 >= t1:
            continue
        h0, h1 = max(hold.t0, cursor), min(hold.t1, t1)
        if h0 > cursor:
            segments.append((lane, cursor, h0, "compute", ""))
        if h1 > h0:
            segments.append((lane, h0, h1, hold.kind, hold.name))
            cursor = h1
    if cursor < t1:
        segments.append((lane, cursor, t1, "compute", ""))
    return segments
