"""Performance forensics on top of the unified observability layer.

The modules here close the loop ROADMAP item 5 describes — the
runtime *records* barrier episodes, critical wait/hold spans,
selfscheduled chunk dispatches and askfor traffic (PR 1 stats, PR 3
traces), and this package turns those records into answers:

* :mod:`repro.obsv.metrics` — a typed metrics registry (counters,
  gauges, histograms with bounded reservoirs) fed live by both native
  backends and ingested from simulator runs, exported as Prometheus
  text or JSON (``force run --metrics``);
* :mod:`repro.obsv.analyze` — replay any trace into per-worker
  wait/hold/compute attribution, per-critical-name hold histograms,
  barrier-episode wait spread, and the critical path that bounds the
  makespan;
* :mod:`repro.obsv.profile` — the ``force profile`` reports:
  contention ranking, utilization timeline, folded stacks for
  speedscope / flamegraph.pl;
* :mod:`repro.obsv.tune` — the ``force tune`` recommender: replay a
  trace, extract per-iteration costs and lock overheads, predict each
  dispatch policy's makespan, and emit a versioned recommendation
  document (sched/chunk, spin budget, backend).
"""

from repro.obsv.analyze import TraceAnalysis, analyze_trace
from repro.obsv.metrics import (
    ForceMetrics,
    MetricsRegistry,
    registry_from_sim,
    validate_metrics,
)
from repro.obsv.profile import render_profile
from repro.obsv.tune import tune_from_events, validate_recommendation

__all__ = [
    "ForceMetrics",
    "MetricsRegistry",
    "TraceAnalysis",
    "analyze_trace",
    "registry_from_sim",
    "render_profile",
    "tune_from_events",
    "validate_metrics",
    "validate_recommendation",
]
