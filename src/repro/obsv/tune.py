"""``force tune``: turn one measured run into a policy recommendation.

ROADMAP item 5d — close the measurement→policy loop.  The recommender
replays a trace (native or simulated), recovers the *workload shape*
the scheduler actually saw, and predicts what every dispatch policy
would have cost on it:

* **per-index costs** — native selfsched chunk instants carry
  ``index``/``size`` args, so the time between a lane's consecutive
  dispatches is the cost of the chunk it just ran; simulator traces
  reconstruct dispatches from the index-lock (``ZZL<label>``) hold
  spans, with global grant order giving index order (exact under the
  default one-index-per-round policy the paper specifies);
* **lock overhead** ``ell`` — the median index-lock hold (simulator)
  or a per-dispatch floor from the dispatch-gap minimum (native);
* **policy prediction** — static maps (``cyclic`` from the paper's
  Presched expansion, ``blocked`` from the ablation's
  ``((me-1)*n)//P`` split) cost the maximum per-lane sum; dynamic
  policies (``self``/``chunked``/``guided``) run a greedy
  list-scheduling simulation in which every dispatch round serializes
  on the index lock for ``ell``.

The result is a versioned JSON document (schema checked by
:func:`validate_recommendation`): the cheapest predicted sched policy
and chunk, a spin-vs-block budget from the observed critical-section
hold-time distribution, and a backend suggestion from the measured
compute/wait ratio against the host's core count.
"""

from __future__ import annotations

import os
from statistics import median, pstdev
from typing import Any

from repro.trace.events import TraceEvent

from repro.obsv.analyze import TraceAnalysis, analyze_trace

#: recommendation-document schema version
RECOMMENDATION_SCHEMA = 1

#: policies the predictor understands
POLICIES = ("cyclic", "blocked", "self", "chunked", "guided")

#: default candidate grid: (policy, chunk)
DEFAULT_CANDIDATES = (
    ("cyclic", None), ("blocked", None), ("self", None),
    ("chunked", 2), ("chunked", 4), ("chunked", 8), ("guided", None),
)

#: spin-vs-block threshold on the p95 critical hold: short holds are
#: cheaper to spin through than to park on (perfbook's rule of thumb)
SPIN_P95_SECONDS = 1e-4
SPIN_P95_CYCLES = 200.0


# ----------------------------------------------------------------------
# workload extraction
# ----------------------------------------------------------------------
def extract_workload(analysis: TraceAnalysis) -> dict[str, dict]:
    """Per-label per-index costs and lock overhead from the spans."""
    labels: dict[str, dict] = {}
    native = _native_chunks(analysis)
    if native:
        return native
    return _sim_chunks(analysis)


def _native_chunks(analysis: TraceAnalysis) -> dict[str, dict]:
    """Costs from native chunk instants (exact index/size args)."""
    #: label -> lane -> [(ts, index, size)]
    per_lane: dict[str, dict[str, list[tuple[float, int, int]]]] = {}
    for event in analysis.meta.get("_events", []):
        if event.kind != "selfsched" or event.op != "chunk":
            continue
        per_lane.setdefault(event.name, {}).setdefault(
            event.proc, []).append(
            (float(event.ts), int(event.args.get("index", 0)),
             int(event.args.get("size", 1))))
    labels: dict[str, dict] = {}
    for label, lanes in per_lane.items():
        indexed: dict[int, float] = {}
        gaps: list[float] = []
        for lane, dispatches in lanes.items():
            dispatches.sort()
            lane_end = analysis.lanes.get(
                lane, {"last": 0.0})["last"]
            for i, (ts, index, size) in enumerate(dispatches):
                end = dispatches[i + 1][0] \
                    if i + 1 < len(dispatches) else lane_end
                cost = max(0.0, end - ts)
                gaps.append(cost)
                for offset in range(size):
                    indexed[index + offset] = cost / max(1, size)
        if not indexed:
            continue
        costs = [indexed[key] for key in sorted(indexed)]
        labels[label] = {
            "costs": costs,
            "ell": min(gaps) * 0.05 if gaps else 0.0,
            "dispatches": sum(len(d) for d in lanes.values()),
            "observed": "native",
        }
    return labels


def _sim_chunks(analysis: TraceAnalysis) -> dict[str, dict]:
    """Costs from simulator index-lock rounds.

    Per lane, the work of dispatch *k* is the gap between releasing
    the index lock and the lane's next attempt to take it (wait start,
    or grant when uncontended).  Tagging each gap with its grant time
    and sorting globally recovers index order, exact under the
    one-index-per-round policy.  The final hold per lane is the
    done-check round and contributes no cost.
    """
    by_label: dict[str, dict[str, list]] = {}
    waits_by_lane: dict[tuple[str, str], list] = {}
    for span in analysis.spans:
        if span.kind != "selfsched":
            continue
        if span.op == "hold":
            by_label.setdefault(span.name, {}).setdefault(
                span.lane, []).append(span)
        else:
            waits_by_lane.setdefault((span.name, span.lane),
                                     []).append(span)
    labels: dict[str, dict] = {}
    for label, lanes in by_label.items():
        tagged: list[tuple[float, float]] = []   # (grant_ts, cost)
        ells: list[float] = []
        for lane, holds in lanes.items():
            holds.sort(key=lambda s: s.t0)
            waits = sorted(waits_by_lane.get((label, lane), []),
                           key=lambda s: s.t0)
            ells.extend(h.dur for h in holds)
            for i in range(len(holds) - 1):
                this, after = holds[i], holds[i + 1]
                # The next attempt starts at the wait that led to the
                # next grant, or the grant itself when uncontended.
                attempt = after.t0
                for wait in waits:
                    if abs(wait.t1 - after.t0) <= 1.5 and \
                            wait.t0 > this.t1 - 1.5:
                        attempt = wait.t0
                        break
                tagged.append((this.t0, max(0.0, attempt - this.t1)))
        if not tagged:
            continue
        tagged.sort()
        labels[label] = {
            "costs": [cost for _, cost in tagged],
            "ell": float(median(ells)) if ells else 0.0,
            "dispatches": len(tagged),
            "observed": "sim",
        }
    return labels


# ----------------------------------------------------------------------
# policy prediction
# ----------------------------------------------------------------------
def predict_makespan(costs: list[float], nproc: int, policy: str,
                     chunk: int | None = None,
                     ell: float = 0.0) -> float:
    """Predicted loop makespan for one dispatch policy.

    Static policies are exact sums over their index maps; dynamic
    policies greedily hand the next chunk to the first free lane, each
    dispatch serializing on the index lock for ``ell``.

    Costs observed under a selfscheduled trace include each index's
    dispatch bookkeeping (on the order of the lock round ``ell``); a
    static distribution does not pay it, so static predictions use
    ``max(0, cost - ell)`` per index.
    """
    n = len(costs)
    if n == 0:
        return 0.0
    if policy == "cyclic":
        static = [max(0.0, c - ell) for c in costs]
        return max(sum(static[m::nproc]) for m in range(nproc))
    if policy == "blocked":
        static = [max(0.0, c - ell) for c in costs]
        spans = []
        for m in range(1, nproc + 1):
            lo = ((m - 1) * n) // nproc
            hi = (m * n) // nproc
            spans.append(sum(static[lo:hi]))
        return max(spans)
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    size_fixed = 1 if policy == "self" else (chunk or 1)
    lane_free = [0.0] * nproc
    lock_free = 0.0
    next_index = 0
    while next_index < n:
        lane = min(range(nproc), key=lane_free.__getitem__)
        start = max(lane_free[lane], lock_free)
        remaining = n - next_index
        if policy == "guided":
            size = max(1, remaining // nproc)
        else:
            size = size_fixed
        size = min(size, remaining)
        dispatched = start + ell
        lock_free = dispatched
        lane_free[lane] = dispatched + sum(
            costs[next_index:next_index + size])
        next_index += size
    # Every lane pays one final done-check lock round, serialized.
    finish = sorted(lane_free)
    for i in range(nproc):
        lock_free = max(lock_free, finish[i]) + ell
        finish[i] = lock_free
    return max(finish)


# ----------------------------------------------------------------------
# the recommender
# ----------------------------------------------------------------------
def tune_from_events(events: list[TraceEvent], *,
                     stats: dict[str, Any] | None = None,
                     nproc: int | None = None,
                     cpu_count: int | None = None,
                     source: dict[str, Any] | None = None,
                     candidates: tuple = DEFAULT_CANDIDATES
                     ) -> dict[str, Any]:
    """Replay a trace (+ optional stats) into a recommendation doc."""
    analysis = analyze_trace(events)
    analysis.meta["_events"] = events
    if nproc is None:
        lanes = [lane for lane in analysis.lanes if lane != "main"]
        nproc = max(1, len(lanes))
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    workload = extract_workload(analysis)
    unit = analysis.clock

    observations: dict[str, Any] = {
        "makespan": analysis.makespan,
        "clock": unit,
        "nproc": nproc,
        "labels": {},
    }
    busy = sum(row["active"] - row["wait"]
               for row in analysis.lanes.values())
    span = nproc * analysis.makespan
    observations["busy_fraction"] = round(busy / span, 4) if span \
        else 0.0

    sched = None
    for label, shape in sorted(workload.items()):
        costs = shape["costs"]
        total = sum(costs)
        mean = total / len(costs)
        cv = (pstdev(costs) / mean) if mean > 0 else 0.0
        observations["labels"][label] = {
            "indices": len(costs),
            "dispatches": shape["dispatches"],
            "cost_total": round(total, 6),
            "cost_cv": round(cv, 4),
            "ell": round(shape["ell"], 6),
        }
        predictions = {}
        for policy, chunk in candidates:
            key = policy if chunk is None else f"{policy}{chunk}"
            predictions[key] = round(predict_makespan(
                costs, nproc, policy, chunk=chunk,
                ell=shape["ell"]), 6)
        best = min(predictions, key=predictions.get)
        best_policy, best_chunk = next(
            (policy, chunk) for policy, chunk in candidates
            if (policy if chunk is None else f"{policy}{chunk}")
            == best)
        if sched is None:       # recommend for the dominant label
            sched = {
                "label": label,
                "policy": best_policy,
                "chunk": best_chunk,
                "predicted_makespans": predictions,
                "why": (f"imbalance cv={cv:.2f} over "
                        f"{len(costs)} index(es); lock overhead "
                        f"ell={shape['ell']:.6g} {unit}"),
            }

    spin = _spin_budget(analysis)
    backend = _backend_recommendation(observations["busy_fraction"],
                                      nproc, cpu_count, unit)
    return {
        "schema": RECOMMENDATION_SCHEMA,
        "generated_by": "force tune",
        "source": {"trace": source} if isinstance(source, str)
        else dict(source or {}),
        "observations": observations,
        "recommendations": {
            "sched": sched,
            "spin_budget": spin,
            "backend": backend,
        },
    }


def _spin_budget(analysis: TraceAnalysis) -> dict[str, Any] | None:
    """Spin-vs-block from the hottest critical's hold distribution."""
    if not analysis.hold_histograms:
        return None
    name, hist = max(analysis.hold_histograms.items(),
                     key=lambda kv: kv[1].count)
    p95 = hist.quantile(0.95)
    threshold = SPIN_P95_CYCLES if analysis.clock == "cycles" \
        else SPIN_P95_SECONDS
    if p95 <= threshold:
        return {"mode": "spin", "budget": round(2 * p95, 9),
                "unit": analysis.clock, "basis": name,
                "why": (f"'{name}' p95 hold {p95:.6g} "
                        f"{analysis.clock} is under the spin "
                        f"threshold {threshold:g}; spinning twice "
                        "that long beats parking")}
    return {"mode": "block", "budget": 0,
            "unit": analysis.clock, "basis": name,
            "why": (f"'{name}' p95 hold {p95:.6g} {analysis.clock} "
                    f"exceeds the spin threshold {threshold:g}; "
                    "park waiters instead of burning cycles")}


def _backend_recommendation(busy_fraction: float, nproc: int,
                            cpu_count: int,
                            unit: str) -> dict[str, Any]:
    if busy_fraction >= 0.5 and cpu_count > 1:
        width = min(nproc, cpu_count)
        return {"backend": "process", "nproc": width,
                "why": (f"compute-bound ({busy_fraction:.0%} busy): "
                        f"forked processes use the host's "
                        f"{cpu_count} core(s); width {width} avoids "
                        "oversubscription")}
    return {"backend": "thread", "nproc": nproc,
            "why": (f"wait-dominated ({busy_fraction:.0%} busy): "
                    "threads are cheaper than processes when lanes "
                    "mostly block")}


def validate_recommendation(document: Any) -> list[str]:
    """Schema-check a recommendation document; ``[]`` means valid."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["top level must be a JSON object"]
    if document.get("schema") != RECOMMENDATION_SCHEMA:
        errors.append(f"schema must be {RECOMMENDATION_SCHEMA}")
    if document.get("generated_by") != "force tune":
        errors.append("missing generated_by: 'force tune'")
    observations = document.get("observations")
    if not isinstance(observations, dict):
        errors.append("'observations' must be an object")
    else:
        for key in ("makespan", "busy_fraction"):
            if not isinstance(observations.get(key), (int, float)):
                errors.append(f"observations.{key} must be a number")
        if not isinstance(observations.get("labels"), dict):
            errors.append("observations.labels must be an object")
    recs = document.get("recommendations")
    if not isinstance(recs, dict):
        return errors + ["'recommendations' must be an object"]
    sched = recs.get("sched")
    if sched is not None:
        if not isinstance(sched, dict) \
                or sched.get("policy") not in POLICIES:
            errors.append("recommendations.sched.policy must be one "
                          f"of {', '.join(POLICIES)}")
        elif sched.get("policy") == "chunked" \
                and not isinstance(sched.get("chunk"), int):
            errors.append("chunked recommendation needs an integer "
                          "chunk")
        if isinstance(sched, dict) and not isinstance(
                sched.get("predicted_makespans"), dict):
            errors.append("recommendations.sched needs "
                          "predicted_makespans")
    spin = recs.get("spin_budget")
    if spin is not None and (not isinstance(spin, dict)
                             or spin.get("mode") not in ("spin",
                                                         "block")):
        errors.append("recommendations.spin_budget.mode must be "
                      "'spin' or 'block'")
    backend = recs.get("backend")
    if backend is not None and (
            not isinstance(backend, dict)
            or backend.get("backend") not in ("thread", "process")):
        errors.append("recommendations.backend.backend must be "
                      "'thread' or 'process'")
    return errors
