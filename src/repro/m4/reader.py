"""Pushback character reader used by the m4 engine.

Macro expansion output is pushed back onto the input and rescanned, so
the reader is a stack of string frames.  Reading consumes from the top
frame; pushing adds a new frame above it.  The count of unread
characters is tracked incrementally so the engine's runaway-expansion
guard is O(1) per scan step.
"""

from __future__ import annotations


class PushbackReader:
    """A character stream supporting arbitrary pushback of strings."""

    __slots__ = ("_frames", "_pending")

    def __init__(self, text: str = "") -> None:
        # Each frame is [string, position]; top of stack is last element.
        self._frames: list[list] = []
        self._pending = 0
        if text:
            self._frames.append([text, 0])
            self._pending = len(text)

    def push(self, text: str) -> None:
        """Push ``text`` so that it is read before any pending input."""
        if text:
            self._frames.append([text, 0])
            self._pending += len(text)

    def at_eof(self) -> bool:
        return self._pending == 0

    def peek(self) -> str:
        """Return the next character without consuming it ('' at EOF)."""
        self._trim()
        if not self._frames:
            return ""
        text, pos = self._frames[-1]
        return text[pos]

    def next(self) -> str:
        """Consume and return the next character ('' at EOF)."""
        self._trim()
        if not self._frames:
            return ""
        frame = self._frames[-1]
        ch = frame[0][frame[1]]
        frame[1] += 1
        self._pending -= 1
        return ch

    def match(self, literal: str) -> bool:
        """Consume ``literal`` if the stream starts with it.

        Works across frame boundaries (an expansion may end mid-token
        with the remainder in the frame below).
        """
        if not literal:
            return False
        if len(literal) == 1:
            # Fast path for single-character quotes (the common case).
            if self.peek() == literal:
                self.next()
                return True
            return False
        consumed: list[str] = []
        for want in literal:
            got = self.next()
            consumed.append(got)
            if got != want:
                # Roll back everything we consumed (EOF '' joins away).
                self.push("".join(consumed))
                return False
        return True

    def read_while(self, predicate) -> str:
        """Consume characters while ``predicate(ch)`` holds."""
        out: list[str] = []
        while True:
            self._trim()
            if not self._frames:
                break
            text, pos = self._frames[-1]
            # Scan within the top frame without per-char next() calls.
            end = pos
            n = len(text)
            while end < n and predicate(text[end]):
                end += 1
            if end > pos:
                out.append(text[pos:end])
                self._frames[-1][1] = end
                self._pending -= end - pos
            if end < n:
                break
        return "".join(out)

    def pending_length(self) -> int:
        """Total unread characters (used for runaway-expansion guards)."""
        return self._pending

    def frame_count(self) -> int:
        """Depth of the pushback stack (second runaway guard)."""
        return len(self._frames)

    def _trim(self) -> None:
        frames = self._frames
        while frames and frames[-1][1] >= len(frames[-1][0]):
            frames.pop()
