"""An m4-style macro processor.

The Force is implemented as a two-level macro library expanded by ``m4``
(§4.3 of the paper).  This package provides a faithful-enough m4 dialect
for that library: user macros with ``define``/``pushdef``, argument
substitution (``$0``–``$9``, ``$#``, ``$*``, ``$@``), quoting with
``changequote``, conditionals (``ifelse``/``ifdef``), integer ``eval``,
string builtins, diversions, and full rescanning of expansion output.

Dialect notes (differences from POSIX m4, all documented in README):

* macro names are ``[A-Za-z_][A-Za-z0-9_]*`` (same as m4);
* arguments are collected raw (balancing parentheses and quotes) and then
  expanded, instead of being expanded token-by-token during collection —
  an expansion that *produces* a comma therefore cannot create a new
  argument;
* ``#`` comments are not special (the Force library does not use them;
  Fortran ``C`` comment lines pass through untouched);
* ``divert`` supports buffers 0–9 and -1 (discard).
"""

from repro.m4.engine import M4Processor, M4Options
from repro._util.errors import MacroError

__all__ = ["M4Processor", "M4Options", "MacroError"]
